# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench figures validate objdump clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) -m repro.harness.figure6 --thread-limit both \
		--csv results/results.csv --json results/results.json --plot

validate:
	$(PYTHON) -m repro.harness.validate

objdump:
	$(PYTHON) -m repro.tools.objdump --app xsbench --stats

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
