# Convenience targets for the reproduction.

PYTHON ?= python
# src layout: make targets work from a checkout without `make install`
export PYTHONPATH := src

.PHONY: install test test-fast lint typecheck check bench bench-check \
	bench-serve bench-serve-check microbench figures validate objdump \
	sched-demo trace-demo autoensemble-demo serve-demo serve-check \
	cache-check safety-check chaos clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m repro.tools.lint --all --fail-on error
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping style check"; \
	fi

# Static type checking: prefer mypy, fall back to pyright, skip (like the
# ruff gate above) when neither is installed.
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	elif command -v pyright >/dev/null 2>&1; then \
		pyright src/repro; \
	else \
		echo "mypy/pyright not installed; skipping type check"; \
	fi

check: lint typecheck test

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x -q

# Tracked backend benchmark (docs/backends.md): interp vs compiled on the
# Figure-6 smoke campaign; refreshes the committed baseline.
bench:
	$(PYTHON) -m repro.harness.bench --repeats 4 --out BENCH_interpreter.json

# CI regression gate: quick slice of the bench, compared against the
# committed baseline on machine-independent speedup ratios only.
bench-check:
	$(PYTHON) -m repro.harness.bench --quick --check BENCH_interpreter.json

# Tracked server-path benchmark (docs/serve.md): repro.serve throughput
# vs the direct scheduler; refreshes the committed baseline.
bench-serve:
	$(PYTHON) -m repro.harness.bench_serve --repeats 3 --out BENCH_serve.json

# CI regression gate: served-path occupancy and the served/direct
# overhead ratio vs the committed baseline (machine-independent only).
bench-serve-check:
	$(PYTHON) -m repro.harness.bench_serve --quick --check BENCH_serve.json

# Executable-cache gate (docs/compilecache.md): cold build, warm restart
# from the disk tier, hit rate and bitwise parity on stencil — then the
# GP-style many-variant smoke campaign with its cold-twin verification.
cache-check:
	$(PYTHON) -m repro.compilecache.check
	$(PYTHON) -m repro.harness.gp --smoke

# Static-safety gate (docs/safety.md): every registry app must certify
# with zero DISPROVEN sites and >= 60% guard-free memory-site coverage;
# known-broken fixtures must be DISPROVEN and flagged by the
# static-oob/static-trap checkers.
safety-check:
	$(PYTHON) -m repro.tools.safety_check

# pytest-benchmark microbenchmarks (interpreter inner loops).
microbench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) -m repro.harness.figure6 --thread-limit both \
		--csv results/results.csv --json results/results.json --plot

validate:
	$(PYTHON) -m repro.harness.validate

objdump:
	$(PYTHON) -m repro.tools.objdump --app xsbench --stats

# Chaos suite under three fixed fault-sequence seeds (docs/faults.md):
# every leg asserts the same contract — degrade, never crash.
chaos:
	@for seed in 0 1 2; do \
		echo "=== chaos seed $$seed ==="; \
		CHAOS_SEED=$$seed $(PYTHON) -m pytest tests/faults/ -q -x || exit 1; \
	done

# End-to-end campaign over a two-device pool (docs/scheduler.md).
sched-demo:
	$(PYTHON) examples/multi_device_campaign.py 2

# Natural driver loop -> analyzed, traced, launched as one ensemble,
# replayed, and differenced against sequential (docs/autoensemble.md).
autoensemble-demo:
	$(PYTHON) -m repro.tools.lint --driver examples/auto_ensemble_loop.py
	$(PYTHON) examples/auto_ensemble_loop.py

# Ensemble-as-a-service: host a campaign server on a thread, submit two
# tenants' campaigns through the client, prove the streamed results are
# bitwise-identical to one-shot scheduler runs (docs/serve.md).
serve-demo:
	$(PYTHON) examples/serve_campaigns.py

# Validate the committed wire-document corpus against the serialization
# contract (schema_version policy + stable error codes).
serve-check:
	$(PYTHON) -m repro.serve.check tests/serve/fixtures

# Traced two-device campaign -> results/trace.json + results/metrics.json,
# then validate the trace structurally (docs/observability.md).
trace-demo:
	mkdir -p results
	$(PYTHON) examples/trace_ensemble.py 2 results
	$(PYTHON) -m repro.obs.check results/trace.json

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
