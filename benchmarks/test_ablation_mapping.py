"""Ablation: instance-to-team mapping strategies (§3.1).

Compares the paper's one-instance-per-team scheme against the proposed
packed ``(N/M, M, 1)`` mapping on a *limited-parallelism* workload — the
case §3.1 says packing should help ("particularly beneficial for
applications with limited parallelism").  RSBench with few lookups cannot
fill a 128-thread team, so packing M instances per team trades idle threads
for concurrency without extra teams.

Run: ``pytest benchmarks/test_ablation_mapping.py --benchmark-only -s``
"""

import pytest

from repro.harness.ablation import run_mapping_ablation

#: few lookups -> each instance can use at most 32 of 128 threads
NARROW_WORKLOAD = ["-p", "24", "-n", "2", "-l", "32"]
INSTANCES = 16
THREAD_LIMIT = 128


def _run():
    return run_mapping_ablation(
        "rsbench",
        NARROW_WORKLOAD,
        instances=INSTANCES,
        thread_limit=THREAD_LIMIT,
        pack_factors=(1, 2, 4),
        heap_bytes=16 * 1024 * 1024,
    )


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=0.001)
def test_mapping_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    benchmark.extra_info["tn_by_mapping"] = {
        r.variant: round(r.tn_cycles, 1) for r in rows
    }
    print()
    for r in rows:
        print(
            f"{r.variant:24s} T1={r.t1_cycles:>12,.0f}  "
            f"T{INSTANCES}={r.tn_cycles:>12,.0f}  S={r.speedup:5.1f}x"
        )
    by_name = {r.variant: r for r in rows}
    # all mappings compute the same ensemble; the packed ones use fewer teams
    assert len(rows) == 3
    # packing must not catastrophically regress the ensemble time
    assert by_name["packed-4-per-team"].tn_cycles < 3 * by_name[
        "one-instance-per-team"
    ].tn_cycles
