"""Figure 6(a): relative speedup vs. instances at thread limit 32.

Regenerates the four curves of the panel (XSBench, RSBench, AMGmk,
Page-Rank) with N ∈ {1,2,4,8,16,32,64}, teams == instances, and the
paper's metric ``S(N) = T1*N/TN``.  Assertions pin the qualitative findings
of §4.3 plus loose quantitative agreement with the digitized paper values;
EXPERIMENTS.md records the exact numbers.

Run: ``pytest benchmarks/test_figure6a.py --benchmark-only -s``
"""

import pytest

from benchmarks.conftest import figure6_sweep, print_series
from repro.harness.paper_data import PAPER_FIG6

THREAD_LIMIT = 32  # one warp: the hardware scheduler's smallest unit


def _sweep_once(app):
    return figure6_sweep(app, THREAD_LIMIT)


def _assert_sublinear_and_monotone(result):
    speedups = [r.speedup for r in result.rows if r.speedup is not None]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    for row in result.rows:
        if row.speedup is not None:
            assert row.speedup <= row.instances * 1.001


def _assert_near_paper(result, app, rel=0.45):
    paper = PAPER_FIG6[THREAD_LIMIT][app]
    for n, expected in paper.items():
        measured = result.speedup_at(n)
        assert measured is not None, f"missing N={n}"
        assert measured == pytest.approx(expected, rel=rel), (
            f"{app} N={n}: measured {measured:.1f}x vs paper ~{expected:.1f}x"
        )


@pytest.mark.benchmark(group="figure6a", min_rounds=1, max_time=0.001)
def test_fig6a_xsbench(benchmark, record_series):
    result = benchmark.pedantic(_sweep_once, args=("xsbench",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    _assert_sublinear_and_monotone(result)
    _assert_near_paper(result, "xsbench")


@pytest.mark.benchmark(group="figure6a", min_rounds=1, max_time=0.001)
def test_fig6a_rsbench(benchmark, record_series):
    result = benchmark.pedantic(_sweep_once, args=("rsbench",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    _assert_sublinear_and_monotone(result)
    _assert_near_paper(result, "rsbench")


@pytest.mark.benchmark(group="figure6a", min_rounds=1, max_time=0.001)
def test_fig6a_amgmk(benchmark, record_series):
    result = benchmark.pedantic(_sweep_once, args=("amgmk",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    _assert_sublinear_and_monotone(result)
    _assert_near_paper(result, "amgmk")


@pytest.mark.benchmark(group="figure6a", min_rounds=1, max_time=0.001)
def test_fig6a_pagerank(benchmark, record_series):
    """Page-Rank: points exist only for N <= 4; N >= 8 reports OOM exactly
    like the paper ('due to memory limitations...')."""
    result = benchmark.pedantic(_sweep_once, args=("pagerank",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    assert result.oom_at() == 8
    _assert_near_paper(result, "pagerank")


@pytest.mark.benchmark(group="figure6a", min_rounds=1, max_time=0.001)
def test_fig6a_headline_speedup(benchmark, record_series):
    """Abstract claim: 'up to 51X speedup for 64 instances' — the best
    N=64 speedup across benchmarks lands in the same band."""
    def best_at_64():
        best = 0.0
        for app in ("xsbench", "rsbench", "amgmk"):
            s = figure6_sweep(app, THREAD_LIMIT).speedup_at(64)
            best = max(best, s or 0.0)
        return best

    best = benchmark.pedantic(best_at_64, rounds=1, iterations=1)
    benchmark.extra_info["best_speedup_at_64"] = round(best, 2)
    print(f"\nbest S(64) at thread limit 32: {best:.1f}x (paper: up to 51x)")
    assert 38.0 <= best <= 60.0
