"""Ablation: which modeled mechanism produces the sub-linear gap?

Not a paper figure — this is the reproduction's own analysis (DESIGN.md §6)
showing the Figure-6 shape is produced by the modeled memory mechanisms and
not baked into the harness:

* ``no-row-locality``: DRAM always at peak -> the gap largely closes;
* ``no-l2``: every transaction hits DRAM -> absolute times inflate;
* ``no-coalescing``: every lane pays a transaction -> traffic multiplies.

Run: ``pytest benchmarks/test_ablation_mechanisms.py --benchmark-only -s``
"""

import pytest

from repro.harness.ablation import run_mechanism_ablation

WORKLOAD = ["-g", "512", "-n", "8", "-l", "128"]
INSTANCES = 32
THREAD_LIMIT = 32


def _run():
    rows = run_mechanism_ablation(
        "xsbench",
        WORKLOAD,
        instances=INSTANCES,
        thread_limit=THREAD_LIMIT,
        heap_bytes=48 * 1024 * 1024,
    )
    return {r.variant: r for r in rows}


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=0.001)
def test_mechanism_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    benchmark.extra_info["speedup_by_variant"] = {
        k: round(v.speedup, 2) for k, v in rows.items()
    }
    print()
    for name, row in rows.items():
        print(
            f"{name:18s} T1={row.t1_cycles:>12,.0f}  T{INSTANCES}="
            f"{row.tn_cycles:>12,.0f}  S({INSTANCES})={row.speedup:5.1f}x"
        )

    full = rows["full-model"]
    no_row = rows["no-row-locality"]
    no_l2 = rows["no-l2"]
    no_coal = rows["no-coalescing"]

    # row locality is the main driver of the scaling gap
    assert no_row.speedup > full.speedup
    # removing the L2 inflates absolute time
    assert no_l2.tn_cycles > full.tn_cycles
    # uncoalesced lanes multiply traffic and absolute time
    assert no_coal.tn_cycles > full.tn_cycles
