"""Ablation: the device LTO pipeline's effect on simulated kernel time.

The paper compiles everything with ``-O3``; this bench quantifies what our
equivalent (constant folding + DCE + LICM + CFG simplification after
mandatory inlining) buys.  Because the timing model charges real issue
cycles per executed instruction, compiler quality shows up directly in
``T1`` — exactly as on real hardware.

Run: ``pytest benchmarks/test_ablation_optimization.py --benchmark-only -s``
"""

import pytest

from repro.apps import xsbench
from repro.gpu.device import GPUDevice
from repro.host.ensemble_loader import EnsembleLoader
from repro.host.launch import LaunchSpec
from tests.util import SMALL_DEVICE

WORKLOAD = [["-g", "512", "-n", "8", "-l", "128", "-s", "1"]]


def _run():
    out = {}
    for optimize in (False, True):
        loader = EnsembleLoader(
            xsbench.build_program(),
            GPUDevice(SMALL_DEVICE),
            heap_bytes=16 * 1024 * 1024,
            optimize=optimize,
        )
        res = loader.run_ensemble(LaunchSpec(WORKLOAD, thread_limit=32))
        kernel_size = loader.module.functions["__ensemble_entry"].instruction_count()
        out["O2" if optimize else "O0"] = {
            "cycles": res.cycles,
            "steps": res.launch.interpreter_steps,
            "static_instructions": kernel_size,
        }
    return out


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=0.001)
def test_optimization_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    benchmark.extra_info["by_opt_level"] = {
        k: {kk: round(vv, 1) for kk, vv in v.items()} for k, v in rows.items()
    }
    print()
    for level, stats in rows.items():
        print(
            f"{level}: {stats['cycles']:>12,.0f} cycles, "
            f"{stats['steps']:>9,} interpreter steps, "
            f"{stats['static_instructions']:>6,} static instructions"
        )
    o0, o2 = rows["O0"], rows["O2"]
    assert o2["static_instructions"] < o0["static_instructions"]
    assert o2["steps"] < o0["steps"] * 0.9  # LICM et al. cut dynamic work
    assert o2["cycles"] <= o0["cycles"]  # never slower
    print(
        f"optimization: {o0['steps'] / o2['steps']:.2f}x fewer dynamic "
        f"instructions, {o0['cycles'] / o2['cycles']:.3f}x on simulated time "
        "(XSBench is memory-bound: compute savings hide behind memory, as "
        "they would on the A100)"
    )
