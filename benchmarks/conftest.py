"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one piece of the paper's evaluation via the
harness, reports the series through ``benchmark.extra_info`` (so the JSON
produced by ``pytest benchmarks/ --benchmark-only --benchmark-json=...``
contains the actual figure data, not just wall times), and prints the same
rows the paper plots.

Sweeps are cached per (app, thread-limit) so a panel's data is computed
once even if several tests inspect it.
"""

from __future__ import annotations

import pytest

from repro.harness.figure6 import FIGURE6_WORKLOADS, run_figure6
from repro.harness.paper_data import PAPER_INSTANCE_COUNTS

_SWEEP_CACHE: dict = {}


def figure6_sweep(app: str, thread_limit: int):
    """Run (or fetch) the Figure-6 sweep for one benchmark at one limit."""
    key = (app, thread_limit)
    if key not in _SWEEP_CACHE:
        results = run_figure6(
            thread_limit,
            apps=[app],
            instance_counts=PAPER_INSTANCE_COUNTS,
        )
        _SWEEP_CACHE[key] = results[app]
    return _SWEEP_CACHE[key]


@pytest.fixture
def record_series(benchmark):
    """Attach a ScalingResult's series + diagnostics to the benchmark."""

    def attach(result):
        benchmark.extra_info["benchmark_app"] = result.app
        benchmark.extra_info["thread_limit"] = result.thread_limit
        benchmark.extra_info["speedup_series"] = {
            str(r.instances): (None if r.oom else round(r.speedup, 3))
            for r in result.rows
        }
        benchmark.extra_info["cycles_series"] = {
            str(r.instances): (None if r.oom else round(r.cycles, 1))
            for r in result.rows
        }
        oom = result.oom_at()
        if oom is not None:
            benchmark.extra_info["oom_at_instances"] = oom

    return attach


def print_series(result):
    from repro.obs.reporting import report

    print()
    print(report(result, format="text"))
