"""Figure 6(b): relative speedup vs. instances at thread limit 1024.

Same protocol as panel (a) at the hardware-maximum thread limit.  The
distinguishing findings here (§4.3):

* AMGmk's scaling gap is "particularly notable" — each instance alone
  pulls a sizable share of device bandwidth, so the ensemble saturates
  early;
* RSBench stays closest to linear (compute-bound);
* Page-Rank still cannot exceed 4 instances (memory capacity).

Run: ``pytest benchmarks/test_figure6b.py --benchmark-only -s``
"""

import pytest

from benchmarks.conftest import figure6_sweep, print_series
from repro.harness.paper_data import PAPER_FIG6

THREAD_LIMIT = 1024  # maximum threads per block on the device


def _sweep_once(app):
    return figure6_sweep(app, THREAD_LIMIT)


def _assert_sublinear_and_monotone(result):
    speedups = [r.speedup for r in result.rows if r.speedup is not None]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    for row in result.rows:
        if row.speedup is not None:
            assert row.speedup <= row.instances * 1.001


@pytest.mark.benchmark(group="figure6b", min_rounds=1, max_time=0.001)
def test_fig6b_xsbench(benchmark, record_series):
    result = benchmark.pedantic(_sweep_once, args=("xsbench",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    _assert_sublinear_and_monotone(result)
    assert result.speedup_at(64) > 20.0


@pytest.mark.benchmark(group="figure6b", min_rounds=1, max_time=0.001)
def test_fig6b_rsbench(benchmark, record_series):
    result = benchmark.pedantic(_sweep_once, args=("rsbench",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    _assert_sublinear_and_monotone(result)
    # compute-bound: the most linear curve of the panel
    assert result.speedup_at(64) > 40.0


@pytest.mark.benchmark(group="figure6b", min_rounds=1, max_time=0.001)
def test_fig6b_amgmk(benchmark, record_series):
    result = benchmark.pedantic(_sweep_once, args=("amgmk",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    _assert_sublinear_and_monotone(result)
    paper = PAPER_FIG6[THREAD_LIMIT]["amgmk"]
    measured = result.speedup_at(64)
    assert measured == pytest.approx(paper[64], rel=0.45)


@pytest.mark.benchmark(group="figure6b", min_rounds=1, max_time=0.001)
def test_fig6b_pagerank(benchmark, record_series):
    result = benchmark.pedantic(_sweep_once, args=("pagerank",), rounds=1, iterations=1)
    record_series(result)
    print_series(result)
    assert result.oom_at() == 8
    assert result.speedup_at(4) > 3.0


@pytest.mark.benchmark(group="figure6b", min_rounds=1, max_time=0.001)
def test_fig6b_amgmk_gap_most_pronounced(benchmark, record_series):
    """§4.3: 'the scaling gap became more pronounced, particularly notable
    in the case of AMGmk with a thread limit of 1024'."""

    def efficiency_gaps():
        out = {}
        for app in ("xsbench", "rsbench", "amgmk"):
            res = figure6_sweep(app, THREAD_LIMIT)
            out[app] = res.speedup_at(64) / 64.0
        return out

    effs = benchmark.pedantic(efficiency_gaps, rounds=1, iterations=1)
    benchmark.extra_info["efficiency_at_64"] = {
        k: round(v, 3) for k, v in effs.items()
    }
    print(f"\nefficiency at N=64, t=1024: {effs}")
    assert effs["amgmk"] < effs["xsbench"]
    assert effs["amgmk"] < effs["rsbench"]


@pytest.mark.benchmark(group="figure6b", min_rounds=1, max_time=0.001)
def test_fig6b_vs_6a_crossover(benchmark, record_series):
    """The panels relate: scaling efficiency at 64 instances is lower at
    thread limit 1024 than at 32 for the bandwidth-bound benchmarks
    (bigger per-instance appetite saturates the device sooner)."""

    def both():
        rows = {}
        for app in ("xsbench", "amgmk"):
            s32 = figure6_sweep(app, 32).speedup_at(64)
            s1024 = figure6_sweep(app, 1024).speedup_at(64)
            rows[app] = (s32, s1024)
        return rows

    rows = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["s64_by_thread_limit"] = {
        k: [round(a, 2), round(b, 2)] for k, (a, b) in rows.items()
    }
    for app, (s32, s1024) in rows.items():
        assert s1024 < s32, f"{app}: S(64)@1024={s1024:.1f} !< S(64)@32={s32:.1f}"
