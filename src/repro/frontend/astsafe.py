"""GC-shielded ``ast.parse`` for multi-threaded compilation.

CPython 3.11's AST constructor verifies its recursion-depth accounting
around node construction; when an automatic garbage collection fires
mid-parse **and** a Python-level ``gc.callbacks`` hook runs (Hypothesis
installs one process-wide for GC-time tracking), the check can trip with
``SystemError: AST constructor recursion depth mismatch``.  The compiler
parses on worker threads (``compile_many``, the campaign server), so any
long-lived process with such a callback installed would crash
nondeterministically under GC pressure.

:func:`parse` serialises parses behind one lock and keeps automatic
collection off for the duration — parses are millisecond-scale, so
neither costs anything measurable, and collection resumes immediately
after.
"""

from __future__ import annotations

import ast
import gc
import threading

_PARSE_LOCK = threading.Lock()


def parse(source: str, **kwargs) -> ast.AST:
    """``ast.parse`` with automatic GC paused (see module docstring)."""
    with _PARSE_LOCK:
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            return ast.parse(source, **kwargs)
        finally:
            if was_enabled:
                gc.enable()


__all__ = ["parse"]
