"""Frontend-level types.

The IR only knows I64/F64 registers; the frontend additionally tracks
*pointer* types (pointee element type, possibly another pointer) so that
subscripts compile to correctly-scaled, correctly-typed loads and stores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.types import F64, I64, MemType, ScalarType


@dataclass(frozen=True)
class DType:
    """A frontend type: ``i64``, ``f64``, or ``ptr`` to an element.

    ``elem`` is a :class:`~repro.ir.types.MemType` for leaf pointers, or a
    nested ``DType(kind='ptr', ...)`` for pointer-to-pointer (stored in
    memory as an i64 address).
    """

    kind: str  # 'i64' | 'f64' | 'ptr'
    elem: object = None

    def __post_init__(self) -> None:
        if self.kind not in ("i64", "f64", "ptr"):
            raise ValueError(f"bad DType kind {self.kind!r}")
        if self.kind == "ptr" and not isinstance(self.elem, (MemType, DType)):
            raise ValueError("pointer DType needs a MemType or DType element")

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_int(self) -> bool:
        return self.kind == "i64"

    @property
    def is_float(self) -> bool:
        return self.kind == "f64"

    @property
    def scalar(self) -> ScalarType:
        """The register type carrying values of this DType."""
        return F64 if self.kind == "f64" else I64

    @property
    def elem_size(self) -> int:
        """Byte size of the pointee (pointer types only)."""
        if not self.is_ptr:
            raise ValueError(f"{self} is not a pointer")
        if isinstance(self.elem, MemType):
            return self.elem.size
        return 8  # nested pointers are stored as i64 addresses

    @property
    def elem_memtype(self) -> MemType:
        """Memory type used for load/store through this pointer."""
        if not self.is_ptr:
            raise ValueError(f"{self} is not a pointer")
        if isinstance(self.elem, MemType):
            return self.elem
        return MemType.I64

    @property
    def deref(self) -> "DType":
        """DType of ``p[i]`` for a pointer ``p``."""
        if not self.is_ptr:
            raise ValueError(f"{self} is not a pointer")
        if isinstance(self.elem, DType):
            return self.elem
        return DT_F64 if self.elem in (MemType.F32, MemType.F64) else DT_I64

    def __str__(self) -> str:
        if self.kind != "ptr":
            return self.kind
        if isinstance(self.elem, MemType):
            return f"ptr<{self.elem.label}>"
        return f"ptr<{self.elem}>"


DT_I64 = DType("i64")
DT_F64 = DType("f64")


@dataclass(frozen=True)
class Value:
    """A compiled expression: an IR register plus its frontend type."""

    reg: object  # repro.ir.types.Reg
    dt: DType

    @property
    def is_ptr(self) -> bool:
        return self.dt.is_ptr


def ptr_of(elem) -> DType:
    """Pointer type to ``elem`` (a MemType or another pointer DType)."""
    return DType("ptr", elem)


# Annotation objects used in device-function signatures.
i64 = DT_I64
f64 = DT_F64
ptr_i8 = ptr_of(MemType.I8)
ptr_i32 = ptr_of(MemType.I32)
ptr_i64 = ptr_of(MemType.I64)
ptr_f32 = ptr_of(MemType.F32)
ptr_f64 = ptr_of(MemType.F64)
ptr_ptr = ptr_of(ptr_i8)  # char** — the argv type

_BY_NAME = {
    "i64": i64,
    "int": i64,
    "f64": f64,
    "float": f64,
    "ptr_i8": ptr_i8,
    "ptr_i32": ptr_i32,
    "ptr_i64": ptr_i64,
    "ptr_f32": ptr_f32,
    "ptr_f64": ptr_f64,
    "ptr_ptr": ptr_ptr,
}


def annotation_to_dtype(ann) -> DType:
    """Resolve a signature annotation (DType object, ``int``/``float``, or a
    string naming one of the exported types) to a DType."""
    if isinstance(ann, DType):
        return ann
    if ann is int:
        return DT_I64
    if ann is float:
        return DT_F64
    if isinstance(ann, str) and ann in _BY_NAME:
        return _BY_NAME[ann]
    raise TypeError(f"unsupported type annotation {ann!r}")


def memtype_to_dtype(mty: MemType) -> DType:
    """Value DType produced by loading a MemType."""
    return DT_F64 if mty in (MemType.F32, MemType.F64) else DT_I64
