"""Auto-ensembling of natural Python driver loops.

The paper's expert contract — write an argument file, build a
:class:`~repro.host.launch.LaunchSpec`, pick an entry point — becomes a
decorator::

    from repro.frontend.autoensemble import ensemble

    @ensemble(app="stencil")
    def campaign(run):
        total = 0.0
        for seed in range(1, 9):
            r = run(["-n", "2048", "-s", str(seed)])
            total += r.exit_code
        return total

    outcome = campaign()          # one ensemble launch, not 8 sequential runs

The engine is the JAX-style recipe of SNIPPETS.md (XCS snippets 1-2)
gated by a *proof* instead of an assertion:

1. **Analyze** — :mod:`repro.analysis.driverdep` lifts the driver into an
   SSA/def-use form and classifies every name the loop touches.  Anything
   but loop-locals, read-only outer state, and provable reductions rejects
   the loop with structured diagnostics (:class:`AutoEnsembleError`).
2. **Trace** — the driver runs once with a recording launcher: every
   ``run(...)`` call contributes one instance's argument vector and
   returns an inert placeholder.  Because the analyzer proved the body
   free of loop-carried state, the recorded batch is exactly what
   sequential execution would have launched.
3. **Launch** — the recorded vectors become an in-memory argument source
   on a :class:`~repro.host.launch.LaunchSpec`, dispatched through
   :mod:`repro.sched` (a :class:`~repro.sched.Scheduler` over a
   :class:`~repro.sched.DevicePool`, one device by default).
4. **Replay** — the driver runs a second time with a launcher that hands
   back the real per-instance results *in recorded order*.  Reductions
   therefore fold in exactly the sequential iteration order, so the
   driver's return value is bitwise-identical to sequential execution.

``mode="sequential"`` skips all of that and executes each ``run`` call
immediately on a single device — the oracle the differential tests
compare against.

Drivers must be functions of their parameters and closure: the prologue
and epilogue execute twice (trace + replay), which is why the analyzer
insists reduction accumulators are initialized inside the driver.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.driverdep import LoopClassification, analyze_driver
from repro.errors import AutoEnsembleError
from repro.host.launch import DEFAULT_MAX_STEPS, LaunchSpec
from repro.runtime.backend import DEFAULT_BACKEND

#: Loader keyword options forwarded to the launch surfaces.
_LOADER_OPT_KEYS = (
    "mapping",
    "heap_bytes",
    "stack_bytes",
    "team_local_globals",
    "opt_level",
    "allow_races",
)


@dataclass(frozen=True)
class AutoRunResult:
    """What one ``run(...)`` call evaluates to, in either mode.

    Only order-independent facts are exposed: cycle counts differ between
    a contended ensemble and sequential runs, so they are deliberately
    not part of this surface (they remain available on
    :attr:`AutoEnsembleOutcome.campaign`).
    """

    index: int
    args: tuple[str, ...]
    exit_code: int
    stdout: str

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


@dataclass
class AutoEnsembleOutcome:
    """Everything :func:`auto_launch` produced for one driver invocation."""

    #: the driver function's own return value (replay pass)
    value: Any
    #: per-instance results in run-call order
    instances: list[AutoRunResult]
    #: "ensemble" or "sequential"
    mode: str
    #: the analyzer's verdicts, one per driver loop
    classifications: list[LoopClassification]
    #: the spec the engine derived (None in sequential mode)
    spec: LaunchSpec | None = None
    #: the underlying campaign/ensemble result (None in sequential mode)
    campaign: Any = field(default=None, repr=False)

    @property
    def all_succeeded(self) -> bool:
        return all(r.exit_code == 0 for r in self.instances)

    @property
    def num_instances(self) -> int:
        return len(self.instances)


# ---------------------------------------------------------------------------
# Trace / replay launchers
# ---------------------------------------------------------------------------


class _Pending:
    """Inert placeholder a traced ``run(...)`` call returns.

    Attribute access and arithmetic stay pending (so reduction updates
    like ``total += r.exit_code`` trace through harmlessly); anything
    that would force a concrete value — branching, iteration, indexing by
    it — raises, as a backstop behind the static analyzer.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> "_Pending":
        if name.startswith("__"):
            raise AttributeError(name)
        return _PENDING

    def __repr__(self) -> str:
        return "<pending run result>"

    def __format__(self, spec: str) -> str:
        return "<pending run result>"

    def __bool__(self) -> bool:
        raise AutoEnsembleError(
            "driver control flow depends on a run result; the static "
            "analyzer should have rejected this loop — please report"
        )

    def __iter__(self):
        raise AutoEnsembleError(
            "driver iterates over a run result; the static analyzer "
            "should have rejected this loop — please report"
        )

    def __index__(self) -> int:
        raise AutoEnsembleError("a run result was used as an index")


class _PendingOrdering:
    """What comparing a pending run result evaluates to.

    ``min()``/``max()`` reductions force a comparison during the trace
    pass.  The analyzer already proved the accumulator never feeds a
    ``run(...)`` argument, and the replay pass recomputes it from real
    results, so the branch taken here is immaterial — it only has to
    not crash.  Resolving to False keeps a concrete accumulator
    concrete (``min(acc, pending)`` keeps ``acc``).
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "<pending comparison>"


_PENDING_ORDERING = _PendingOrdering()


def _pending_binop(self, *args, **kwargs) -> _Pending:
    return _PENDING


def _pending_compare(self, *args, **kwargs) -> _PendingOrdering:
    return _PENDING_ORDERING


for _dunder in (
    "__add__", "__radd__", "__sub__", "__rsub__", "__mul__", "__rmul__",
    "__truediv__", "__rtruediv__", "__floordiv__", "__rfloordiv__",
    "__mod__", "__rmod__", "__pow__", "__rpow__", "__and__", "__rand__",
    "__or__", "__ror__", "__xor__", "__rxor__", "__neg__", "__pos__",
    "__abs__", "__eq__", "__ne__", "__getitem__", "__call__",
):
    setattr(_Pending, _dunder, _pending_binop)

for _dunder in ("__lt__", "__le__", "__gt__", "__ge__"):
    setattr(_Pending, _dunder, _pending_compare)

_PENDING = _Pending()


def _normalize_call(args: tuple, kwargs: dict) -> tuple[str, ...]:
    """One ``run(...)`` call -> one instance argument vector.

    Accepted shapes, concatenated left to right:

    * a sequence of tokens (``run(["-n", "8"])``),
    * a string, split with POSIX shell rules (``run("-n 8")``),
    * bare scalars (``run("-n", 8)`` — a single-token string stays one
      token only when it contains no whitespace).
    """
    if kwargs:
        raise AutoEnsembleError(
            f"run() takes positional argument tokens only, got keyword(s) "
            f"{sorted(kwargs)}"
        )
    tokens: list[str] = []
    for part in args:
        if isinstance(part, str):
            tokens.extend(shlex.split(part, posix=True))
        elif isinstance(part, (list, tuple)):
            tokens.extend(str(t) for t in part)
        elif isinstance(part, (int, float)):
            tokens.append(str(part))
        else:
            raise AutoEnsembleError(
                f"unsupported run() argument {part!r}: pass token "
                "sequences, strings, or scalars"
            )
    return tuple(tokens)


class _Recorder:
    """Trace-pass launcher: records argument vectors, returns pendings."""

    def __init__(self) -> None:
        self.calls: list[tuple[str, ...]] = []

    def __call__(self, *args, **kwargs) -> _Pending:
        self.calls.append(_normalize_call(args, kwargs))
        return _PENDING


class _Player:
    """Replay-pass launcher: hands back real results in recorded order.

    Re-normalizes each call's arguments and checks them against the
    trace — a mismatch means the driver is not a pure function of its
    iterable (e.g. it consumed a random stream), which would silently
    break the sequential-equivalence contract.
    """

    def __init__(self, results: list[AutoRunResult]):
        self.results = results
        self.cursor = 0

    def __call__(self, *args, **kwargs) -> AutoRunResult:
        tokens = _normalize_call(args, kwargs)
        if self.cursor >= len(self.results):
            raise AutoEnsembleError(
                f"replay drift: the driver issued more run() calls "
                f"({self.cursor + 1}+) than the trace recorded "
                f"({len(self.results)}); drivers must be deterministic"
            )
        result = self.results[self.cursor]
        if tokens != result.args:
            raise AutoEnsembleError(
                f"replay drift at instance {self.cursor}: trace recorded "
                f"args {list(result.args)} but replay derived "
                f"{list(tokens)}; drivers must be deterministic"
            )
        self.cursor += 1
        return result


class _Sequential:
    """Sequential-mode launcher: every call executes immediately."""

    def __init__(self, execute: Callable[[list[str]], tuple[int, str]]):
        self.execute = execute
        self.results: list[AutoRunResult] = []

    def __call__(self, *args, **kwargs) -> AutoRunResult:
        tokens = _normalize_call(args, kwargs)
        exit_code, stdout = self.execute(list(tokens))
        result = AutoRunResult(
            index=len(self.results),
            args=tokens,
            exit_code=exit_code,
            stdout=stdout,
        )
        self.results.append(result)
        return result


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


def _resolve_program(app):
    """``app`` may be a registry name, an AppEntry, or a Program/Module."""
    if app is None:
        raise AutoEnsembleError(
            "auto_launch needs an application: pass app=<registry name>, "
            "an AppEntry, or a compiled Program"
        )
    if isinstance(app, str):
        from repro.apps.registry import APPS

        try:
            entry = APPS[app]
        except KeyError:
            raise AutoEnsembleError(
                f"unknown app {app!r}; choices: {sorted(APPS)}"
            ) from None
        return entry.build_program()
    if hasattr(app, "build_program"):
        return app.build_program()
    return app


class EnsembleBackend:
    """Executes one batch of argument vectors as a scheduled campaign."""

    def __init__(
        self,
        app,
        *,
        devices: int = 1,
        thread_limit: int = 1024,
        max_steps: int = DEFAULT_MAX_STEPS,
        collect_timing: bool = True,
        fault_plan=None,
        obs=None,
        loader_opts: dict | None = None,
        max_batch: int | None = None,
        retries: int = 2,
        backend: str = DEFAULT_BACKEND,
    ):
        self.program = _resolve_program(app)
        self.devices = devices
        self.thread_limit = thread_limit
        self.max_steps = max_steps
        self.collect_timing = collect_timing
        self.fault_plan = fault_plan
        self.obs = obs
        self.loader_opts = dict(loader_opts or {})
        self.max_batch = max_batch
        self.retries = retries
        self.backend = backend
        self.last_spec: LaunchSpec | None = None
        self.last_result = None

    def __call__(self, batches: list[tuple[str, ...]]) -> list[AutoRunResult]:
        from repro.config import DEFAULT_DEVICE
        from repro.sched import DevicePool, Scheduler

        spec = LaunchSpec(
            arg_source=[list(args) for args in batches],
            thread_limit=self.thread_limit,
            max_steps=self.max_steps,
            collect_timing=self.collect_timing,
            fault_plan=self.fault_plan,
            backend=self.backend,
        )
        self.last_spec = spec
        pool = DevicePool(self.devices, config=DEFAULT_DEVICE)
        kwargs = dict(default_retries=self.retries)
        if self.obs is not None:
            kwargs["obs"] = self.obs
        if self.max_batch is not None:
            kwargs["max_batch"] = self.max_batch
        sched = Scheduler(pool, **kwargs)
        result = sched.run_campaign(
            self.program, spec, loader_opts=self.loader_opts
        )
        self.last_result = result
        ordered = sorted(result.instances, key=lambda o: o.index)
        return [
            AutoRunResult(
                index=o.index,
                args=tuple(o.args),
                exit_code=o.exit_code,
                stdout=o.stdout,
            )
            for o in ordered
        ]


class SequentialBackend:
    """Executes argument vectors one at a time on a single device."""

    def __init__(
        self,
        app,
        *,
        thread_limit: int = 1024,
        max_steps: int = DEFAULT_MAX_STEPS,
        collect_timing: bool = True,
        loader_opts: dict | None = None,
    ):
        from repro.gpu.device import GPUDevice
        from repro.host.loader import Loader

        opts = dict(loader_opts or {})
        opts.pop("mapping", None)  # single-instance runs have no mapping
        opts.pop("allow_races", None)
        self.loader = Loader(_resolve_program(app), GPUDevice(), **opts)
        self.thread_limit = thread_limit
        self.max_steps = max_steps
        self.collect_timing = collect_timing

    def execute_one(self, args: list[str]) -> tuple[int, str]:
        result = self.loader.run(
            args,
            thread_limit=self.thread_limit,
            collect_timing=self.collect_timing,
            max_steps=self.max_steps,
        )
        return result.exit_code, result.stdout


# ---------------------------------------------------------------------------
# The front door
# ---------------------------------------------------------------------------


def _check_classifications(
    fn, classifications: list[LoopClassification]
) -> None:
    if not classifications:
        raise AutoEnsembleError(
            f"driver {fn.__name__}() contains no for loop to auto-ensemble"
        )
    findings: list[Diagnostic] = []
    for cls in classifications:
        findings.extend(
            d for d in cls.diagnostics if d.severity >= Severity.ERROR
        )
    if findings:
        lines = "\n".join("  " + d.format() for d in findings)
        raise AutoEnsembleError(
            f"driver {fn.__name__}() is not auto-ensemblable: "
            f"{len(findings)} loop-carried dependence finding(s)\n{lines}",
            diagnostics=findings,
        )


def analyze(fn) -> list[LoopClassification]:
    """The analyzer half of :func:`auto_launch`, without executing."""
    return analyze_driver(fn)


def auto_launch(
    fn: Callable,
    app=None,
    *,
    mode: str = "auto",
    devices: int = 1,
    thread_limit: int = 1024,
    max_steps: int = DEFAULT_MAX_STEPS,
    collect_timing: bool = True,
    fault_plan=None,
    obs=None,
    backend: Callable[[list[tuple[str, ...]]], list[AutoRunResult]] | None = None,
    sequential_execute: Callable[[list[str]], tuple[int, str]] | None = None,
    **loader_opts,
) -> AutoEnsembleOutcome:
    """Prove a driver loop independent, then run it as one ensemble.

    ``fn`` is the driver: a function whose first parameter is the
    launcher and whose body contains an ordinary ``for`` loop calling it
    once (or more) per iteration.  ``app`` names the application every
    ``run(...)`` call launches (registry name, AppEntry, or Program).

    ``mode="auto"`` (default) analyzes, traces, launches through
    :mod:`repro.sched`, and replays.  ``mode="sequential"`` executes each
    call immediately on one device — the differential oracle.  Custom
    ``backend`` / ``sequential_execute`` callables replace the device
    execution (used by the property tests); ``**loader_opts`` forward to
    the loaders (``heap_bytes``, ``opt_level``, ``mapping``, ...).

    Raises :class:`~repro.errors.AutoEnsembleError` with the analyzer's
    structured diagnostics when the loop has loop-carried dependences.
    """
    unknown = set(loader_opts) - set(_LOADER_OPT_KEYS)
    if unknown:
        raise AutoEnsembleError(
            f"unknown auto_launch option(s) {sorted(unknown)}; loader "
            f"options are {sorted(_LOADER_OPT_KEYS)}"
        )
    if mode not in ("auto", "sequential"):
        raise AutoEnsembleError(
            f"mode must be 'auto' or 'sequential', not {mode!r}"
        )

    from repro.errors import AnalysisError

    try:
        classifications = analyze_driver(fn)
    except AnalysisError as exc:
        raise AutoEnsembleError(str(exc)) from exc
    _check_classifications(fn, classifications)

    if mode == "sequential":
        if sequential_execute is None:
            seq_backend = SequentialBackend(
                app,
                thread_limit=thread_limit,
                max_steps=max_steps,
                collect_timing=collect_timing,
                loader_opts=loader_opts,
            )
            sequential_execute = seq_backend.execute_one
        launcher = _Sequential(sequential_execute)
        value = fn(launcher)
        return AutoEnsembleOutcome(
            value=value,
            instances=launcher.results,
            mode="sequential",
            classifications=classifications,
        )

    # --- trace ----------------------------------------------------------
    recorder = _Recorder()
    fn(recorder)

    # --- launch ---------------------------------------------------------
    if backend is None:
        backend = EnsembleBackend(
            app,
            devices=devices,
            thread_limit=thread_limit,
            max_steps=max_steps,
            collect_timing=collect_timing,
            fault_plan=fault_plan,
            obs=obs,
            loader_opts=loader_opts,
        )
    results = backend(list(recorder.calls)) if recorder.calls else []
    if len(results) != len(recorder.calls):
        raise AutoEnsembleError(
            f"backend returned {len(results)} results for "
            f"{len(recorder.calls)} recorded instances"
        )

    # --- replay ---------------------------------------------------------
    player = _Player(results)
    value = fn(player)
    if player.cursor != len(results):
        raise AutoEnsembleError(
            f"replay drift: the trace recorded {len(results)} run() calls "
            f"but replay issued {player.cursor}; drivers must be "
            "deterministic"
        )
    return AutoEnsembleOutcome(
        value=value,
        instances=results,
        mode="ensemble",
        classifications=classifications,
        spec=getattr(backend, "last_spec", None),
        campaign=getattr(backend, "last_result", None),
    )


def ensemble(fn: Callable | None = None, /, **options):
    """Decorator form of :func:`auto_launch`.

    Bare (``@ensemble``) or configured (``@ensemble(app="stencil",
    devices=2)``).  Calling the decorated function runs the auto-ensemble
    and returns an :class:`AutoEnsembleOutcome`; per-call keyword
    overrides are merged over the decoration-time options.  The original
    driver stays available as ``.driver``.
    """

    def wrap(driver: Callable):
        import functools

        @functools.wraps(driver)
        def launch(**overrides) -> AutoEnsembleOutcome:
            merged = dict(options)
            merged.update(overrides)
            app = merged.pop("app", None)
            return auto_launch(driver, app, **merged)

        launch.driver = driver
        launch.options = dict(options)
        return launch

    if fn is not None:
        if not callable(fn):
            raise AutoEnsembleError(
                "@ensemble takes keyword options only, e.g. "
                "@ensemble(app='stencil')"
            )
        return wrap(fn)
    return wrap


__all__ = [
    "AutoEnsembleOutcome",
    "AutoRunResult",
    "EnsembleBackend",
    "SequentialBackend",
    "analyze",
    "auto_launch",
    "ensemble",
]
