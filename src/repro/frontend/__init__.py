"""Restricted-Python frontend.

User applications are written as ordinary Python functions against a small
typed subset (see :mod:`repro.frontend.compiler` for the exact rules) and
registered on a :class:`~repro.frontend.dsl.Program`.  ``Program.compile()``
parses each function with :mod:`ast`, type-checks it, and lowers it to the
device IR of :mod:`repro.ir` — the moral equivalent of the paper's
"compile the legacy CPU app with Clang, treating everything as device code".

The :data:`~repro.frontend.dsl.dgpu` namespace provides the device
intrinsics (thread/team ids, ``parallel_range`` worksharing loops, barriers,
atomics, math, stack allocation, pointer casts).
"""

from repro.frontend.dtypes import (
    DT_F64,
    DT_I64,
    DType,
    f64,
    i64,
    ptr_f32,
    ptr_f64,
    ptr_i8,
    ptr_i32,
    ptr_i64,
    ptr_ptr,
    ptr_of,
)
from repro.frontend.dsl import Program, dgpu

__all__ = [
    "Program",
    "dgpu",
    "DType",
    "DT_I64",
    "DT_F64",
    "i64",
    "f64",
    "ptr_i8",
    "ptr_i32",
    "ptr_i64",
    "ptr_f32",
    "ptr_f64",
    "ptr_ptr",
    "ptr_of",
]
