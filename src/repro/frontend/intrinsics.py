"""Device intrinsics (``dgpu.*``) and host-function signatures.

Each intrinsic is an emitter: given the IR builder and already-compiled
argument :class:`~repro.frontend.dtypes.Value` objects, it emits IR and
returns the result value (or ``None`` for void intrinsics).  A few
constructs — ``parallel_range``, ``cast``, ``stack_*`` — need compile-time
information and are handled directly by the compiler instead.

``HOST_FUNCS`` lists the host-only symbols the partial runtime supports,
with their device-visible signatures.  Device code may *call* them like
normal functions; the RPC-lowering pass rewrites the calls to ``rpc``
instructions, and :mod:`repro.host.rpc_host` implements the host side.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FrontendError
from repro.frontend.dtypes import (
    DT_F64,
    DT_I64,
    DType,
    Value,
    memtype_to_dtype,
    ptr_i8,
)
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Opcode
from repro.ir.types import F64, I64, ScalarType


def _want_args(name: str, args: list[Value], n: int) -> None:
    if len(args) != n:
        raise FrontendError(f"dgpu.{name} expects {n} argument(s), got {len(args)}")


def _to_f64(b: IRBuilder, v: Value) -> Value:
    if v.dt.is_float:
        return v
    if v.dt.is_int:
        return Value(b.sitofp(v.reg), DT_F64)
    raise FrontendError(f"cannot convert {v.dt} to f64")


def _to_i64(b: IRBuilder, v: Value) -> Value:
    if v.dt.is_float:
        return Value(b.fptosi(v.reg), DT_I64)
    return Value(v.reg, DT_I64)  # ints and pointers are i64 registers


def _nullary(op_name: str) -> Callable:
    def emit(b: IRBuilder, args: list[Value]) -> Value:
        _want_args(op_name, args, 0)
        return Value(getattr(b, op_name)(), DT_I64)

    return emit


def _math1(op: Opcode, name: str) -> Callable:
    def emit(b: IRBuilder, args: list[Value]) -> Value:
        _want_args(name, args, 1)
        x = _to_f64(b, args[0])
        return Value(b.unop(op, x.reg), DT_F64)

    return emit


def _math2(op: Opcode, name: str) -> Callable:
    def emit(b: IRBuilder, args: list[Value]) -> Value:
        _want_args(name, args, 2)
        x = _to_f64(b, args[0])
        y = _to_f64(b, args[1])
        return Value(b.binop(op, x.reg, y.reg), DT_F64)

    return emit


def _emit_barrier(b: IRBuilder, args: list[Value]) -> None:
    _want_args("barrier", args, 0)
    b.barrier()


def _emit_atomic(op: Opcode, name: str) -> Callable:
    def emit(b: IRBuilder, args: list[Value]) -> Value:
        _want_args(name, args, 2)
        ptr, val = args
        if not ptr.is_ptr:
            raise FrontendError(f"dgpu.{name}: first argument must be a pointer")
        mty = ptr.dt.elem_memtype
        want = memtype_to_dtype(mty)
        v = _to_f64(b, val) if want.is_float else _to_i64(b, val)
        if op is Opcode.ATOMIC_ADD:
            res = b.atomic_add(ptr.reg, v.reg, mty)
        else:
            res = b.atomic_max(ptr.reg, v.reg, mty)
        return Value(res, want)

    return emit


def _emit_reduce(op: Opcode, name: str) -> Callable:
    def emit(b: IRBuilder, args: list[Value]) -> Value:
        _want_args(name, args, 1)
        v = args[0]
        if v.is_ptr:
            raise FrontendError(f"dgpu.{name}: cannot reduce a pointer")
        return Value(b.reduce(op, v.reg), v.dt)

    return emit


def _emit_i64_cast(b: IRBuilder, args: list[Value]) -> Value:
    _want_args("i64", args, 1)
    return _to_i64(b, args[0])


def _emit_f64_cast(b: IRBuilder, args: list[Value]) -> Value:
    _want_args("f64", args, 1)
    return _to_f64(b, args[0])


def _emit_shfl(op: Opcode, name: str) -> Callable:
    def emit(b: IRBuilder, args: list[Value]) -> Value:
        _want_args(name, args, 2)
        value, sel = args
        if value.is_ptr:
            raise FrontendError(f"dgpu.{name}: cannot shuffle pointers")
        sel = _to_i64(b, sel)
        if op is Opcode.SHFL_DOWN:
            return Value(b.shfl_down(value.reg, sel.reg), value.dt)
        return Value(b.shfl_idx(value.reg, sel.reg), value.dt)

    return emit


def _emit_select(b: IRBuilder, args: list[Value]) -> Value:
    _want_args("select", args, 3)
    cond = _to_i64(b, args[0])
    a, c = args[1], args[2]
    if a.dt.is_float or c.dt.is_float:
        a, c = _to_f64(b, a), _to_f64(b, c)
        return Value(b.select(cond.reg, a.reg, c.reg), DT_F64)
    res_dt = a.dt if a.dt == c.dt else DT_I64
    return Value(b.select(cond.reg, a.reg, c.reg), res_dt)


#: dgpu.<name> -> emitter(builder, argvalues) -> Value | None
INTRINSICS: dict[str, Callable] = {
    "thread_id": _nullary("tid"),
    "num_threads": _nullary("ntid"),
    "team_id": _nullary("ctaid"),
    "num_teams": _nullary("nctaid"),
    "lane_id": _nullary("laneid"),
    "instance_id": _nullary("instance"),
    "barrier": _emit_barrier,
    "atomic_add": _emit_atomic(Opcode.ATOMIC_ADD, "atomic_add"),
    "atomic_max": _emit_atomic(Opcode.ATOMIC_MAX, "atomic_max"),
    "shfl_down": _emit_shfl(Opcode.SHFL_DOWN, "shfl_down"),
    "shfl_idx": _emit_shfl(Opcode.SHFL_IDX, "shfl_idx"),
    "reduce_add": _emit_reduce(Opcode.RED_ADD, "reduce_add"),
    "reduce_max": _emit_reduce(Opcode.RED_MAX, "reduce_max"),
    "reduce_min": _emit_reduce(Opcode.RED_MIN, "reduce_min"),
    "sqrt": _math1(Opcode.SQRT, "sqrt"),
    "exp": _math1(Opcode.EXP, "exp"),
    "log": _math1(Opcode.LOG, "log"),
    "sin": _math1(Opcode.SIN, "sin"),
    "cos": _math1(Opcode.COS, "cos"),
    "tan": _math1(Opcode.TAN, "tan"),
    "fabs": _math1(Opcode.FABS, "fabs"),
    "floor": _math1(Opcode.FLOOR, "floor"),
    "ceil": _math1(Opcode.CEIL, "ceil"),
    "pow": _math2(Opcode.FPOW, "pow"),
    "fmin": _math2(Opcode.FMIN, "fmin"),
    "fmax": _math2(Opcode.FMAX, "fmax"),
    "i64": _emit_i64_cast,
    "f64": _emit_f64_cast,
    "select": _emit_select,
}

#: Intrinsics the compiler must handle itself (they consume AST, not Values).
COMPILER_HANDLED = frozenset(
    {
        "parallel_range",
        "cast",
        "stack_i8",
        "stack_i32",
        "stack_i64",
        "stack_f32",
        "stack_f64",
        "trap",
    }
)


#: Host-only functions: name -> (fixed param DTypes or None for varargs,
#: return DType or None for void).  Calls to these are legal in device code
#: and are rewritten to RPC by the lowering pass.
HOST_FUNCS: dict[str, tuple[tuple | None, DType | None]] = {
    "printf": (None, DT_I64),  # varargs: (fmt, ...)
    "puts": ((ptr_i8,), DT_I64),
    "putchar": ((DT_I64,), DT_I64),
    "fopen": ((ptr_i8, ptr_i8), DT_I64),  # returns host file handle
    "fclose": ((DT_I64,), DT_I64),
    "fputs": ((ptr_i8, DT_I64), DT_I64),
    "host_time_ns": ((), DT_I64),
    "abort": ((), None),
}


def host_func_ret(name: str) -> ScalarType:
    """IR return type of a host function (VOID when it returns nothing)."""
    sig = HOST_FUNCS.get(name)
    if sig is None or sig[1] is None:
        return ScalarType.VOID
    return F64 if sig[1].is_float else I64
