"""AST -> IR compiler for the restricted-Python device subset.

Supported subset
----------------
* typed parameters (``i64``, ``f64``, pointer types) and return annotation,
* locals with inferred types (``x = 0`` -> i64, ``x = 0.0`` -> f64); a
  variable keeps one type for its whole lifetime (int-to-float assignment
  converts, float-to-int requires an explicit ``int()``),
* arithmetic/comparison/bit operators with C-like promotion (any f64 operand
  promotes the operation to f64; ``/`` always divides in f64; ``//`` is
  integer division for ints and ``floor(a/b)`` for floats),
* pointer arithmetic (``p + n`` advances by *elements*), subscript
  loads/stores, pointer difference,
* ``if``/``while``/``for i in range(...)`` (constant step), ``break``,
  ``continue``, ``assert``, ``return``,
* calls to other device functions of the same program (later inlined), to
  host externs (later RPC-lowered), to ``dgpu.*`` intrinsics and ``math.*``,
  and to the builtins ``int``, ``float``, ``abs``, ``min``, ``max``,
* ``for i in dgpu.parallel_range(n)``: the OpenMP-style worksharing loop —
  the body runs under a team-wide SPMD region (``par_begin``/``par_end``)
  with a static-strided schedule, mirroring ``#pragma omp parallel for``,
* string literals as call arguments (interned into constant i8 globals),
* module-level globals declared on the :class:`~repro.frontend.dsl.Program`
  (scalars read/write; arrays decay to pointers),
* reads of plain int/float constants from the enclosing Python scope
  (problem-size constants).

Variables are compiled to *mutable home registers* (the IR is deliberately
not SSA), so control-flow merges need no phi nodes.
"""

from __future__ import annotations

import ast
import math as _math_module
import textwrap
from typing import Any

from repro.errors import (
    FrontendError,
    TypeInferenceError,
    UnsupportedConstructError,
)
from repro.frontend import astsafe
from repro.frontend.dsl import Program, SourceFunction, _DgpuNamespace
from repro.frontend.dtypes import (
    DT_F64,
    DT_I64,
    DType,
    Value,
    annotation_to_dtype,
    memtype_to_dtype,
    ptr_f64,
    ptr_i8,
    ptr_i64,
)
from repro.frontend.intrinsics import (
    COMPILER_HANDLED,
    HOST_FUNCS,
    INTRINSICS,
    host_func_ret,
)
from repro.ir.builder import IRBuilder
from repro.ir.instructions import Opcode
from repro.ir.module import Function, GlobalVar
from repro.ir.types import MemType, ScalarType

_MATH_TO_INTRINSIC = {
    "sqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "sin": "sin",
    "cos": "cos",
    "tan": "tan",
    "fabs": "fabs",
    "floor": "floor",
    "ceil": "ceil",
    "pow": "pow",
}

_STACK_ALLOC = {
    "stack_i8": (MemType.I8, ptr_i8),
    "stack_i32": (MemType.I32, None),  # pointer type resolved lazily below
    "stack_i64": (MemType.I64, ptr_i64),
    "stack_f32": (MemType.F32, None),
    "stack_f64": (MemType.F64, ptr_f64),
}


def signature_of(sf: SourceFunction) -> tuple[list[tuple[str, DType]], DType | None]:
    """Extract the frontend signature (params, return) from annotations."""
    pyfunc = sf.pyfunc
    code = pyfunc.__code__
    argnames = code.co_varnames[: code.co_argcount]
    annotations = dict(getattr(pyfunc, "__annotations__", {}))
    params: list[tuple[str, DType]] = []
    for name in argnames:
        if name not in annotations:
            raise FrontendError(
                f"parameter {name!r} needs a type annotation", func=sf.name
            )
        params.append((name, _resolve_annotation(annotations[name], pyfunc)))
    ret_ann = annotations.get("return")
    ret: DType | None
    if ret_ann is None or ret_ann is type(None) or ret_ann == "None":
        ret = None
    else:
        ret = _resolve_annotation(ret_ann, pyfunc)
    return params, ret


def _resolve_annotation(ann: Any, pyfunc) -> DType:
    if isinstance(ann, str):
        try:
            ann = eval(ann, pyfunc.__globals__)  # noqa: S307 - controlled input
        except Exception:
            pass
    return annotation_to_dtype(ann)


def _program_signatures(program: Program) -> dict[str, tuple[list[tuple[str, DType]], DType | None]]:
    cache = getattr(program, "_sigtable", None)
    if cache is None:
        cache = {name: signature_of(sf) for name, sf in program.functions.items()}
        program._sigtable = cache
    return cache


def compile_source_function(sf: SourceFunction, program: Program) -> Function:
    """Compile one registered device function to IR."""
    return _FunctionCompiler(sf, program).compile()


class _LoopCtx:
    __slots__ = ("cont_block", "break_block", "in_parallel")

    def __init__(self, cont_block, break_block, in_parallel: bool):
        self.cont_block = cont_block
        self.break_block = break_block
        self.in_parallel = in_parallel


class _FunctionCompiler(ast.NodeVisitor):
    def __init__(self, sf: SourceFunction, program: Program):
        self.sf = sf
        self.program = program
        self.sigs = _program_signatures(program)
        self.params, self.ret_dt = self.sigs[sf.name]
        pyfunc = sf.pyfunc
        self.py_scope: dict[str, Any] = dict(pyfunc.__globals__)
        if pyfunc.__closure__:
            for name, cell in zip(pyfunc.__code__.co_freevars, pyfunc.__closure__):
                try:
                    self.py_scope[name] = cell.cell_contents
                except ValueError:
                    pass
        ret_scalar = ScalarType.VOID if self.ret_dt is None else self.ret_dt.scalar
        self.fn = Function(
            sf.name,
            [(n, dt.scalar) for n, dt in self.params],
            ret_scalar,
        )
        self.b = IRBuilder(self.fn)
        self.vars: dict[str, Value] = {}
        self.loop_stack: list[_LoopCtx] = []
        self.par_depth = 0
        self.cur_line = 0
        # AST linenos are relative to the decorated source snippet;
        # co_firstlineno is the file line of its first line (the decorator),
        # so snippet line L sits at file line L + _line_base.
        self._line_base = pyfunc.__code__.co_firstlineno - 1

    # ------------------------------------------------------------------
    def err(self, msg: str, node: ast.AST | None = None) -> FrontendError:
        line = getattr(node, "lineno", self.cur_line) if node is not None else self.cur_line
        return FrontendError(msg, line=line, func=self.sf.name)

    def unsupported(self, msg: str, node: ast.AST | None = None) -> UnsupportedConstructError:
        line = getattr(node, "lineno", self.cur_line) if node is not None else self.cur_line
        return UnsupportedConstructError(msg, line=line, func=self.sf.name)

    # ------------------------------------------------------------------
    def compile(self) -> Function:
        tree = astsafe.parse(textwrap.dedent(self.sf.source))
        fdef = tree.body[0]
        if not isinstance(fdef, ast.FunctionDef):
            raise self.err("expected a function definition")
        entry = self.b.create_block("entry")
        self.b.set_block(entry)
        for (name, dt), reg in zip(self.params, self.fn.param_regs):
            self.vars[name] = Value(reg, dt)
        self.compile_stmts(fdef.body)
        if not self.b.is_terminated:
            if self.ret_dt is None:
                self.b.ret()
            elif self.sf.is_main:
                # C semantics: falling off the end of main returns 0.
                self.b.retval(self.b.const_i(0))
            else:
                self.b.trap(f"missing return in {self.sf.name}")
        return self.fn

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def compile_stmts(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if self.b.is_terminated:
                return  # unreachable code after return/break is dropped
            self.cur_line = getattr(stmt, "lineno", self.cur_line)
            self.b.set_loc(
                self.cur_line + self._line_base, getattr(stmt, "col_offset", 0)
            )
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt: ast.stmt) -> None:
        method = getattr(self, f"stmt_{type(stmt).__name__}", None)
        if method is None:
            raise self.unsupported(f"statement {type(stmt).__name__}", stmt)
        method(stmt)

    def stmt_Pass(self, stmt: ast.Pass) -> None:
        pass

    def stmt_Expr(self, stmt: ast.Expr) -> None:
        if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, str):
            return  # docstring
        if isinstance(stmt.value, ast.Call):
            self.compile_call(stmt.value, want_value=False)
            return
        raise self.unsupported("expression statement without effect", stmt)

    def stmt_Return(self, stmt: ast.Return) -> None:
        if self.par_depth > 0:
            raise self.err("return inside a parallel_range region is not allowed", stmt)
        if stmt.value is None:
            if self.ret_dt is not None:
                raise self.err("missing return value", stmt)
            self.b.ret()
            return
        if self.ret_dt is None:
            raise self.err("returning a value from a void function", stmt)
        v = self.expr(stmt.value)
        v = self.coerce_value(v, self.ret_dt, stmt)
        self.b.retval(v.reg)

    def stmt_Assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            raise self.unsupported("chained assignment", stmt)
        target = stmt.targets[0]
        if isinstance(target, ast.Tuple):
            if not isinstance(stmt.value, ast.Tuple) or len(target.elts) != len(stmt.value.elts):
                raise self.unsupported("tuple assignment needs a matching tuple literal", stmt)
            values = [self.expr(e) for e in stmt.value.elts]
            temps = []
            for v in values:  # snapshot through temps for a, b = b, a
                t = self.b.mov(v.reg)
                temps.append(Value(t, v.dt))
            for tgt, v in zip(target.elts, temps):
                self.assign_to(tgt, v, stmt)
            return
        value = self.expr(stmt.value)
        self.assign_to(target, value, stmt)

    def stmt_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is None:
            raise self.unsupported("annotation without a value", stmt)
        value = self.expr(stmt.value)
        try:
            want = _resolve_annotation(
                ast.unparse(stmt.annotation), self.sf.pyfunc
            )
        except Exception as exc:
            raise self.err(f"bad annotation: {exc}", stmt) from None
        value = self.coerce_value(value, want, stmt)
        self.assign_to(stmt.target, value, stmt)

    def stmt_AugAssign(self, stmt: ast.AugAssign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            cur = self.load_name(target.id, stmt)
            rhs = self.expr(stmt.value)
            new = self.binop(type(stmt.op).__name__, cur, rhs, stmt)
            self.assign_to(target, new, stmt)
        elif isinstance(target, ast.Subscript):
            base = self.expr(target.value)
            if not base.is_ptr:
                raise self.err("subscript on a non-pointer", stmt)
            addr = self.subscript_addr(base, target, stmt)
            mty = base.dt.elem_memtype
            cur = Value(self.b.load(addr, mty), self._deref_dtype(base.dt))
            rhs = self.expr(stmt.value)
            new = self.binop(type(stmt.op).__name__, cur, rhs, stmt)
            new = self.coerce_value(new, cur.dt, stmt)
            self.b.store(addr, new.reg, mty)
        else:
            raise self.unsupported("augmented assignment target", stmt)

    def stmt_If(self, stmt: ast.If) -> None:
        cond = self.as_bool(self.expr(stmt.test), stmt)
        then_block = self.b.create_block("if.then")
        merge_block = self.b.create_block("if.end")
        else_block = self.b.create_block("if.else") if stmt.orelse else merge_block
        self.b.cbr(cond.reg, then_block, else_block)

        outer_vars = set(self.vars)
        self.b.set_block(then_block)
        self.compile_stmts(stmt.body)
        if not self.b.is_terminated:
            self.b.br(merge_block)
        self._drop_new_vars(outer_vars)

        if stmt.orelse:
            self.b.set_block(else_block)
            self.compile_stmts(stmt.orelse)
            if not self.b.is_terminated:
                self.b.br(merge_block)
            self._drop_new_vars(outer_vars)

        self.b.set_block(merge_block)

    def stmt_While(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self.unsupported("while/else", stmt)
        cond_block = self.b.create_block("while.cond")
        body_block = self.b.create_block("while.body")
        exit_block = self.b.create_block("while.end")
        self.b.br(cond_block)
        self.b.set_block(cond_block)
        cond = self.as_bool(self.expr(stmt.test), stmt)
        self.b.cbr(cond.reg, body_block, exit_block)

        outer_vars = set(self.vars)
        self.loop_stack.append(_LoopCtx(cond_block, exit_block, self.par_depth > 0))
        self.b.set_block(body_block)
        self.compile_stmts(stmt.body)
        if not self.b.is_terminated:
            self.b.br(cond_block)
        self.loop_stack.pop()
        self._drop_new_vars(outer_vars)
        self.b.set_block(exit_block)

    def stmt_For(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self.unsupported("for/else", stmt)
        it = stmt.iter
        if not isinstance(it, ast.Call):
            raise self.unsupported("for loops support range(...) and dgpu.parallel_range(...)", stmt)
        if self._is_dgpu_attr(it.func, "parallel_range"):
            self.compile_parallel_for(stmt, it)
            return
        if not (isinstance(it.func, ast.Name) and it.func.id == "range"):
            raise self.unsupported("for loops support range(...) and dgpu.parallel_range(...)", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise self.unsupported("for target must be a simple name", stmt)
        args = it.args
        if len(args) == 1:
            start_v: Value | None = None
            stop_node = args[0]
            step = 1
        elif len(args) in (2, 3):
            start_v = self.to_i64(self.expr(args[0]), stmt)
            stop_node = args[1]
            step = 1
            if len(args) == 3:
                step = self._constant_int(args[2])
                if step is None or step == 0:
                    raise self.unsupported("range step must be a nonzero constant", stmt)
        else:
            raise self.err("range() takes 1-3 arguments", stmt)

        stop = self.to_i64(self.expr(stop_node), stmt)
        stop_snap = Value(self.b.mov(stop.reg), DT_I64)  # loop bound evaluated once
        if start_v is None:
            start_v = Value(self.b.const_i(0), DT_I64)

        ivar = self._bind_var(stmt.target.id, DT_I64, stmt)
        self.b.mov_to(ivar.reg, start_v.reg)

        cond_block = self.b.create_block("for.cond")
        body_block = self.b.create_block("for.body")
        exit_block = self.b.create_block("for.end")
        self.b.br(cond_block)
        self.b.set_block(cond_block)
        cmp_op = Opcode.ICMP_SLT if step > 0 else Opcode.ICMP_SGT
        cond = self.b.binop(cmp_op, ivar.reg, stop_snap.reg)
        self.b.cbr(cond, body_block, exit_block)

        incr_block = self.b.create_block("for.incr")
        outer_vars = set(self.vars) | {stmt.target.id}
        self.loop_stack.append(_LoopCtx(incr_block, exit_block, self.par_depth > 0))
        self.b.set_block(body_block)
        self.compile_stmts(stmt.body)
        if not self.b.is_terminated:
            self.b.br(incr_block)
        self.loop_stack.pop()
        self._drop_new_vars(outer_vars)

        self.b.set_block(incr_block)
        stepr = self.b.const_i(step)
        self.b.mov_to(ivar.reg, self.b.binop(Opcode.ADD, ivar.reg, stepr))
        self.b.br(cond_block)
        self.b.set_block(exit_block)

    def compile_parallel_for(self, stmt: ast.For, it: ast.Call) -> None:
        """``for i in dgpu.parallel_range(n)``: OpenMP-style worksharing.

        Lowering (executed by the instance's initial thread up to
        ``par_begin``, then by all its threads):

        .. code-block:: none

            n    = <trip count>          ; sequential
            par_begin                    ; activate team, broadcast registers
            i    = tid
            while i < n: body; i += ntid ; static-strided schedule
            par_end                      ; implicit barrier, back to 1 thread
        """
        if self.par_depth > 0:
            raise self.unsupported("nested parallel_range", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise self.unsupported("parallel_range target must be a simple name", stmt)
        if len(it.args) != 1:
            raise self.err("parallel_range takes exactly one argument", stmt)

        stop = self.to_i64(self.expr(it.args[0]), stmt)
        stop_var = self._bind_var(f"__par_stop.{stmt.lineno}", DT_I64, stmt)
        self.b.mov_to(stop_var.reg, stop.reg)

        self.b.par_begin()
        self.par_depth += 1
        ivar = self._bind_var(stmt.target.id, DT_I64, stmt)
        self.b.mov_to(ivar.reg, self.b.tid())

        cond_block = self.b.create_block("par.cond")
        body_block = self.b.create_block("par.body")
        exit_block = self.b.create_block("par.end")
        self.b.br(cond_block)
        self.b.set_block(cond_block)
        cond = self.b.binop(Opcode.ICMP_SLT, ivar.reg, stop_var.reg)
        self.b.cbr(cond, body_block, exit_block)

        incr_block = self.b.create_block("par.incr")
        outer_vars = set(self.vars) | {stmt.target.id}
        self.loop_stack.append(_LoopCtx(incr_block, None, True))
        self.b.set_block(body_block)
        self.compile_stmts(stmt.body)
        if not self.b.is_terminated:
            self.b.br(incr_block)
        self.loop_stack.pop()
        self._drop_new_vars(outer_vars)

        self.b.set_block(incr_block)
        self.b.mov_to(ivar.reg, self.b.binop(Opcode.ADD, ivar.reg, self.b.ntid()))
        self.b.br(cond_block)

        self.b.set_block(exit_block)
        self.b.par_end()
        self.par_depth -= 1
        self.vars.pop(f"__par_stop.{stmt.lineno}", None)

    def stmt_Break(self, stmt: ast.Break) -> None:
        if not self.loop_stack:
            raise self.err("break outside a loop", stmt)
        ctx = self.loop_stack[-1]
        if ctx.break_block is None:
            raise self.unsupported(
                "break out of a parallel_range loop (OpenMP worksharing loops "
                "cannot be broken)",
                stmt,
            )
        self.b.br(ctx.break_block)

    def stmt_Continue(self, stmt: ast.Continue) -> None:
        if not self.loop_stack:
            raise self.err("continue outside a loop", stmt)
        self.b.br(self.loop_stack[-1].cont_block)

    def stmt_Assert(self, stmt: ast.Assert) -> None:
        cond = self.as_bool(self.expr(stmt.test), stmt)
        ok_block = self.b.create_block("assert.ok")
        fail_block = self.b.create_block("assert.fail")
        self.b.cbr(cond.reg, ok_block, fail_block)
        self.b.set_block(fail_block)
        msg = "assertion failed"
        if stmt.msg is not None and isinstance(stmt.msg, ast.Constant):
            msg = str(stmt.msg.value)
        self.b.trap(f"{msg} ({self.sf.name}:{stmt.lineno})")
        self.b.set_block(ok_block)

    # ------------------------------------------------------------------
    # assignment helpers
    # ------------------------------------------------------------------
    def assign_to(self, target: ast.expr, value: Value, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.vars:
                home = self.vars[name]
                value = self.coerce_value(value, home.dt, stmt)
                self.b.mov_to(home.reg, value.reg)
                return
            g = self.program.globals.get(name)
            if g is not None:
                if not g.scalar or g.constant:
                    raise self.err(f"cannot assign to global array {name!r}", stmt)
                want = memtype_to_dtype(g.mty)
                value = self.coerce_value(value, want, stmt)
                addr = self.b.gaddr(name)
                self.b.store(addr, value.reg, g.mty)
                return
            var = self._bind_var(name, value.dt, stmt)
            self.b.mov_to(var.reg, value.reg)
            return
        if isinstance(target, ast.Subscript):
            base = self.expr(target.value)
            if not base.is_ptr:
                raise self.err("subscript store on a non-pointer", stmt)
            addr = self.subscript_addr(base, target, stmt)
            mty = base.dt.elem_memtype
            want = self._deref_dtype(base.dt)
            value = self.coerce_value(value, want, stmt)
            self.b.store(addr, value.reg, mty)
            return
        raise self.unsupported("assignment target", stmt)

    def _bind_var(self, name: str, dt: DType, node) -> Value:
        if name in self.vars:
            cur = self.vars[name]
            if cur.dt != dt and not (cur.dt.is_float and dt.is_int):
                raise TypeInferenceError(
                    f"variable {name!r} changes type from {cur.dt} to {dt}",
                    line=getattr(node, "lineno", None),
                    func=self.sf.name,
                )
            return cur
        reg = self.fn.new_reg(dt.scalar)
        v = Value(reg, dt)
        self.vars[name] = v
        return v

    def _drop_new_vars(self, keep: set[str]) -> None:
        for name in [n for n in self.vars if n not in keep]:
            del self.vars[name]

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expr(self, node: ast.expr) -> Value:
        method = getattr(self, f"expr_{type(node).__name__}", None)
        if method is None:
            raise self.unsupported(f"expression {type(node).__name__}", node)
        if hasattr(node, "lineno"):
            self.b.set_loc(node.lineno + self._line_base, node.col_offset)
        return method(node)

    def expr_Constant(self, node: ast.Constant) -> Value:
        v = node.value
        if isinstance(v, bool):
            return Value(self.b.const_i(int(v)), DT_I64)
        if isinstance(v, int):
            return Value(self.b.const_i(v), DT_I64)
        if isinstance(v, float):
            return Value(self.b.const_f(v), DT_F64)
        if isinstance(v, str):
            return self.intern_string(v)
        raise self.unsupported(f"constant {v!r}", node)

    def expr_Name(self, node: ast.Name) -> Value:
        return self.load_name(node.id, node)

    def load_name(self, name: str, node) -> Value:
        if name in self.vars:
            return self.vars[name]
        g = self.program.globals.get(name)
        if g is not None:
            addr = self.b.gaddr(name)
            if g.scalar:
                return Value(self.b.load(addr, g.mty), memtype_to_dtype(g.mty))
            from repro.frontend.dtypes import ptr_of

            return Value(addr, ptr_of(g.mty))
        if name in self.py_scope:
            obj = self.py_scope[name]
            if isinstance(obj, bool):
                return Value(self.b.const_i(int(obj)), DT_I64)
            if isinstance(obj, int):
                return Value(self.b.const_i(obj), DT_I64)
            if isinstance(obj, float):
                return Value(self.b.const_f(obj), DT_F64)
            raise self.err(
                f"name {name!r} resolves to host object {type(obj).__name__}; only "
                "int/float constants can be captured from the enclosing scope",
                node,
            )
        if name in self.program.functions or name in HOST_FUNCS:
            raise self.err(f"function {name!r} can only be called, not referenced", node)
        raise self.err(f"undefined name {name!r}", node)

    def expr_IfExp(self, node: ast.IfExp) -> Value:
        cond = self.as_bool(self.expr(node.test), node)
        a = self.expr(node.body)
        c = self.expr(node.orelse)
        a, c = self.promote_pair(a, c, node)
        return Value(self.b.select(cond.reg, a.reg, c.reg), a.dt)

    def expr_BinOp(self, node: ast.BinOp) -> Value:
        a = self.expr(node.left)
        b = self.expr(node.right)
        return self.binop(type(node.op).__name__, a, b, node)

    def expr_UnaryOp(self, node: ast.UnaryOp) -> Value:
        v = self.expr(node.operand)
        if isinstance(node.op, ast.USub):
            if v.dt.is_float:
                return Value(self.b.unop(Opcode.FNEG, v.reg), DT_F64)
            return Value(self.b.unop(Opcode.INEG, v.reg), DT_I64)
        if isinstance(node.op, ast.UAdd):
            return v
        if isinstance(node.op, ast.Not):
            nb = self.as_bool(v, node)
            zero = self.b.const_i(0)
            return Value(self.b.binop(Opcode.ICMP_EQ, nb.reg, zero), DT_I64)
        if isinstance(node.op, ast.Invert):
            if not v.dt.is_int:
                raise self.err("~ requires an integer", node)
            return Value(self.b.unop(Opcode.BNOT, v.reg), DT_I64)
        raise self.unsupported("unary operator", node)

    def expr_BoolOp(self, node: ast.BoolOp) -> Value:
        # Both sides evaluate (no short-circuit); result is 0/1.
        acc = self.as_bool(self.expr(node.values[0]), node)
        op = Opcode.AND if isinstance(node.op, ast.And) else Opcode.OR
        for sub in node.values[1:]:
            nxt = self.as_bool(self.expr(sub), node)
            acc = Value(self.b.binop(op, acc.reg, nxt.reg), DT_I64)
        return acc

    _CMP_INT = {
        ast.Eq: Opcode.ICMP_EQ,
        ast.NotEq: Opcode.ICMP_NE,
        ast.Lt: Opcode.ICMP_SLT,
        ast.LtE: Opcode.ICMP_SLE,
        ast.Gt: Opcode.ICMP_SGT,
        ast.GtE: Opcode.ICMP_SGE,
    }
    _CMP_FLT = {
        ast.Eq: Opcode.FCMP_EQ,
        ast.NotEq: Opcode.FCMP_NE,
        ast.Lt: Opcode.FCMP_LT,
        ast.LtE: Opcode.FCMP_LE,
        ast.Gt: Opcode.FCMP_GT,
        ast.GtE: Opcode.FCMP_GE,
    }

    def expr_Compare(self, node: ast.Compare) -> Value:
        if len(node.ops) != 1:
            raise self.unsupported("chained comparison", node)
        a = self.expr(node.left)
        b = self.expr(node.comparators[0])
        a, b = self.promote_pair(a, b, node)
        table = self._CMP_FLT if a.dt.is_float else self._CMP_INT
        op = table.get(type(node.ops[0]))
        if op is None:
            raise self.unsupported(f"comparison {type(node.ops[0]).__name__}", node)
        return Value(self.b.binop(op, a.reg, b.reg), DT_I64)

    def expr_Subscript(self, node: ast.Subscript) -> Value:
        base = self.expr(node.value)
        if not base.is_ptr:
            raise self.err("subscript on a non-pointer", node)
        addr = self.subscript_addr(base, node, node)
        mty = base.dt.elem_memtype
        return Value(self.b.load(addr, mty), self._deref_dtype(base.dt))

    def expr_Call(self, node: ast.Call) -> Value:
        v = self.compile_call(node, want_value=True)
        assert v is not None
        return v

    def expr_Attribute(self, node: ast.Attribute) -> Value:
        if isinstance(node.value, ast.Name):
            obj = self.py_scope.get(node.value.id)
            if obj is _math_module:
                const = {"pi": _math_module.pi, "e": _math_module.e, "inf": _math_module.inf}.get(
                    node.attr
                )
                if const is not None:
                    return Value(self.b.const_f(const), DT_F64)
        raise self.unsupported("attribute access (only math.pi/e/inf and calls)", node)

    # ------------------------------------------------------------------
    # call compilation
    # ------------------------------------------------------------------
    def compile_call(self, node: ast.Call, *, want_value: bool) -> Value | None:
        if node.keywords:
            raise self.unsupported("keyword arguments", node)
        func = node.func

        # dgpu.<intrinsic>(...)
        if isinstance(func, ast.Attribute) and self._is_dgpu(func.value):
            return self.compile_intrinsic(func.attr, node)

        # math.<fn>(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and self.py_scope.get(func.value.id) is _math_module
        ):
            intr = _MATH_TO_INTRINSIC.get(func.attr)
            if intr is None:
                raise self.unsupported(f"math.{func.attr}", node)
            args = [self.expr(a) for a in node.args]
            return INTRINSICS[intr](self.b, args)

        if not isinstance(func, ast.Name):
            raise self.unsupported("indirect call", node)
        name = func.id

        # builtins
        if name == "int":
            args = [self.expr(a) for a in node.args]
            return INTRINSICS["i64"](self.b, args)
        if name == "float":
            args = [self.expr(a) for a in node.args]
            return INTRINSICS["f64"](self.b, args)
        if name == "abs":
            (v,) = [self.expr(a) for a in node.args]
            if v.dt.is_float:
                return Value(self.b.unop(Opcode.FABS, v.reg), DT_F64)
            neg = self.b.unop(Opcode.INEG, v.reg)
            zero = self.b.const_i(0)
            isneg = self.b.binop(Opcode.ICMP_SLT, v.reg, zero)
            return Value(self.b.select(isneg, neg, v.reg), DT_I64)
        if name in ("min", "max"):
            if len(node.args) != 2:
                raise self.unsupported(f"{name} with {len(node.args)} args", node)
            a = self.expr(node.args[0])
            b = self.expr(node.args[1])
            a, b = self.promote_pair(a, b, node)
            if a.dt.is_float:
                op = Opcode.FMIN if name == "min" else Opcode.FMAX
                return Value(self.b.binop(op, a.reg, b.reg), DT_F64)
            op = Opcode.IMIN if name == "min" else Opcode.IMAX
            return Value(self.b.binop(op, a.reg, b.reg), a.dt)
        if name == "print":
            raise self.unsupported("print (use printf, serviced via host RPC)", node)

        # device function in the same program (or the linked libc)
        sig = self.sigs.get(name)
        if sig is None and self.program.link_libc:
            from repro.runtime.libc import LIBC_SIGNATURES

            sig = LIBC_SIGNATURES.get(name)
        if sig is not None:
            params, ret = sig
            if len(node.args) != len(params):
                raise self.err(
                    f"{name}() takes {len(params)} arguments, got {len(node.args)}", node
                )
            argvals = []
            for anode, (pname, pdt) in zip(node.args, params):
                v = self.coerce_value(self.expr(anode), pdt, node)
                argvals.append(v.reg)
            ret_scalar = ScalarType.VOID if ret is None else ret.scalar
            res = self.b.call(name, argvals, ret_scalar)
            if ret is None:
                return None if not want_value else self._void_error(name, node)
            return Value(res, ret)

        # host extern
        if name in HOST_FUNCS or name in self.program.extern_host:
            sig = HOST_FUNCS.get(name, (None, DT_I64))
            fixed, ret_dt = sig
            argvals = [self.expr(a) for a in node.args]
            if fixed is not None and len(argvals) != len(fixed):
                raise self.err(
                    f"{name}() takes {len(fixed)} arguments, got {len(argvals)}", node
                )
            regs = [v.reg for v in argvals]
            res = self.b.call(name, regs, host_func_ret(name))
            if ret_dt is None:
                return None if not want_value else self._void_error(name, node)
            return Value(res, ret_dt)

        raise self.err(f"call to unknown function {name!r}", node)

    def _void_error(self, name: str, node) -> Value:
        raise self.err(f"{name}() returns no value", node)

    def compile_intrinsic(self, attr: str, node: ast.Call) -> Value | None:
        if attr == "parallel_range":
            raise self.err("parallel_range is only valid as a for-loop iterator", node)
        if attr == "cast":
            if len(node.args) != 2:
                raise self.err("dgpu.cast takes (value, dtype)", node)
            v = self.expr(node.args[0])
            dt = self._static_dtype(node.args[1])
            if v.dt.is_float and (dt.is_ptr or dt.is_int):
                raise self.err("cast f64 -> pointer/int needs int() first", node)
            return Value(v.reg, dt)
        if attr in _STACK_ALLOC:
            mty, pdt = _STACK_ALLOC[attr]
            if pdt is None:
                from repro.frontend.dtypes import ptr_of

                pdt = ptr_of(mty)
            count = self._constant_int(node.args[0]) if node.args else None
            if count is None or count <= 0:
                raise self.err(
                    f"dgpu.{attr} needs a positive compile-time constant count", node
                )
            reg = self.b.salloc(count * mty.size)
            return Value(reg, pdt)
        if attr == "trap":
            msg = "device trap"
            if node.args and isinstance(node.args[0], ast.Constant):
                msg = str(node.args[0].value)
            self.b.trap(msg)
            return None
        emitter = INTRINSICS.get(attr)
        if emitter is None:
            raise self.err(f"unknown intrinsic dgpu.{attr}", node)
        args = [self.expr(a) for a in node.args]
        return emitter(self.b, args)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _is_dgpu(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Name)
            and isinstance(self.py_scope.get(node.id), _DgpuNamespace)
        )

    def _is_dgpu_attr(self, node: ast.expr, attr: str) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and self._is_dgpu(node.value)
        )

    def _static_dtype(self, node: ast.expr) -> DType:
        if isinstance(node, ast.Name):
            obj = self.py_scope.get(node.id)
            if isinstance(obj, DType):
                return obj
        raise self.err("dtype argument must name an imported repro type", node)

    def _constant_int(self, node: ast.expr) -> int | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._constant_int(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.Name):
            obj = self.py_scope.get(node.id)
            if isinstance(obj, int) and not isinstance(obj, bool):
                return obj
        return None

    def subscript_addr(self, base: Value, node: ast.Subscript, stmt) -> Any:
        idx = self.to_i64(self.expr(node.slice), stmt)
        esize = base.dt.elem_size
        scaled = self.b.binop(Opcode.MUL, idx.reg, self.b.const_i(esize))
        return self.b.binop(Opcode.ADD, base.reg, scaled)

    def _deref_dtype(self, pdt: DType) -> DType:
        return pdt.deref

    def to_i64(self, v: Value, node) -> Value:
        if v.dt.is_float:
            raise self.err("expected an integer (use int() to truncate)", node)
        return v

    def as_bool(self, v: Value, node) -> Value:
        if v.dt.is_float:
            zero = self.b.const_f(0.0)
            return Value(self.b.binop(Opcode.FCMP_NE, v.reg, zero), DT_I64)
        zero = self.b.const_i(0)
        return Value(self.b.binop(Opcode.ICMP_NE, v.reg, zero), DT_I64)

    def coerce_value(self, v: Value, want: DType, node) -> Value:
        if v.dt == want:
            return v
        if want.is_float and v.dt.is_int:
            return Value(self.b.sitofp(v.reg), DT_F64)
        if want.is_int and v.dt.is_ptr:
            return Value(v.reg, DT_I64)  # pointers decay to integers
        if want.is_ptr and v.dt.is_int:
            return Value(v.reg, want)  # ints may be cast to pointers implicitly
        if want.is_ptr and v.dt.is_ptr:
            raise TypeInferenceError(
                f"pointer type mismatch: have {v.dt}, want {want} (use dgpu.cast)",
                line=getattr(node, "lineno", None),
                func=self.sf.name,
            )
        raise TypeInferenceError(
            f"cannot convert {v.dt} to {want}",
            line=getattr(node, "lineno", None),
            func=self.sf.name,
        )

    def promote_pair(self, a: Value, b: Value, node) -> tuple[Value, Value]:
        if a.dt.is_float or b.dt.is_float:
            if a.dt.is_ptr or b.dt.is_ptr:
                raise self.err("cannot mix pointers and floats", node)
            if not a.dt.is_float:
                a = Value(self.b.sitofp(a.reg), DT_F64)
            if not b.dt.is_float:
                b = Value(self.b.sitofp(b.reg), DT_F64)
        return a, b

    # ------------------------------------------------------------------
    # binary operator dispatch
    # ------------------------------------------------------------------
    def binop(self, opname: str, a: Value, b: Value, node) -> Value:
        if opname == "Add":
            if a.is_ptr and b.dt.is_int:
                return self._ptr_advance(a, b)
            if b.is_ptr and a.dt.is_int:
                return self._ptr_advance(b, a)
            a, b = self.promote_pair(a, b, node)
            op = Opcode.FADD if a.dt.is_float else Opcode.ADD
            return Value(self.b.binop(op, a.reg, b.reg), a.dt)
        if opname == "Sub":
            if a.is_ptr and b.is_ptr:
                if a.dt != b.dt:
                    raise self.err("pointer difference of mismatched types", node)
                diff = self.b.binop(Opcode.SUB, a.reg, b.reg)
                esz = self.b.const_i(a.dt.elem_size)
                return Value(self.b.binop(Opcode.SDIV, diff, esz), DT_I64)
            if a.is_ptr and b.dt.is_int:
                neg = self.b.unop(Opcode.INEG, b.reg)
                return self._ptr_advance(a, Value(neg, DT_I64))
            a, b = self.promote_pair(a, b, node)
            op = Opcode.FSUB if a.dt.is_float else Opcode.SUB
            return Value(self.b.binop(op, a.reg, b.reg), a.dt)
        if opname == "Mult":
            a, b = self.promote_pair(a, b, node)
            op = Opcode.FMUL if a.dt.is_float else Opcode.MUL
            return Value(self.b.binop(op, a.reg, b.reg), a.dt)
        if opname == "Div":
            a = Value(self.b.sitofp(a.reg), DT_F64) if not a.dt.is_float else a
            b = Value(self.b.sitofp(b.reg), DT_F64) if not b.dt.is_float else b
            return Value(self.b.binop(Opcode.FDIV, a.reg, b.reg), DT_F64)
        if opname == "FloorDiv":
            a, b = self.promote_pair(a, b, node)
            if a.dt.is_float:
                q = self.b.binop(Opcode.FDIV, a.reg, b.reg)
                return Value(self.b.unop(Opcode.FLOOR, q), DT_F64)
            return Value(self.b.binop(Opcode.SDIV, a.reg, b.reg), DT_I64)
        if opname == "Mod":
            a, b = self.promote_pair(a, b, node)
            if a.dt.is_float:
                raise self.unsupported("float % (use x - floor(x/y)*y)", node)
            return Value(self.b.binop(Opcode.SREM, a.reg, b.reg), DT_I64)
        if opname == "Pow":
            a = Value(self.b.sitofp(a.reg), DT_F64) if not a.dt.is_float else a
            b = Value(self.b.sitofp(b.reg), DT_F64) if not b.dt.is_float else b
            return Value(self.b.binop(Opcode.FPOW, a.reg, b.reg), DT_F64)
        if opname in ("LShift", "RShift", "BitAnd", "BitOr", "BitXor"):
            if not (a.dt.is_int and b.dt.is_int):
                raise self.err(f"{opname} requires integers", node)
            op = {
                "LShift": Opcode.SHL,
                "RShift": Opcode.ASHR,
                "BitAnd": Opcode.AND,
                "BitOr": Opcode.OR,
                "BitXor": Opcode.XOR,
            }[opname]
            return Value(self.b.binop(op, a.reg, b.reg), DT_I64)
        raise self.unsupported(f"operator {opname}", node)

    def _ptr_advance(self, p: Value, n: Value) -> Value:
        esz = self.b.const_i(p.dt.elem_size)
        off = self.b.binop(Opcode.MUL, n.reg, esz)
        return Value(self.b.binop(Opcode.ADD, p.reg, off), p.dt)

    # ------------------------------------------------------------------
    # string interning
    # ------------------------------------------------------------------
    def intern_string(self, text: str) -> Value:
        import numpy as np

        pool: dict[str, str] = getattr(self.program, "_interned", None) or {}
        if not hasattr(self.program, "_interned"):
            self.program._interned = pool
        name = pool.get(text)
        if name is None:
            name = f"__str.{len(pool)}"
            pool[text] = name
            data = np.frombuffer(text.encode() + b"\x00", dtype=np.int8).copy()
            self.program.globals[name] = GlobalVar(
                name, MemType.I8, data.size, init=data, constant=True
            )
        return Value(self.b.gaddr(name), ptr_i8)
