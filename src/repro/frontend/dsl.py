"""Program container and the ``dgpu`` device-intrinsics namespace.

A :class:`Program` collects device functions (plain Python functions written
in the restricted subset), module-level globals, and host-extern
declarations, then compiles everything to one IR module:

.. code-block:: python

    from repro.frontend import Program, dgpu, i64, ptr_ptr

    prog = Program("myapp")
    N = 1024

    @prog.device
    def work(x: i64) -> i64:
        return x * 2

    @prog.main
    def main(argc: i64, argv: ptr_ptr) -> i64:
        total = 0
        for i in dgpu.parallel_range(N):
            total = total  # ...
        return 0

    module = prog.compile()

``dgpu`` is purely symbolic: its attributes are recognized by the compiler
inside device code and have no host-side behaviour (calling them from normal
Python raises, to catch accidental host execution early).
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import FrontendError, LinkError
from repro.frontend.dtypes import DType, DT_F64, DT_I64
from repro.ir.module import GlobalVar, Module
from repro.ir.types import MemType


class _IntrinsicMarker:
    """Placeholder returned for ``dgpu.<name>``; never executable on host."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __call__(self, *args, **kwargs):
        raise RuntimeError(
            f"dgpu.{self.name} is a device intrinsic; it can only appear inside "
            "device functions compiled by repro (it was called on the host)"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<dgpu.{self.name}>"


class _DgpuNamespace:
    """The symbolic device-intrinsics namespace (singleton ``dgpu``)."""

    def __getattr__(self, name: str) -> _IntrinsicMarker:
        if name.startswith("__"):
            raise AttributeError(name)
        return _IntrinsicMarker(name)


dgpu = _DgpuNamespace()


_DTYPE_TO_MEMTYPE = {
    "i64": MemType.I64,
    "f64": MemType.F64,
    "i32": MemType.I32,
    "f32": MemType.F32,
    "i8": MemType.I8,
}


def _as_memtype(dtype) -> MemType:
    if isinstance(dtype, MemType):
        return dtype
    if isinstance(dtype, str) and dtype in _DTYPE_TO_MEMTYPE:
        return _DTYPE_TO_MEMTYPE[dtype]
    if isinstance(dtype, DType) and not dtype.is_ptr:
        return MemType.F64 if dtype.is_float else MemType.I64
    raise TypeError(f"cannot interpret {dtype!r} as a device memory type")


@dataclass
class SourceFunction:
    """A registered-but-not-yet-compiled device function."""

    pyfunc: Callable
    name: str
    is_main: bool = False

    @property
    def source(self) -> str:
        import inspect

        return textwrap.dedent(inspect.getsource(self.pyfunc))


class Program:
    """A user application: device functions + globals, compiled to a Module.

    Parameters
    ----------
    name:
        Module name (informational).
    link_libc:
        Link the partial device libc (strlen/atoi/atof/malloc/...) into the
        compiled module, mirroring the partial libc of the direct-compilation
        framework (Figure 2 of the paper).  The libc module itself is built
        with ``link_libc=False``.
    """

    def __init__(self, name: str, *, link_libc: bool = True):
        self.name = name
        self.link_libc = link_libc
        self.functions: dict[str, SourceFunction] = {}
        self.globals: dict[str, GlobalVar] = {}
        self.extern_host: set[str] = set()

    # ------------------------------------------------------------------
    # registration decorators
    # ------------------------------------------------------------------
    def device(self, pyfunc: Callable) -> Callable:
        """Register a device function (kept callable on host for reference)."""
        self._register(pyfunc, pyfunc.__name__, is_main=False)
        return pyfunc

    def main(self, pyfunc: Callable) -> Callable:
        """Register the application's ``main``.

        The function is canonicalized under the symbol ``main`` regardless of
        its Python name; the rename pass later rewrites it to ``__user_main``
        exactly like the paper's user-wrapper header (Figure 3).
        """
        self._register(pyfunc, "main", is_main=True)
        return pyfunc

    def _register(self, pyfunc: Callable, name: str, *, is_main: bool) -> None:
        if name in self.functions:
            raise LinkError(f"duplicate device function {name!r} in program {self.name!r}")
        self.functions[name] = SourceFunction(pyfunc, name, is_main=is_main)

    # ------------------------------------------------------------------
    # globals
    # ------------------------------------------------------------------
    def global_scalar(self, name: str, dtype=DT_I64, init: float = 0) -> None:
        """Declare a module-level mutable scalar."""
        mty = _as_memtype(dtype)
        arr = np.array([init], dtype=np.float64 if mty is MemType.F64 else np.int64)
        if mty not in (MemType.I64, MemType.F64):
            raise TypeError("global scalars must be i64 or f64")
        self._add_global(GlobalVar(name, mty, 1, init=arr, scalar=True))

    def global_array(
        self,
        name: str,
        dtype,
        count: int | None = None,
        init=None,
        *,
        constant: bool = False,
    ) -> None:
        """Declare a module-level array.

        Either ``count`` (zero-initialized) or ``init`` (array-like defining
        both contents and length) must be given.
        """
        mty = _as_memtype(dtype)
        np_dtype = {
            MemType.I8: np.int8,
            MemType.I32: np.int32,
            MemType.I64: np.int64,
            MemType.F32: np.float32,
            MemType.F64: np.float64,
        }[mty]
        arr = None
        if init is not None:
            arr = np.ascontiguousarray(np.asarray(init, dtype=np_dtype))
            if count is not None and count != arr.size:
                raise ValueError(f"global {name!r}: count {count} != len(init) {arr.size}")
            count = arr.size
        if count is None:
            raise ValueError(f"global {name!r}: need count or init")
        self._add_global(GlobalVar(name, mty, int(count), init=arr, constant=constant))

    def global_string(self, name: str, text: str) -> None:
        """Declare a NUL-terminated byte string global."""
        data = np.frombuffer(text.encode() + b"\x00", dtype=np.int8).copy()
        self._add_global(GlobalVar(name, MemType.I8, data.size, init=data, constant=True))

    def _add_global(self, g: GlobalVar) -> None:
        if g.name in self.globals or g.name in self.functions:
            raise LinkError(f"duplicate symbol {g.name!r} in program {self.name!r}")
        self.globals[g.name] = g

    # ------------------------------------------------------------------
    # host externs
    # ------------------------------------------------------------------
    def declare_extern_host(self, name: str) -> None:
        """Declare a symbol that only exists on the host (forces RPC)."""
        self.extern_host.add(name)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self) -> Module:
        """Compile all registered functions into a fresh IR module.

        Every call produces an independent module (functions recompiled,
        globals cloned), so one Program can back several loaders/devices
        without pass pipelines interfering with each other.

        The result is a *linked but unprocessed* module; run it through
        :func:`repro.passes.compile_for_device` (the loaders do this for you)
        to apply the declare-target/rename/RPC-lowering/LTO pipeline.
        """
        from dataclasses import replace as _dc_replace

        from repro.frontend.compiler import compile_source_function
        from repro.frontend.intrinsics import HOST_FUNCS

        module = Module(self.name)
        for name in sorted(self.extern_host | set(HOST_FUNCS)):
            module.declare_extern_host(name)
        # Compile functions first: string literals intern new globals into
        # ``self.globals`` as they are encountered.
        fns = [compile_source_function(sf, self) for sf in self.functions.values()]
        for g in self.globals.values():
            module.add_global(_dc_replace(g))
        for fn in fns:
            module.add_function(fn)
        if self.link_libc:
            from repro.passes.linker import link_modules
            from repro.runtime.libc import libc_module

            module = link_modules(module, libc_module())
        return module

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Program {self.name}: {len(self.functions)} funcs, {len(self.globals)} globals>"
