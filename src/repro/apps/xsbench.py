"""XSBench port: memory-bound macroscopic cross-section lookups.

XSBench [Tramm et al. 2014] is the OpenMC proxy whose kernel repeatedly
(1) samples a particle energy, (2) binary-searches an energy grid, and
(3) interpolates the five cross-section channels of every nuclide at that
energy, accumulating macroscopic totals.  Its performance is dominated by
irregular memory lookups — the paper uses it as the memory-bound proxy.

This port keeps that structure on a simplified unionized grid:

* one sorted energy grid of ``-g`` points (generated directly in sorted
  order as ``(j + u_j)/G`` — order-independent, so the init loop can be a
  worksharing ``parallel_range`` like the expanded-parallelism init of the
  GPU-First work [27]),
* ``-n`` nuclides x 5 cross-section channels per grid point,
* ``-l`` lookups: each samples an energy, binary-searches (fixed
  ``log2(G)`` trip count, so warps stay converged), interpolates
  ``5 * n`` channels, and atomically accumulates into a verification
  checksum.

Command line: ``-g <gridpoints> -n <nuclides> -l <lookups> -s <seed>``.
Exit code 0 iff the checksum is positive; the checksum prints via host-RPC
printf for comparison against :func:`repro.apps.reference.xsbench_checksum`.
"""

from __future__ import annotations

from repro.apps.common import register_lcg
from repro.frontend.dsl import Program, dgpu
from repro.frontend.dtypes import i64, ptr_ptr

DEFAULT_GRIDPOINTS = 512
DEFAULT_NUCLIDES = 8
DEFAULT_LOOKUPS = 256
DEFAULT_SEED = 1

#: Cross-section channels per (nuclide, gridpoint): total/elastic/absorption/
#: fission/nu-fission, as in XSBench.
CHANNELS = 5


def build_program() -> Program:
    """Build the XSBench lookup program (see module doc for the CLI)."""
    prog = Program("xsbench")
    register_lcg(prog)

    @prog.main
    def main(argc: i64, argv: ptr_ptr) -> i64:
        gridpoints = 512
        nuclides = 8
        lookups = 256
        seed = 1
        i = 1
        while i < argc:
            if strcmp(argv[i], "-g") == 0:  # noqa: F821 - device libc
                i += 1
                gridpoints = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-n") == 0:  # noqa: F821
                i += 1
                nuclides = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-l") == 0:  # noqa: F821
                i += 1
                lookups = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-s") == 0:  # noqa: F821
                i += 1
                seed = atoi(argv[i])  # noqa: F821
            i += 1
        if gridpoints < 2 or nuclides < 1 or lookups < 1:
            printf("XSBench: bad arguments\n")  # noqa: F821
            return 2

        egrid = malloc_f64(gridpoints)  # noqa: F821
        xs = malloc_f64(gridpoints * nuclides * 5)  # noqa: F821
        checksum = malloc_f64(1)  # noqa: F821
        checksum[0] = 0.0

        # --- data generation (sorted by construction) -------------------
        for j in dgpu.parallel_range(gridpoints):
            r = lcg_init(seed * 1000003 + j)  # noqa: F821
            egrid[j] = (float(j) + lcg_f64(r)) / float(gridpoints)  # noqa: F821
        for j in dgpu.parallel_range(gridpoints * nuclides * 5):
            r = lcg_init(seed * 7919 + j)  # noqa: F821
            xs[j] = lcg_f64(r)  # noqa: F821

        # --- lookup kernel ------------------------------------------------
        for l in dgpu.parallel_range(lookups):
            r = lcg_init(seed + l * 31)
            r = lcg_next(r)  # noqa: F821
            energy = lcg_f64(r)  # noqa: F821
            total = 0.0
            n = 0
            while n < nuclides:
                lo = 0
                hi = gridpoints - 1
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    if egrid[mid] <= energy:
                        lo = mid
                    else:
                        hi = mid
                f = (energy - egrid[lo]) / (egrid[hi] - egrid[lo] + 1e-12)
                base = (n * gridpoints + lo) * 5
                k = 0
                while k < 5:
                    xlo = xs[base + k]
                    xhi = xs[base + 5 + k]
                    total = total + xlo + f * (xhi - xlo)
                    k += 1
                n += 1
            dgpu.atomic_add(checksum, total)

        v = checksum[0]
        printf("XSBench checksum %.10f (g=%ld n=%ld l=%ld s=%ld)\n",  # noqa: F821
               v, gridpoints, nuclides, lookups, seed)
        if v > 0.0:
            return 0
        return 1

    return prog


def default_args(
    *,
    gridpoints: int = DEFAULT_GRIDPOINTS,
    nuclides: int = DEFAULT_NUCLIDES,
    lookups: int = DEFAULT_LOOKUPS,
    seed: int = DEFAULT_SEED,
) -> list[str]:
    """Default XSBench command line (keyword overrides per flag)."""
    return ["-g", str(gridpoints), "-n", str(nuclides), "-l", str(lookups), "-s", str(seed)]
