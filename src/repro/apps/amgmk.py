"""AMGmk port: the relax (Jacobi sweep) kernel of the CORAL AMG proxy.

AMGmk extracts the ``relax`` kernel of the algebraic-multigrid proxy
application: sparse matrix-vector style sweeps ``x_new = (rhs - offdiag *
x) / diag``.  It streams matrix values and gathers the solution vector —
almost pure memory bandwidth, which is why the paper sees its worst
ensemble scaling at thread limit 1024 (each instance alone nearly saturates
the memory pipeline).

The port uses a banded 7-point matrix in dense-band storage (``-n`` rows x
7 coefficients), diagonally dominant by construction so the sweeps are
numerically tame, and runs ``-i`` damped-Jacobi sweeps with an explicit
copy-back (the copy is part of the measured kernel, as in AMGmk).

Command line: ``-n <rows> -i <iterations> -s <seed>``.
"""

from __future__ import annotations

from repro.apps.common import register_lcg
from repro.frontend.dsl import Program, dgpu
from repro.frontend.dtypes import i64, ptr_ptr

DEFAULT_ROWS = 4096
DEFAULT_ITERS = 2
DEFAULT_SEED = 1

#: Band width: offsets -3..+3 around the diagonal.
BAND = 7


def build_program() -> Program:
    """Build the AMGmk relax-kernel program (see module doc for the CLI)."""
    prog = Program("amgmk")
    register_lcg(prog)

    @prog.main
    def main(argc: i64, argv: ptr_ptr) -> i64:
        rows = 4096
        iters = 2
        seed = 1
        i = 1
        while i < argc:
            if strcmp(argv[i], "-n") == 0:  # noqa: F821 - device libc
                i += 1
                rows = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-i") == 0:  # noqa: F821
                i += 1
                iters = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-s") == 0:  # noqa: F821
                i += 1
                seed = atoi(argv[i])  # noqa: F821
            i += 1
        if rows < 8 or iters < 1:
            printf("AMGmk: bad arguments\n")  # noqa: F821
            return 2

        vals = malloc_f64(rows * 7)  # noqa: F821
        x = malloc_f64(rows)  # noqa: F821
        xnew = malloc_f64(rows)  # noqa: F821
        rhs = malloc_f64(rows)  # noqa: F821
        checksum = malloc_f64(1)  # noqa: F821
        checksum[0] = 0.0

        # --- matrix/vector generation -----------------------------------
        for j in dgpu.parallel_range(rows * 7):
            r = lcg_init(seed * 613 + j)  # noqa: F821
            vals[j] = lcg_f64(r) * 0.1  # noqa: F821
        for j in dgpu.parallel_range(rows):
            # diagonal dominance: diag = sum(|offdiag|) + 1
            s = 0.0
            k = 0
            while k < 7:
                if k != 3:
                    s = s + vals[j * 7 + k]
                k += 1
            vals[j * 7 + 3] = s + 1.0
            r = lcg_init(seed * 769 + j)  # noqa: F821
            rhs[j] = lcg_f64(r)  # noqa: F821
            x[j] = 0.0

        # --- relax sweeps ---------------------------------------------------
        it = 0
        while it < iters:
            for row in dgpu.parallel_range(rows):
                acc = rhs[row]
                k = 0
                while k < 7:
                    col = row + k - 3
                    if col < 0:
                        col = 0
                    if col > rows - 1:
                        col = rows - 1
                    if col != row:
                        acc = acc - vals[row * 7 + k] * x[col]
                    k += 1
                xnew[row] = acc / vals[row * 7 + 3]
            for row in dgpu.parallel_range(rows):
                x[row] = xnew[row]
            it += 1

        for row in dgpu.parallel_range(rows):
            dgpu.atomic_add(checksum, x[row])

        v = checksum[0]
        printf("AMGmk checksum %.10f (n=%ld i=%ld s=%ld)\n",  # noqa: F821
               v, rows, iters, seed)
        if v != 0.0:
            return 0
        return 1

    return prog


def default_args(
    *, rows: int = DEFAULT_ROWS, iters: int = DEFAULT_ITERS, seed: int = DEFAULT_SEED
) -> list[str]:
    """Default AMGmk command line (keyword overrides per flag)."""
    return ["-n", str(rows), "-i", str(iters), "-s", str(seed)]
