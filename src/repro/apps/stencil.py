"""1-D five-point stencil sweep (HeCBench-style; not in the paper).

The fifth ported workload, added with the auto-ensemble frontend as its
acceptance driver: a radius-2 one-dimensional stencil (the 1-D slice of
HeCBench's ``stencil1d``-class kernels) run for ``-i`` sweeps with an
explicit copy-back, exactly the memory-access shape between STREAM's
pure streaming and AMGmk's banded gather — neighbouring loads hit the
same DRAM rows, so an ensemble of instances stresses row locality more
than either.

Per sweep every point becomes a weighted sum of its clamped 5-point
neighbourhood; weights and the initial field derive from the
command-line seed via the shared LCG so every instance's data — and the
CPU reference replay in :mod:`repro.apps.reference` — is reproducible
bit-for-bit.

Command line: ``-n <points> -i <iterations> -s <seed>``.
"""

from __future__ import annotations

from repro.apps.common import register_lcg
from repro.frontend.dsl import Program, dgpu
from repro.frontend.dtypes import i64, ptr_ptr

DEFAULT_POINTS = 8192
DEFAULT_ITERS = 2
DEFAULT_SEED = 1

#: Stencil radius (5-point neighbourhood).
RADIUS = 2


def build_program() -> Program:
    """Build the 1-D stencil program (see module doc for the CLI)."""
    prog = Program("stencil")
    register_lcg(prog)

    @prog.main
    def main(argc: i64, argv: ptr_ptr) -> i64:
        n = 8192
        iters = 2
        seed = 1
        i = 1
        while i < argc:
            if strcmp(argv[i], "-n") == 0:  # noqa: F821 - device libc
                i += 1
                n = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-i") == 0:  # noqa: F821
                i += 1
                iters = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-s") == 0:  # noqa: F821
                i += 1
                seed = atoi(argv[i])  # noqa: F821
            i += 1
        if n < 8 or iters < 1:
            printf("Stencil1D: bad arguments\n")  # noqa: F821
            return 2

        field = malloc_f64(n)  # noqa: F821
        swap = malloc_f64(n)  # noqa: F821
        weights = malloc_f64(5)  # noqa: F821
        checksum = malloc_f64(1)  # noqa: F821
        checksum[0] = 0.0

        # --- data generation (seed-reproducible) ------------------------
        for k in dgpu.parallel_range(5):
            r = lcg_init(seed * 401 + k)  # noqa: F821
            weights[k] = lcg_f64(r) * 0.4  # noqa: F821
        for j in dgpu.parallel_range(n):
            r = lcg_init(seed * 271 + j)  # noqa: F821
            field[j] = lcg_f64(r)  # noqa: F821

        # --- stencil sweeps with explicit copy-back ---------------------
        it = 0
        while it < iters:
            for j in dgpu.parallel_range(n):
                acc = 0.0
                k = 0
                while k < 5:
                    col = j + k - 2
                    if col < 0:
                        col = 0
                    if col > n - 1:
                        col = n - 1
                    acc = acc + weights[k] * field[col]
                    k += 1
                swap[j] = acc
            for j in dgpu.parallel_range(n):
                field[j] = swap[j]
            it += 1

        for j in dgpu.parallel_range(n):
            dgpu.atomic_add(checksum, field[j])

        v = checksum[0]
        printf("Stencil1D checksum %.10f (n=%ld i=%ld s=%ld)\n",  # noqa: F821
               v, n, iters, seed)
        if v >= 0.0:
            return 0
        return 1

    return prog


def default_args(
    *, points: int = DEFAULT_POINTS, iters: int = DEFAULT_ITERS, seed: int = DEFAULT_SEED
) -> list[str]:
    """Default stencil command line (keyword overrides per flag)."""
    return ["-n", str(points), "-i", str(iters), "-s", str(seed)]
