"""Registry of the ported benchmark applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps import amgmk, pagerank, reference, rsbench, stencil, stream, xsbench


@dataclass(frozen=True)
class AppEntry:
    """One runnable benchmark."""

    name: str
    description: str
    build_program: Callable
    default_args: Callable[..., list[str]]
    reference_fn: Callable[..., float]
    bound: str  # "memory" | "compute"
    heap_hint_bytes: int = 64 * 1024 * 1024
    notes: str = ""


APPS: dict[str, AppEntry] = {
    "xsbench": AppEntry(
        name="xsbench",
        description="memory-bound macroscopic cross-section lookups (OpenMC proxy)",
        build_program=xsbench.build_program,
        default_args=xsbench.default_args,
        reference_fn=reference.xsbench_checksum,
        bound="memory",
    ),
    "rsbench": AppEntry(
        name="rsbench",
        description="compute-bound multipole cross-section lookups (OpenMC proxy)",
        build_program=rsbench.build_program,
        default_args=rsbench.default_args,
        reference_fn=reference.rsbench_checksum,
        bound="compute",
    ),
    "amgmk": AppEntry(
        name="amgmk",
        description="bandwidth-bound relax kernel from the CORAL AMGmk proxy",
        build_program=amgmk.build_program,
        default_args=amgmk.default_args,
        reference_fn=reference.amgmk_checksum,
        bound="memory",
    ),
    "stream": AppEntry(
        name="stream",
        description="STREAM triad microbenchmark (model validation; not in the paper)",
        build_program=stream.build_program,
        default_args=stream.default_args,
        reference_fn=reference.stream_checksum,
        bound="memory",
        heap_hint_bytes=32 * 1024 * 1024,
        notes="perfectly coalesced streaming; pins the bandwidth model",
    ),
    "stencil": AppEntry(
        name="stencil",
        description="1-D five-point stencil sweep (HeCBench-style; not in the paper)",
        build_program=stencil.build_program,
        default_args=stencil.default_args,
        reference_fn=reference.stencil_checksum,
        bound="memory",
        heap_hint_bytes=32 * 1024 * 1024,
        notes="acceptance driver for the auto-ensemble frontend; neighbour "
        "loads sit between STREAM's pure streaming and AMGmk's banded gather",
    ),
    "pagerank": AppEntry(
        name="pagerank",
        description="Page-Rank propagation step (HeCBench); memory-capacity bound",
        build_program=pagerank.build_program,
        default_args=pagerank.default_args,
        reference_fn=reference.pagerank_total,
        bound="memory",
        notes="largest per-instance heap footprint; reproduces the paper's "
        "out-of-memory cap on instance count",
    ),
}


def get_app(name: str) -> AppEntry:
    """Look up a registered benchmark by name (KeyError if unknown)."""
    return APPS[name]
