"""Benchmark applications evaluated by the paper (§4.1), ported to the
restricted-Python device DSL and compiled through the full pipeline:

* :mod:`~repro.apps.xsbench` — XSBench: memory-bound continuous-energy
  macroscopic neutron cross-section lookup (OpenMC proxy),
* :mod:`~repro.apps.rsbench` — RSBench: the compute-bound multipole
  alternative,
* :mod:`~repro.apps.amgmk` — AMGmk: the relax (Jacobi sweep) kernel of the
  CORAL AMG proxy,
* :mod:`~repro.apps.pagerank` — Page-Rank propagation step from HeCBench.

Each module provides ``build_program()`` (a fresh DSL
:class:`~repro.frontend.dsl.Program` taking C-style command-line options),
plus workload presets for the Figure-6 harness; exact-arithmetic CPU
references live in :mod:`~repro.apps.reference`.
"""

from repro.apps.registry import APPS, AppEntry, get_app

__all__ = ["APPS", "AppEntry", "get_app"]
