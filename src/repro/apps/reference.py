"""Exact-arithmetic CPU references for the four benchmark ports.

Each function replays the *same* LCG integer arithmetic and the same
per-lookup floating-point evaluation order as the device code, so device
and reference results agree to atomic-accumulation rounding (the only
nondeterminism is the order in which instances' atomic adds land, bounded
by ~1e-12 relative error for these workload sizes).

These are the oracles for the functional tests; they are *not* the
performance baselines (the paper's baseline is the 1-instance GPU run).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import LCG_A, LCG_C, LCG_DENOM, LCG_INIT_MUL, LCG_MASK


def _lcg_init_vec(seeds: np.ndarray) -> np.ndarray:
    return (seeds * LCG_INIT_MUL + LCG_C) & LCG_MASK


def _lcg_next_vec(x: np.ndarray) -> np.ndarray:
    return (x * LCG_A + LCG_C) & LCG_MASK


def _lcg_f64_vec(x: np.ndarray) -> np.ndarray:
    return x / LCG_DENOM


# ---------------------------------------------------------------------------
# XSBench
# ---------------------------------------------------------------------------


def xsbench_data(gridpoints: int, nuclides: int, seed: int):
    """Replay XSBench's device-side data generation (energy grid + tables)."""
    j = np.arange(gridpoints, dtype=np.int64)
    r = _lcg_init_vec(seed * 1000003 + j)
    egrid = (j.astype(np.float64) + _lcg_f64_vec(r)) / float(gridpoints)
    k = np.arange(gridpoints * nuclides * 5, dtype=np.int64)
    xs = _lcg_f64_vec(_lcg_init_vec(seed * 7919 + k))
    return egrid, xs


def xsbench_checksum(
    gridpoints: int = 512, nuclides: int = 8, lookups: int = 256, seed: int = 1
) -> float:
    """Exact CPU replay of the XSBench device checksum."""
    egrid, xs = xsbench_data(gridpoints, nuclides, seed)
    l = np.arange(lookups, dtype=np.int64)
    r = _lcg_next_vec(_lcg_init_vec(seed + l * 31))
    energy = _lcg_f64_vec(r)
    lo = np.clip(np.searchsorted(egrid, energy, side="right") - 1, 0, gridpoints - 2)
    hi = lo + 1
    f = (energy - egrid[lo]) / (egrid[hi] - egrid[lo] + 1e-12)
    total = np.zeros(lookups, dtype=np.float64)
    for n in range(nuclides):
        base = (n * gridpoints + lo) * 5
        for k in range(5):
            xlo = xs[base + k]
            xhi = xs[base + 5 + k]
            total = total + (xlo + f * (xhi - xlo))
    return float(total.sum())


# ---------------------------------------------------------------------------
# RSBench
# ---------------------------------------------------------------------------


def rsbench_checksum(
    poles: int = 32, nuclides: int = 4, lookups: int = 256, seed: int = 1
) -> float:
    """Exact CPU replay of the RSBench device checksum."""
    nd = nuclides * poles * 4
    j = np.arange(nd, dtype=np.int64)
    data = _lcg_f64_vec(_lcg_init_vec(seed * 104729 + j)) + 0.001
    l = np.arange(lookups, dtype=np.int64)
    energy = _lcg_f64_vec(_lcg_next_vec(_lcg_init_vec(seed + l * 37)))
    total = np.zeros(lookups, dtype=np.float64)
    for n in range(nuclides):
        sig_t = np.zeros(lookups)
        sig_a = np.zeros(lookups)
        for p in range(poles):
            base = (n * poles + p) * 4
            e0 = data[base]
            wd = data[base + 1] * 0.01
            ca = data[base + 2]
            cb = data[base + 3]
            dr = energy - e0
            denom = dr * dr + wd * wd + 1e-9
            psi_r = dr / denom
            psi_i = wd / denom
            broad = np.sqrt(np.abs(dr) + 0.5)
            sig_t = sig_t + (ca * psi_r - cb * psi_i) * broad
            sig_a = sig_a + (ca * psi_i + cb * psi_r) / broad
        total = total + sig_t + sig_a
    return float(total.sum())


# ---------------------------------------------------------------------------
# AMGmk
# ---------------------------------------------------------------------------


def amgmk_checksum(rows: int = 4096, iters: int = 2, seed: int = 1) -> float:
    """Exact CPU replay of the AMGmk device checksum."""
    j = np.arange(rows * 7, dtype=np.int64)
    vals = (_lcg_f64_vec(_lcg_init_vec(seed * 613 + j)) * 0.1).reshape(rows, 7)
    # diagonal dominance exactly as the device computes it (sequential sum
    # over the 7 band entries, skipping k == 3)
    s = np.zeros(rows)
    for k in range(7):
        if k != 3:
            s = s + vals[:, k]
    vals[:, 3] = s + 1.0
    r = np.arange(rows, dtype=np.int64)
    rhs = _lcg_f64_vec(_lcg_init_vec(seed * 769 + r))
    x = np.zeros(rows)
    cols = np.clip(r[:, None] + (np.arange(7) - 3)[None, :], 0, rows - 1)
    for _ in range(iters):
        acc = rhs.copy()
        for k in range(7):
            col = cols[:, k]
            off_diag = col != r
            acc = acc - np.where(off_diag, vals[:, k] * x[col], 0.0)
        x = acc / vals[:, 3]
    return float(x.sum())


# ---------------------------------------------------------------------------
# STREAM triad (model-validation microbenchmark)
# ---------------------------------------------------------------------------


def stream_checksum(elements: int = 8192, reps: int = 1, seed: int = 1) -> float:
    """Exact CPU replay of the STREAM-triad device checksum."""
    j = np.arange(elements, dtype=np.int64)
    r = _lcg_init_vec(seed * 131 + j)
    b = _lcg_f64_vec(r)
    c = _lcg_f64_vec(_lcg_next_vec(r))
    a = b + 3.0 * c  # repetitions are idempotent
    return float(a.sum())


# ---------------------------------------------------------------------------
# 1-D stencil (auto-ensemble acceptance driver)
# ---------------------------------------------------------------------------


def stencil_checksum(points: int = 8192, iters: int = 2, seed: int = 1) -> float:
    """Exact CPU replay of the 1-D five-point stencil device checksum."""
    k = np.arange(5, dtype=np.int64)
    w = _lcg_f64_vec(_lcg_init_vec(seed * 401 + k)) * 0.4
    j = np.arange(points, dtype=np.int64)
    field = _lcg_f64_vec(_lcg_init_vec(seed * 271 + j))
    cols = np.clip(j[:, None] + (np.arange(5) - 2)[None, :], 0, points - 1)
    for _ in range(iters):
        acc = np.zeros(points)
        # sequential k-order matches the device's inner while loop
        for kk in range(5):
            acc = acc + w[kk] * field[cols[:, kk]]
        field = acc
    return float(field.sum())


# ---------------------------------------------------------------------------
# Page-Rank
# ---------------------------------------------------------------------------


def pagerank_total(
    nodes: int = 16384, degree: int = 8, iters: int = 1, seed: int = 1
) -> float:
    """Exact CPU replay of the Page-Rank device total-rank value."""
    j = np.arange(nodes * degree, dtype=np.int64)
    nbrs = (_lcg_init_vec(seed * 48271 + j) % nodes).reshape(nodes, degree)
    rank = np.full(nodes, 1.0 / nodes)
    for _ in range(iters):
        acc = np.zeros(nodes)
        for k in range(degree):
            acc = acc + rank[nbrs[:, k]]
        rank = 0.15 / nodes + 0.85 * acc / degree
    return float(rank.sum())
