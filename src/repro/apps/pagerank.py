"""Page-Rank port: the propagation step from HeCBench.

The HeCBench page-rank benchmark measures the rank-propagation step over a
fixed graph.  This port generates a synthetic directed graph with a fixed
in-degree ``-d`` (pull model: each vertex reads its ``d`` random in-
neighbours' ranks), then runs ``-i`` propagation steps::

    rank_new[v] = 0.15/n + 0.85 * sum_u rank[u] / d

The gathers through ``nbrs`` are data-dependent and scattered — exactly the
irregular access pattern that defeats coalescing.  Page-Rank is also the
paper's *memory-capacity* case: its per-instance graph is deliberately the
largest allocation among the four benchmarks, so only a few instances fit
in the device heap ("due to memory limitations, we were only able to show
the results for two and four instances" — §4.3).

Command line: ``-n <nodes> -d <in-degree> -i <iterations> -s <seed>``.
Exit code 0 iff the final total rank lands in (0.2, 3.0) — a sanity window
around the expected ~1.0.
"""

from __future__ import annotations

from repro.apps.common import register_lcg
from repro.frontend.dsl import Program, dgpu
from repro.frontend.dtypes import i64, ptr_ptr

DEFAULT_NODES = 16384
DEFAULT_DEGREE = 8
DEFAULT_ITERS = 1
DEFAULT_SEED = 1

DAMPING = 0.85


def build_program() -> Program:
    """Build the Page-Rank propagation program (see module doc for the CLI)."""
    prog = Program("pagerank")
    register_lcg(prog)

    @prog.main
    def main(argc: i64, argv: ptr_ptr) -> i64:
        nodes = 16384
        degree = 8
        iters = 1
        seed = 1
        i = 1
        while i < argc:
            if strcmp(argv[i], "-n") == 0:  # noqa: F821 - device libc
                i += 1
                nodes = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-d") == 0:  # noqa: F821
                i += 1
                degree = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-i") == 0:  # noqa: F821
                i += 1
                iters = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-s") == 0:  # noqa: F821
                i += 1
                seed = atoi(argv[i])  # noqa: F821
            i += 1
        if nodes < 2 or degree < 1 or iters < 1:
            printf("PageRank: bad arguments\n")  # noqa: F821
            return 2

        nbrs = malloc_i64(nodes * degree)  # noqa: F821
        rank = malloc_f64(nodes)  # noqa: F821
        rnew = malloc_f64(nodes)  # noqa: F821
        checksum = malloc_f64(1)  # noqa: F821
        checksum[0] = 0.0

        # --- graph generation ---------------------------------------------
        for j in dgpu.parallel_range(nodes * degree):
            r = lcg_init(seed * 48271 + j)  # noqa: F821
            nbrs[j] = r % nodes
        for j in dgpu.parallel_range(nodes):
            rank[j] = 1.0 / float(nodes)

        # --- propagation steps (the measured kernel) ------------------------
        it = 0
        while it < iters:
            for v in dgpu.parallel_range(nodes):
                acc = 0.0
                k = 0
                while k < degree:
                    u = nbrs[v * degree + k]
                    acc = acc + rank[u]
                    k += 1
                rnew[v] = 0.15 / float(nodes) + 0.85 * acc / float(degree)
            for v in dgpu.parallel_range(nodes):
                rank[v] = rnew[v]
            it += 1

        for v in dgpu.parallel_range(nodes):
            dgpu.atomic_add(checksum, rank[v])

        total = checksum[0]
        printf("PageRank total rank %.10f (n=%ld d=%ld i=%ld s=%ld)\n",  # noqa: F821
               total, nodes, degree, iters, seed)
        if total > 0.2 and total < 3.0:
            return 0
        return 1

    return prog


def default_args(
    *,
    nodes: int = DEFAULT_NODES,
    degree: int = DEFAULT_DEGREE,
    iters: int = DEFAULT_ITERS,
    seed: int = DEFAULT_SEED,
) -> list[str]:
    """Default Page-Rank command line (keyword overrides per flag)."""
    return ["-n", str(nodes), "-d", str(degree), "-i", str(iters), "-s", str(seed)]


def heap_bytes_per_instance(nodes: int = DEFAULT_NODES, degree: int = DEFAULT_DEGREE) -> int:
    """Approximate device-heap footprint of one instance (for sizing the
    OOM experiment)."""
    return nodes * degree * 8 + 2 * nodes * 8 + 256 * 4
