"""RSBench port: compute-bound multipole cross-section lookups.

RSBench [Tramm et al. 2014] computes the same physics as XSBench from the
windowed-multipole representation: instead of reading large tables, each
lookup evaluates an analytic pole expansion — far fewer memory accesses,
far more floating-point work (complex arithmetic, square roots).  The paper
uses it as the compute-bound counterweight to XSBench.

This port keeps that profile: every lookup walks ``-p`` poles for each of
``-n`` nuclides; each pole evaluation loads 4 doubles and performs ~20
double-precision operations including a square root (SFU-class work in the
timing model), then accumulates sigT/sigA into an atomic checksum.

Command line: ``-p <poles> -n <nuclides> -l <lookups> -s <seed>``.
"""

from __future__ import annotations

from repro.apps.common import register_lcg
from repro.frontend.dsl import Program, dgpu
from repro.frontend.dtypes import i64, ptr_ptr

DEFAULT_POLES = 32
DEFAULT_NUCLIDES = 4
DEFAULT_LOOKUPS = 256
DEFAULT_SEED = 1

#: Stored quantities per pole: E0, width, sigT coefficient, sigA coefficient.
POLE_FIELDS = 4


def build_program() -> Program:
    """Build the RSBench multipole-lookup program (see module doc for the CLI)."""
    prog = Program("rsbench")
    register_lcg(prog)

    @prog.main
    def main(argc: i64, argv: ptr_ptr) -> i64:
        poles = 32
        nuclides = 4
        lookups = 256
        seed = 1
        i = 1
        while i < argc:
            if strcmp(argv[i], "-p") == 0:  # noqa: F821 - device libc
                i += 1
                poles = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-n") == 0:  # noqa: F821
                i += 1
                nuclides = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-l") == 0:  # noqa: F821
                i += 1
                lookups = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-s") == 0:  # noqa: F821
                i += 1
                seed = atoi(argv[i])  # noqa: F821
            i += 1
        if poles < 1 or nuclides < 1 or lookups < 1:
            printf("RSBench: bad arguments\n")  # noqa: F821
            return 2

        ndata = nuclides * poles * 4
        data = malloc_f64(ndata)  # noqa: F821
        checksum = malloc_f64(1)  # noqa: F821
        checksum[0] = 0.0

        # --- multipole data -------------------------------------------------
        for j in dgpu.parallel_range(ndata):
            r = lcg_init(seed * 104729 + j)  # noqa: F821
            data[j] = lcg_f64(r) + 0.001  # noqa: F821

        # --- lookup kernel ---------------------------------------------------
        for l in dgpu.parallel_range(lookups):
            r = lcg_init(seed + l * 37)
            r = lcg_next(r)  # noqa: F821
            energy = lcg_f64(r)  # noqa: F821
            total = 0.0
            n = 0
            while n < nuclides:
                sig_t = 0.0
                sig_a = 0.0
                p = 0
                while p < poles:
                    base = (n * poles + p) * 4
                    e0 = data[base]
                    wd = data[base + 1] * 0.01
                    ca = data[base + 2]
                    cb = data[base + 3]
                    # psi = 1 / (energy - e0 + i*wd): complex reciprocal
                    dr = energy - e0
                    denom = dr * dr + wd * wd + 1e-9
                    psi_r = dr / denom
                    psi_i = wd / denom
                    # Doppler-broadening flavour: sqrt term as in the real
                    # kernel's W function evaluation
                    broad = dgpu.sqrt(abs(dr) + 0.5)
                    sig_t = sig_t + (ca * psi_r - cb * psi_i) * broad
                    sig_a = sig_a + (ca * psi_i + cb * psi_r) / broad
                    p += 1
                total = total + sig_t + sig_a
                n += 1
            dgpu.atomic_add(checksum, total)

        v = checksum[0]
        printf("RSBench checksum %.10f (p=%ld n=%ld l=%ld s=%ld)\n",  # noqa: F821
               v, poles, nuclides, lookups, seed)
        if v != 0.0:
            return 0
        return 1

    return prog


def default_args(
    *,
    poles: int = DEFAULT_POLES,
    nuclides: int = DEFAULT_NUCLIDES,
    lookups: int = DEFAULT_LOOKUPS,
    seed: int = DEFAULT_SEED,
) -> list[str]:
    """Default RSBench command line (keyword overrides per flag)."""
    return ["-p", str(poles), "-n", str(nuclides), "-l", str(lookups), "-s", str(seed)]
