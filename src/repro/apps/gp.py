"""GP-style program-variant generator: the compile-at-scale workload.

The PAPERS.md precedent ("Parallel and in-process compilation of
individuals for genetic programming on GPU") evaluates thousands of
small program variants per generation, with total throughput bounded by
compile latency.  This module provides the *individuals*: expression
trees over one variable ``x``, small constants, and ``+``/``-``/``*``,
rendered into the restricted-Python DSL as a complete device program —

* a worksharing ``parallel_range`` loop evaluates the genome at every
  sample point ``x = 0..points-1``,
* a sequential reduction sums the samples,
* the total is printed over RPC (the full-precision observable the
  harness reads) and returned masked as the exit code.

Genomes are canonicalized (commutative operands sorted) before hashing,
so ``x + 1`` and ``1 + x`` share one :func:`genome_key` and hence one
compile-cache entry — semantic deduplication on top of content
addressing.  Everything is deterministic given a seeded
``random.Random``.
"""

from __future__ import annotations

import hashlib
import textwrap

from repro.frontend import dsl, dtypes
from repro.frontend.dsl import Program, SourceFunction

#: Genome grammar: a genome is ``"x"``, an int leaf, or a tuple
#: ``(op, left, right)`` with ``op`` in :data:`OPS`.
OPS = ("add", "sub", "mul")
COMMUTATIVE = frozenset({"add", "mul"})
LEAF_CONSTS = (1, 2, 3, 5)

#: Default number of sample points per evaluation.
DEFAULT_POINTS = 12

#: Exit-code mask (the printed total is the real observable).
EXIT_MASK = 1023

_PY_OPS = {"add": "+", "sub": "-", "mul": "*"}


# ---------------------------------------------------------------------------
# genome construction / variation
# ---------------------------------------------------------------------------
def random_genome(rng, depth: int = 2):
    """One random expression tree of height at most ``depth``."""
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return "x"
        return rng.choice(LEAF_CONSTS)
    op = rng.choice(OPS)
    return (op, random_genome(rng, depth - 1), random_genome(rng, depth - 1))


def mutate(genome, rng, depth: int = 2):
    """Replace one uniformly chosen subtree with a fresh random tree."""
    nodes = _count_nodes(genome)
    target = rng.randrange(nodes)
    mutated, _ = _replace_node(genome, target, rng, depth)
    return mutated


def _count_nodes(genome) -> int:
    if not isinstance(genome, tuple):
        return 1
    return 1 + _count_nodes(genome[1]) + _count_nodes(genome[2])


def _replace_node(genome, target: int, rng, depth: int):
    """Pre-order walk; node ``target`` is regenerated at height ``depth``."""
    if target == 0:
        return random_genome(rng, depth), -1
    if not isinstance(genome, tuple):
        return genome, target - 1
    op, left, right = genome
    left, target = _replace_node(left, target - 1, rng, max(depth - 1, 0))
    if target < 0:
        return (op, left, right), -1
    right, target = _replace_node(right, target, rng, max(depth - 1, 0))
    return (op, left, right), target


def canonical(genome):
    """Sort commutative operands so semantically identical trees collapse
    onto one key (and one compile-cache entry)."""
    if not isinstance(genome, tuple):
        return genome
    op, left, right = genome
    left, right = canonical(left), canonical(right)
    if op in COMMUTATIVE and repr(left) > repr(right):
        left, right = right, left
    return (op, left, right)


def genome_key(genome) -> str:
    """Stable content identity of a genome — the compile cache's
    ``source_hash`` for GP variants, so cache hits skip the frontend."""
    text = repr(canonical(genome))
    return "gp:" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


# ---------------------------------------------------------------------------
# rendering + reference semantics
# ---------------------------------------------------------------------------
def render_expr(genome) -> str:
    """The genome as a parenthesized Python/DSL expression over ``x``."""
    if not isinstance(genome, tuple):
        return str(genome)
    op, left, right = genome
    return f"({render_expr(left)} {_PY_OPS[op]} {render_expr(right)})"


def genome_source(genome, points: int = DEFAULT_POINTS) -> str:
    """Complete restricted-Python source of the evaluator program."""
    return textwrap.dedent(
        f'''
        def main(argc: i64, argv: ptr_ptr) -> i64:
            out = malloc_i64({points})
            for i in dgpu.parallel_range({points}):
                x = i
                out[i] = {render_expr(genome)}
            total = malloc_i64(1)
            total[0] = 0
            for j in range({points}):
                total[0] = total[0] + out[j]
            printf("gp total %d\\n", total[0])
            return total[0] & {EXIT_MASK}
        '''
    ).strip()


def reference_total(genome, points: int = DEFAULT_POINTS) -> int:
    """Host-side model of the device program's printed total."""

    def ev(node, x):
        if node == "x":
            return x
        if not isinstance(node, tuple):
            return int(node)
        op, left, right = node
        a, b = ev(left, x), ev(right, x)
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        return a * b

    return sum(ev(genome, x) for x in range(points))


class _TextSource(SourceFunction):
    """SourceFunction over generated text (exec'd functions have no file
    for ``inspect.getsource``)."""

    def __init__(self, pyfunc, source: str):
        self.pyfunc = pyfunc
        self.name = "main"
        self.is_main = True
        self._source = source

    @property
    def source(self) -> str:  # type: ignore[override]
        return self._source


def build_genome_program(genome, points: int = DEFAULT_POINTS) -> Program:
    """Compile-ready :class:`Program` evaluating ``genome`` at ``points``
    sample points."""
    src = genome_source(genome, points)
    ns = {
        "i64": dtypes.i64,
        "ptr_ptr": dtypes.ptr_ptr,
        "dgpu": dsl.dgpu,
        "malloc_i64": lambda n: None,
        "printf": lambda *a: None,
    }
    exec(src, ns)  # noqa: S102 - deterministic generated source
    prog = Program("gp-variant")
    prog.functions["main"] = _TextSource(ns["main"], src)
    return prog


__all__ = [
    "OPS",
    "COMMUTATIVE",
    "LEAF_CONSTS",
    "DEFAULT_POINTS",
    "EXIT_MASK",
    "build_genome_program",
    "canonical",
    "genome_key",
    "genome_source",
    "mutate",
    "random_genome",
    "reference_total",
    "render_expr",
]
