"""Shared device-code helpers for the benchmark ports.

All four benchmarks use the same 31-bit linear congruential generator so
that (a) every instance's data is reproducible from its command-line seed
and (b) the CPU references in :mod:`repro.apps.reference` can replay the
exact integer arithmetic (no modulo-2^63 overflow occurs for any reachable
state, so device and numpy agree bit-for-bit).
"""

from __future__ import annotations

from repro.frontend.dsl import Program
from repro.frontend.dtypes import f64, i64

LCG_A = 1103515245
LCG_C = 12345
LCG_MASK = 2147483647  # 2^31 - 1
LCG_INIT_MUL = 2654435761
LCG_DENOM = 2147483648.0


def register_lcg(prog: Program) -> None:
    """Register ``lcg_init``/``lcg_next``/``lcg_f64`` on ``prog``."""

    @prog.device
    def lcg_init(seed: i64) -> i64:
        return (seed * 2654435761 + 12345) & 2147483647

    @prog.device
    def lcg_next(x: i64) -> i64:
        return (x * 1103515245 + 12345) & 2147483647

    @prog.device
    def lcg_f64(x: i64) -> f64:
        return float(x) / 2147483648.0


def host_lcg_init(seed: int) -> int:
    """Host-side replay of the device lcg_init (exact integer arithmetic)."""
    return (seed * LCG_INIT_MUL + LCG_C) & LCG_MASK


def host_lcg_next(x: int) -> int:
    """Host-side replay of the device lcg_next."""
    return (x * LCG_A + LCG_C) & LCG_MASK


def host_lcg_f64(x: int) -> float:
    """Host-side replay of the device lcg_f64 (state -> [0, 1) double)."""
    return x / LCG_DENOM
