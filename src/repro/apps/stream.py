"""STREAM-triad microbenchmark (model-validation app, not from the paper).

The reproduction's own calibration probe: the classic ``a[i] = b[i] +
k*c[i]`` triad is the cleanest possible bandwidth workload (perfectly
coalesced streaming, negligible compute, no reuse), so it pins down the
timing model's bandwidth behaviour independently of the paper's four
benchmarks:

* a single full team must achieve roughly the configured per-block
  throughput (Little's law);
* an ensemble of triads must saturate toward the device bandwidth ceiling
  scaled by the row-locality efficiency.

``tests/apps/test_stream.py`` asserts both properties against the model
constants — if someone retunes `DeviceConfig`, the triad tests tell them
what they actually changed.

Command line: ``-n <elements> -r <repetitions> -s <seed>``.
"""

from __future__ import annotations

from repro.apps.common import register_lcg
from repro.frontend.dsl import Program, dgpu
from repro.frontend.dtypes import i64, ptr_ptr

DEFAULT_ELEMENTS = 8192
DEFAULT_REPS = 1
DEFAULT_SEED = 1

TRIAD_SCALAR = 3.0


def build_program() -> Program:
    """Build the STREAM-triad program (see module doc for the CLI)."""
    prog = Program("stream")
    register_lcg(prog)

    @prog.main
    def main(argc: i64, argv: ptr_ptr) -> i64:
        n = 8192
        reps = 1
        seed = 1
        i = 1
        while i < argc:
            if strcmp(argv[i], "-n") == 0:  # noqa: F821 - device libc
                i += 1
                n = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-r") == 0:  # noqa: F821
                i += 1
                reps = atoi(argv[i])  # noqa: F821
            elif strcmp(argv[i], "-s") == 0:  # noqa: F821
                i += 1
                seed = atoi(argv[i])  # noqa: F821
            i += 1
        if n < 1 or reps < 1:
            printf("STREAM: bad arguments\n")  # noqa: F821
            return 2

        a = malloc_f64(n)  # noqa: F821
        bb = malloc_f64(n)  # noqa: F821
        cc = malloc_f64(n)  # noqa: F821
        checksum = malloc_f64(1)  # noqa: F821
        checksum[0] = 0.0

        for j in dgpu.parallel_range(n):
            r = lcg_init(seed * 131 + j)  # noqa: F821
            bb[j] = lcg_f64(r)  # noqa: F821
            cc[j] = lcg_f64(lcg_next(r))  # noqa: F821

        rep = 0
        while rep < reps:
            for j in dgpu.parallel_range(n):
                a[j] = bb[j] + 3.0 * cc[j]
            rep += 1

        for j in dgpu.parallel_range(n):
            dgpu.atomic_add(checksum, a[j])

        v = checksum[0]
        printf("STREAM triad checksum %.10f (n=%ld r=%ld s=%ld)\n",  # noqa: F821
               v, n, reps, seed)
        if v > 0.0:
            return 0
        return 1

    return prog


def default_args(
    *, elements: int = DEFAULT_ELEMENTS, reps: int = DEFAULT_REPS, seed: int = DEFAULT_SEED
) -> list[str]:
    """Default STREAM command line (keyword overrides per flag)."""
    return ["-n", str(elements), "-r", str(reps), "-s", str(seed)]
