"""Convenience builder for emitting IR with operand type checking.

The frontend and the loaders construct all IR through this class; it owns a
current insertion block and refuses obviously ill-typed instructions early,
so most type errors surface at build time instead of inside the interpreter.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import IRError
from repro.ir.instructions import (
    Instr,
    Opcode,
    fcmp_ops,
    float_binops,
    icmp_ops,
    int_binops,
    math_unops,
)
from repro.ir.module import Block, Function
from repro.ir.types import F64, I64, MemType, Reg, ScalarType

_INT_BIN = int_binops()
_FLT_BIN = float_binops()
_MATH_UN = math_unops()
_ICMP = icmp_ops()
_FCMP = fcmp_ops()


class IRBuilder:
    """Builds instructions into a :class:`~repro.ir.module.Function`."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.block: Block | None = None
        self._label_counter = 0
        #: current (line, col) source location; stamped onto emitted instrs
        self.loc: tuple[int, int] | None = None

    def set_loc(self, line: int | None, col: int | None = None) -> None:
        """Set the source location stamped onto subsequently emitted
        instructions (``None`` stops stamping)."""
        self.loc = None if line is None else (line, col if col is not None else 0)

    # ------------------------------------------------------------------
    # blocks
    # ------------------------------------------------------------------
    def create_block(self, hint: str = "bb") -> Block:
        label = f"{hint}.{self._label_counter}"
        self._label_counter += 1
        return self.fn.add_block(label)

    def set_block(self, block: Block) -> None:
        self.block = block

    def position_at(self, block: Block) -> None:
        self.set_block(block)

    @property
    def is_terminated(self) -> bool:
        return self.block is not None and self.block.terminator is not None

    # ------------------------------------------------------------------
    # low-level emit
    # ------------------------------------------------------------------
    def emit(self, instr: Instr) -> Instr:
        if self.block is None:
            raise IRError("builder has no insertion block")
        if self.block.terminator is not None:
            raise IRError(
                f"emitting {instr.op.name} after terminator in block {self.block.label!r}"
            )
        if self.loc is not None and "loc" not in instr.meta:
            instr.meta["loc"] = self.loc
        self.block.instrs.append(instr)
        return instr

    def _check(self, cond: bool, msg: str) -> None:
        if not cond:
            raise IRError(msg)

    def _res(self, ty: ScalarType) -> Reg:
        return self.fn.new_reg(ty)

    # ------------------------------------------------------------------
    # constants and moves
    # ------------------------------------------------------------------
    def const_i(self, value: int) -> Reg:
        dest = self._res(I64)
        self.emit(Instr(Opcode.MOVI, dest, imm=int(value)))
        return dest

    def const_f(self, value: float) -> Reg:
        dest = self._res(F64)
        self.emit(Instr(Opcode.MOVF, dest, imm=float(value)))
        return dest

    def mov(self, src: Reg) -> Reg:
        dest = self._res(src.ty)
        self.emit(Instr(Opcode.MOV, dest, (src,)))
        return dest

    def mov_to(self, dest: Reg, src: Reg) -> None:
        """Move into an *existing* register (used for variable assignment)."""
        self._check(dest.ty is src.ty, f"mov type mismatch {dest.ty} <- {src.ty}")
        self.emit(Instr(Opcode.MOV, dest, (src,)))

    def select(self, cond: Reg, a: Reg, b: Reg) -> Reg:
        self._check(cond.ty is I64, "select condition must be i64")
        self._check(a.ty is b.ty, "select arms must have the same type")
        dest = self._res(a.ty)
        self.emit(Instr(Opcode.SELECT, dest, (cond, a, b)))
        return dest

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def binop(self, op: Opcode, a: Reg, b: Reg) -> Reg:
        if op in _INT_BIN:
            self._check(a.ty is I64 and b.ty is I64, f"{op.name} requires i64 operands")
            dest = self._res(I64)
        elif op in _FLT_BIN:
            self._check(a.ty is F64 and b.ty is F64, f"{op.name} requires f64 operands")
            dest = self._res(F64)
        elif op in _ICMP:
            self._check(a.ty is I64 and b.ty is I64, f"{op.name} requires i64 operands")
            dest = self._res(I64)
        elif op in _FCMP:
            self._check(a.ty is F64 and b.ty is F64, f"{op.name} requires f64 operands")
            dest = self._res(I64)
        else:
            raise IRError(f"{op.name} is not a binary op")
        self.emit(Instr(op, dest, (a, b)))
        return dest

    def unop(self, op: Opcode, a: Reg) -> Reg:
        if op in _MATH_UN or op is Opcode.FNEG:
            self._check(a.ty is F64, f"{op.name} requires an f64 operand")
            dest = self._res(F64)
        elif op in (Opcode.INEG, Opcode.BNOT):
            self._check(a.ty is I64, f"{op.name} requires an i64 operand")
            dest = self._res(I64)
        else:
            raise IRError(f"{op.name} is not a unary op")
        self.emit(Instr(op, dest, (a,)))
        return dest

    def fpow(self, a: Reg, b: Reg) -> Reg:
        return self.binop(Opcode.FPOW, a, b)

    def sitofp(self, a: Reg) -> Reg:
        self._check(a.ty is I64, "sitofp requires i64")
        dest = self._res(F64)
        self.emit(Instr(Opcode.SITOFP, dest, (a,)))
        return dest

    def fptosi(self, a: Reg) -> Reg:
        self._check(a.ty is F64, "fptosi requires f64")
        dest = self._res(I64)
        self.emit(Instr(Opcode.FPTOSI, dest, (a,)))
        return dest

    def coerce(self, a: Reg, ty: ScalarType) -> Reg:
        """Insert a conversion if needed so ``a`` has scalar type ``ty``."""
        if a.ty is ty:
            return a
        if a.ty is I64 and ty is F64:
            return self.sitofp(a)
        if a.ty is F64 and ty is I64:
            return self.fptosi(a)
        raise IRError(f"cannot coerce {a.ty} to {ty}")

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load(self, addr: Reg, mty: MemType, offset: int = 0) -> Reg:
        self._check(addr.ty is I64, "load address must be i64")
        dest = self._res(mty.reg_ty)
        self.emit(Instr(Opcode.LOAD, dest, (addr,), mty=mty, offset=offset))
        return dest

    def store(self, addr: Reg, value: Reg, mty: MemType, offset: int = 0) -> None:
        self._check(addr.ty is I64, "store address must be i64")
        self._check(
            value.ty is mty.reg_ty,
            f"store of {value.ty} into {mty.label} slot",
        )
        self.emit(Instr(Opcode.STORE, None, (addr, value), mty=mty, offset=offset))

    def atomic_add(self, addr: Reg, value: Reg, mty: MemType) -> Reg:
        self._check(addr.ty is I64, "atomic address must be i64")
        self._check(value.ty is mty.reg_ty, "atomic operand type mismatch")
        dest = self._res(mty.reg_ty)
        self.emit(Instr(Opcode.ATOMIC_ADD, dest, (addr, value), mty=mty))
        return dest

    def atomic_max(self, addr: Reg, value: Reg, mty: MemType) -> Reg:
        self._check(addr.ty is I64, "atomic address must be i64")
        self._check(value.ty is mty.reg_ty, "atomic operand type mismatch")
        dest = self._res(mty.reg_ty)
        self.emit(Instr(Opcode.ATOMIC_MAX, dest, (addr, value), mty=mty))
        return dest

    def gaddr(self, sym: str) -> Reg:
        dest = self._res(I64)
        self.emit(Instr(Opcode.GADDR, dest, sym=sym))
        return dest

    def salloc(self, nbytes: int) -> Reg:
        self._check(nbytes > 0, "salloc size must be positive")
        dest = self._res(I64)
        self.emit(Instr(Opcode.SALLOC, dest, imm=int(nbytes)))
        return dest

    def memcpy(self, dst: Reg, src: Reg, nbytes: Reg) -> None:
        self._check(
            dst.ty is I64 and src.ty is I64 and nbytes.ty is I64,
            "memcpy operands must be i64",
        )
        self.emit(Instr(Opcode.MEMCPY, None, (dst, src, nbytes)))

    def memset(self, dst: Reg, byte: Reg, nbytes: Reg) -> None:
        self._check(
            dst.ty is I64 and byte.ty is I64 and nbytes.ty is I64,
            "memset operands must be i64",
        )
        self.emit(Instr(Opcode.MEMSET, None, (dst, byte, nbytes)))

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def br(self, target: Block) -> None:
        self.emit(Instr(Opcode.BR, targets=(target.label,)))

    def cbr(self, cond: Reg, then_block: Block, else_block: Block) -> None:
        self._check(cond.ty is I64, "branch condition must be i64")
        self.emit(Instr(Opcode.CBR, args=(cond,), targets=(then_block.label, else_block.label)))

    def ret(self) -> None:
        self.emit(Instr(Opcode.RET))

    def retval(self, value: Reg) -> None:
        self._check(
            self.fn.ret_ty is value.ty,
            f"returning {value.ty} from function declared {self.fn.ret_ty}",
        )
        self.emit(Instr(Opcode.RETVAL, args=(value,)))

    def call(self, callee: str, args: Sequence[Reg], ret_ty: ScalarType) -> Reg | None:
        dest = None if ret_ty is ScalarType.VOID else self._res(ret_ty)
        self.emit(Instr(Opcode.CALL, dest, tuple(args), callee=callee))
        return dest

    def trap(self, message: str) -> None:
        self.emit(Instr(Opcode.TRAP, sym=message))

    # ------------------------------------------------------------------
    # GPU intrinsics
    # ------------------------------------------------------------------
    def _nullary_i(self, op: Opcode) -> Reg:
        dest = self._res(I64)
        self.emit(Instr(op, dest))
        return dest

    def tid(self) -> Reg:
        return self._nullary_i(Opcode.TID)

    def ntid(self) -> Reg:
        return self._nullary_i(Opcode.NTID)

    def ctaid(self) -> Reg:
        return self._nullary_i(Opcode.CTAID)

    def nctaid(self) -> Reg:
        return self._nullary_i(Opcode.NCTAID)

    def laneid(self) -> Reg:
        return self._nullary_i(Opcode.LANEID)

    def instance(self) -> Reg:
        return self._nullary_i(Opcode.INSTANCE)

    def barrier(self) -> None:
        self.emit(Instr(Opcode.BARRIER))

    def par_begin(self) -> None:
        self.emit(Instr(Opcode.PAR_BEGIN))

    def par_end(self) -> None:
        self.emit(Instr(Opcode.PAR_END))

    def shfl_down(self, value: Reg, delta: Reg) -> Reg:
        self._check(delta.ty is I64, "shuffle delta must be i64")
        dest = self._res(value.ty)
        self.emit(Instr(Opcode.SHFL_DOWN, dest, (value, delta)))
        return dest

    def shfl_idx(self, value: Reg, lane: Reg) -> Reg:
        self._check(lane.ty is I64, "shuffle lane must be i64")
        dest = self._res(value.ty)
        self.emit(Instr(Opcode.SHFL_IDX, dest, (value, lane)))
        return dest

    def reduce(self, op: Opcode, value: Reg) -> Reg:
        self._check(
            op in (Opcode.RED_ADD, Opcode.RED_MAX, Opcode.RED_MIN),
            f"{op.name} is not a reduction",
        )
        dest = self._res(value.ty)
        self.emit(Instr(op, dest, (value,)))
        return dest

    # ------------------------------------------------------------------
    # host interaction
    # ------------------------------------------------------------------
    def rpc(self, service: str, args: Sequence[Reg], ret_ty: ScalarType) -> Reg | None:
        dest = None if ret_ty is ScalarType.VOID else self._res(ret_ty)
        self.emit(Instr(Opcode.RPC, dest, tuple(args), service=service))
        return dest

    def kparam(self, index: int, ty: ScalarType = I64) -> Reg:
        dest = self._res(ty)
        self.emit(Instr(Opcode.KPARAM, dest, imm=int(index)))
        return dest
