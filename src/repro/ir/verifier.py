"""Structural verifier for the device IR.

Checks, per function:

* every block ends in exactly one terminator (and only at the end),
* all branch targets exist,
* register operand types match the opcode's contract,
* ``retval``/``ret`` agree with the declared return type,
* parallel-region markers are balanced on **every path** (not just the
  function-wide count): the per-path depth analysis from
  :mod:`repro.analysis.dataflow` rejects functions where one path opens a
  region another path never closes, where a block is entered at two
  different depths, or where ``par_begin`` nests,
* ``kparam`` indices are non-negative.

Per module:

* call sites reference defined device functions or declared host externs,
* ``gaddr`` symbols resolve to globals,
* kernels do not take the VOID return type with RETVAL etc.
"""

from __future__ import annotations

from repro.errors import VerifierError
from repro.ir.instructions import (
    Instr,
    Opcode,
    fcmp_ops,
    float_binops,
    icmp_ops,
    int_binops,
    math_unops,
)
from repro.ir.module import Function, Module
from repro.ir.types import F64, I64, Reg, ScalarType

_INT_BIN = int_binops()
_FLT_BIN = float_binops()
_MATH_UN = math_unops()
_ICMP = icmp_ops()
_FCMP = fcmp_ops()


def _fail(fn: Function, msg: str) -> None:
    raise VerifierError(f"in function {fn.name!r}: {msg}")


def _check_operand_types(fn: Function, instr: Instr) -> None:
    op = instr.op
    regs = [a for a in instr.args if isinstance(a, Reg)]

    def want(n: int) -> None:
        if len(regs) != n:
            _fail(fn, f"{op.name} expects {n} register operands, got {len(regs)}")

    if op in _INT_BIN or op in _ICMP:
        want(2)
        if not (regs[0].ty is I64 and regs[1].ty is I64):
            _fail(fn, f"{op.name} requires i64 operands")
    elif op in _FLT_BIN or op in _FCMP:
        want(2)
        if not (regs[0].ty is F64 and regs[1].ty is F64):
            _fail(fn, f"{op.name} requires f64 operands")
    elif op in _MATH_UN or op is Opcode.FNEG:
        want(1)
        if regs[0].ty is not F64:
            _fail(fn, f"{op.name} requires an f64 operand")
    elif op in (Opcode.INEG, Opcode.BNOT):
        want(1)
        if regs[0].ty is not I64:
            _fail(fn, f"{op.name} requires an i64 operand")
    elif op is Opcode.SITOFP:
        want(1)
        if regs[0].ty is not I64:
            _fail(fn, "sitofp requires i64")
    elif op is Opcode.FPTOSI:
        want(1)
        if regs[0].ty is not F64:
            _fail(fn, "fptosi requires f64")
    elif op is Opcode.LOAD:
        want(1)
        if regs[0].ty is not I64:
            _fail(fn, "load address must be i64")
        if instr.mty is None:
            _fail(fn, "load missing memory type")
        if instr.dest is None or instr.dest.ty is not instr.mty.reg_ty:
            _fail(fn, "load destination type mismatch")
    elif op is Opcode.STORE:
        want(2)
        if regs[0].ty is not I64:
            _fail(fn, "store address must be i64")
        if instr.mty is None:
            _fail(fn, "store missing memory type")
        if regs[1].ty is not instr.mty.reg_ty:
            _fail(fn, "store value type mismatch")
    elif op in (Opcode.ATOMIC_ADD, Opcode.ATOMIC_MAX):
        want(2)
        if instr.mty is None:
            _fail(fn, f"{op.name} missing memory type")
        if regs[0].ty is not I64 or regs[1].ty is not instr.mty.reg_ty:
            _fail(fn, f"{op.name} operand type mismatch")
    elif op is Opcode.SELECT:
        want(3)
        if regs[0].ty is not I64:
            _fail(fn, "select condition must be i64")
        if regs[1].ty is not regs[2].ty:
            _fail(fn, "select arms must match")
        if instr.dest is None or instr.dest.ty is not regs[1].ty:
            _fail(fn, "select destination type mismatch")
    elif op is Opcode.MOV:
        want(1)
        if instr.dest is None or instr.dest.ty is not regs[0].ty:
            _fail(fn, "mov type mismatch")
    elif op is Opcode.MOVI:
        if instr.dest is None or instr.dest.ty is not I64 or not isinstance(instr.imm, int):
            _fail(fn, "movi must write an int immediate to an i64 register")
    elif op is Opcode.MOVF:
        if instr.dest is None or instr.dest.ty is not F64 or not isinstance(instr.imm, float):
            _fail(fn, "movf must write a float immediate to an f64 register")
    elif op is Opcode.CBR:
        want(1)
        if regs[0].ty is not I64:
            _fail(fn, "cbr condition must be i64")
        if len(instr.targets) != 2:
            _fail(fn, "cbr needs two targets")
    elif op is Opcode.BR:
        if len(instr.targets) != 1:
            _fail(fn, "br needs one target")
    elif op is Opcode.RETVAL:
        want(1)
        if fn.ret_ty is ScalarType.VOID:
            _fail(fn, "retval in a void function")
        if regs[0].ty is not fn.ret_ty:
            _fail(fn, f"retval type {regs[0].ty} != declared {fn.ret_ty}")
    elif op is Opcode.RET:
        if fn.ret_ty is not ScalarType.VOID and not fn.is_kernel:
            _fail(fn, "ret (void) in a non-void function")
    elif op is Opcode.GADDR:
        if instr.sym is None:
            _fail(fn, "gaddr missing symbol")
        if instr.dest is None or instr.dest.ty is not I64:
            _fail(fn, "gaddr destination must be i64")
    elif op is Opcode.SALLOC:
        if not isinstance(instr.imm, int) or instr.imm <= 0:
            _fail(fn, "salloc needs a positive byte-count immediate")
    elif op is Opcode.KPARAM:
        if not isinstance(instr.imm, int) or instr.imm < 0:
            _fail(fn, "kparam needs a non-negative index immediate")
    elif op is Opcode.CALL:
        if instr.callee is None:
            _fail(fn, "call missing callee")
    elif op is Opcode.RPC:
        if instr.service is None:
            _fail(fn, "rpc missing service name")
    elif op in (Opcode.RED_ADD, Opcode.RED_MAX, Opcode.RED_MIN):
        want(1)
        if instr.dest is None or instr.dest.ty is not regs[0].ty:
            _fail(fn, f"{op.name} destination type mismatch")
    elif op in (Opcode.MEMCPY, Opcode.MEMSET):
        want(3)
        if any(r.ty is not I64 for r in regs):
            _fail(fn, f"{op.name} operands must be i64")
    elif op in (Opcode.SHFL_DOWN, Opcode.SHFL_IDX):
        want(2)
        if regs[1].ty is not I64:
            _fail(fn, f"{op.name} lane/delta operand must be i64")
        if instr.dest is None or instr.dest.ty is not regs[0].ty:
            _fail(fn, f"{op.name} destination must match the value type")


def verify_function(fn: Function) -> None:
    """Raise :class:`~repro.errors.VerifierError` if ``fn`` is malformed."""
    if not fn.block_order:
        _fail(fn, "no blocks")
    for block in fn.iter_blocks():
        if not block.instrs:
            _fail(fn, f"block {block.label!r} is empty")
        for i, instr in enumerate(block.instrs):
            last = i == len(block.instrs) - 1
            if instr.is_terminator and not last:
                _fail(fn, f"terminator {instr.op.name} mid-block in {block.label!r}")
            if last and not instr.is_terminator:
                _fail(fn, f"block {block.label!r} lacks a terminator")
            for target in instr.targets:
                if target not in fn.blocks:
                    _fail(fn, f"branch to unknown block {target!r}")
            _check_operand_types(fn, instr)
    # Per-path parallel-region balance via the dataflow framework: every
    # path must close what it opens, and no block may be reachable at two
    # different depths.  (Imported lazily: repro.analysis depends on this
    # package's siblings.)
    from repro.analysis.cfg import CFG
    from repro.analysis.dataflow import par_depths

    info = par_depths(fn, CFG(fn))
    if info.problems:
        _fail(fn, "; ".join(info.problems))
    # params must be registers 0..n-1
    for i, reg in enumerate(fn.param_regs):
        if reg.id != i:
            _fail(fn, "parameter registers must be the first registers")


def verify_module(module: Module) -> None:
    """Verify every function plus cross-function/global references."""
    for fn in module.functions.values():
        verify_function(fn)
        for instr in fn.iter_instrs():
            if instr.op is Opcode.GADDR and instr.sym not in module.globals:
                _fail(fn, f"gaddr of undefined global {instr.sym!r}")
            if instr.op is Opcode.CALL:
                callee = instr.callee
                if callee in module.functions:
                    target = module.functions[callee]
                    nparams = len(target.params)
                    if len(instr.args) != nparams:
                        _fail(
                            fn,
                            f"call to {callee!r} with {len(instr.args)} args, "
                            f"expected {nparams}",
                        )
                    for arg, (pname, pty) in zip(instr.args, target.params):
                        if isinstance(arg, Reg) and arg.ty is not pty:
                            _fail(
                                fn,
                                f"call to {callee!r}: arg {pname!r} has type "
                                f"{arg.ty}, expected {pty}",
                            )
                    want = target.ret_ty
                    have = ScalarType.VOID if instr.dest is None else instr.dest.ty
                    if want is not ScalarType.VOID and have is not want:
                        _fail(fn, f"call to {callee!r} result type mismatch")
                elif callee in module.extern_host:
                    pass  # legal until RPC lowering runs; checked by pipeline
                else:
                    _fail(fn, f"call to undefined symbol {callee!r}")
