"""Scalar and memory types of the device IR."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ScalarType(enum.Enum):
    """Register types.  Pointers are I64 byte addresses."""

    I64 = "i64"
    F64 = "f64"
    VOID = "void"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_int(self) -> bool:
        return self is ScalarType.I64

    @property
    def is_float(self) -> bool:
        return self is ScalarType.F64


I64 = ScalarType.I64
F64 = ScalarType.F64
VOID = ScalarType.VOID


class MemType(enum.Enum):
    """Element types for loads/stores (byte-addressed, little-endian)."""

    I8 = ("i8", 1, ScalarType.I64)
    I32 = ("i32", 4, ScalarType.I64)
    I64 = ("i64", 8, ScalarType.I64)
    F32 = ("f32", 4, ScalarType.F64)
    F64 = ("f64", 8, ScalarType.F64)

    def __init__(self, label: str, size: int, reg_ty: ScalarType):
        self.label = label
        self.size = size
        self.reg_ty = reg_ty

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label

    @classmethod
    def from_label(cls, label: str) -> "MemType":
        for m in cls:
            if m.label == label:
                return m
        raise KeyError(f"unknown memory type {label!r}")


@dataclass(frozen=True, slots=True)
class Reg:
    """A typed virtual register.

    Registers are function-local; ``id`` is unique within the function that
    created them (via :class:`~repro.ir.builder.IRBuilder`).
    """

    id: int
    ty: ScalarType

    def __repr__(self) -> str:
        prefix = "f" if self.ty is ScalarType.F64 else "r"
        return f"%{prefix}{self.id}"
