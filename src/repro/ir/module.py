"""IR containers: basic blocks, functions, global variables, modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import IRError, LinkError
from repro.ir.instructions import Instr, Opcode
from repro.ir.types import MemType, Reg, ScalarType


@dataclass(slots=True)
class Block:
    """A labeled basic block: a straight-line instruction list ending in a
    terminator (enforced by the verifier, not the container)."""

    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> tuple[str, ...]:
        term = self.terminator
        if term is None:
            return ()
        return tuple(term.targets)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)


class Function:
    """A device function.

    Attributes
    ----------
    name:
        Symbol name; the ``rename_main`` pass rewrites ``main`` to
        ``__user_main`` exactly like the paper's user-wrapper header.
    params:
        ``(name, type)`` pairs.  Parameter registers are the first
        ``len(params)`` registers allocated by the builder.
    ret_ty:
        ``I64``/``F64``/``VOID``.
    is_kernel:
        Kernels are host-launchable entry points (the loaders build them);
        ordinary device functions are inlined away before execution.
    declare_target / nohost:
        Flags set by the declare-target pass, mirroring
        ``#pragma omp declare target device_type(nohost)``.
    """

    def __init__(
        self,
        name: str,
        params: Iterable[tuple[str, ScalarType]] = (),
        ret_ty: ScalarType = ScalarType.VOID,
        *,
        is_kernel: bool = False,
    ):
        self.name = name
        self.params: list[tuple[str, ScalarType]] = list(params)
        self.ret_ty = ret_ty
        self.is_kernel = is_kernel
        self.declare_target = False
        self.nohost = False
        self.blocks: dict[str, Block] = {}
        self.block_order: list[str] = []
        self.next_reg = 0
        self.param_regs: list[Reg] = []
        for pname, pty in self.params:
            if pty is ScalarType.VOID:
                raise IRError(f"parameter {pname!r} of {name!r} cannot be void")
            self.param_regs.append(self.new_reg(pty))

    # -- registers -----------------------------------------------------------
    def new_reg(self, ty: ScalarType) -> Reg:
        if ty is ScalarType.VOID:
            raise IRError("cannot allocate a void register")
        r = Reg(self.next_reg, ty)
        self.next_reg += 1
        return r

    @property
    def num_regs(self) -> int:
        return self.next_reg

    # -- blocks ---------------------------------------------------------------
    def add_block(self, label: str) -> Block:
        if label in self.blocks:
            raise IRError(f"duplicate block label {label!r} in {self.name!r}")
        b = Block(label)
        self.blocks[label] = b
        self.block_order.append(label)
        return b

    @property
    def entry(self) -> Block:
        if not self.block_order:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[self.block_order[0]]

    def iter_blocks(self) -> Iterator[Block]:
        for label in self.block_order:
            yield self.blocks[label]

    def iter_instrs(self) -> Iterator[Instr]:
        for block in self.iter_blocks():
            yield from block.instrs

    def remove_block(self, label: str) -> None:
        if label == self.block_order[0]:
            raise IRError("cannot remove the entry block")
        del self.blocks[label]
        self.block_order.remove(label)

    def called_symbols(self) -> set[str]:
        return {i.callee for i in self.iter_instrs() if i.op is Opcode.CALL}

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.iter_blocks())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} blocks={len(self.blocks)} regs={self.num_regs}>"


@dataclass
class GlobalVar:
    """A module-level global living in device global memory.

    ``init`` is an optional numpy array of ``count`` elements (dtype matching
    ``mty``); zero-initialized when absent.  ``team_local`` is set by the
    globals-to-shared pass (§3.3 mitigation): the machine then gives every
    team its own private copy so ensemble instances cannot race on it.
    """

    name: str
    mty: MemType
    count: int
    init: np.ndarray | None = None
    team_local: bool = False
    constant: bool = False
    scalar: bool = False
    """True for globals declared with ``global_scalar``: the frontend reads
    and writes them by value; arrays (scalar=False) decay to pointers."""

    @property
    def nbytes(self) -> int:
        return self.mty.size * self.count

    def initial_bytes(self) -> bytes:
        if self.init is None:
            return b"\x00" * self.nbytes
        raw = np.ascontiguousarray(self.init).tobytes()
        if len(raw) != self.nbytes:
            raise IRError(
                f"global {self.name!r}: init has {len(raw)} bytes, expected {self.nbytes}"
            )
        return raw


class Module:
    """A linkage unit: functions + globals + the set of host-only symbols.

    ``extern_host`` lists symbols that exist only on the host (``printf``,
    ``fopen``...).  Calls to them are illegal on the device until the RPC
    lowering pass rewrites them into ``rpc`` instructions — exactly the job
    of the custom LTO pass in the paper's toolchain.
    """

    def __init__(self, name: str):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVar] = {}
        self.extern_host: set[str] = set()
        self.metadata: dict = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise LinkError(f"duplicate function symbol {fn.name!r}")
        if fn.name in self.globals:
            raise LinkError(f"symbol {fn.name!r} already defined as a global")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, g: GlobalVar) -> GlobalVar:
        if g.name in self.globals:
            raise LinkError(f"duplicate global symbol {g.name!r}")
        if g.name in self.functions:
            raise LinkError(f"symbol {g.name!r} already defined as a function")
        self.globals[g.name] = g
        return g

    def declare_extern_host(self, name: str) -> None:
        self.extern_host.add(name)

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise LinkError(f"undefined function {name!r} in module {self.name!r}") from None

    def get_global(self, name: str) -> GlobalVar:
        try:
            return self.globals[name]
        except KeyError:
            raise LinkError(f"undefined global {name!r} in module {self.name!r}") from None

    def kernels(self) -> list[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def rename_function(self, old: str, new: str) -> None:
        """Rename a function and update every direct call site."""
        if old not in self.functions:
            raise LinkError(f"cannot rename undefined function {old!r}")
        if new in self.functions or new in self.globals:
            raise LinkError(f"rename target symbol {new!r} already exists")
        fn = self.functions.pop(old)
        fn.name = new
        self.functions[new] = fn
        for f in self.functions.values():
            for instr in f.iter_instrs():
                if instr.op is Opcode.CALL and instr.callee == old:
                    instr.callee = new

    def undefined_callees(self) -> set[str]:
        """Symbols called somewhere but defined nowhere (host or device)."""
        missing: set[str] = set()
        for f in self.functions.values():
            for callee in f.called_symbols():
                if callee not in self.functions and callee not in self.extern_host:
                    missing.add(callee)
        return missing

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
