"""Textual dump of IR modules/functions (for debugging and golden tests)."""

from __future__ import annotations

from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Function, Module
from repro.ir.types import Reg


def _operand(a) -> str:
    if isinstance(a, Reg):
        return repr(a)
    return repr(a)


def format_instr(instr: Instr) -> str:
    """One-line textual form of an instruction."""
    parts: list[str] = []
    if instr.dest is not None:
        parts.append(f"{instr.dest!r} =")
    parts.append(instr.op.name.lower())
    if instr.mty is not None:
        parts.append(f".{instr.mty.label}")
    if instr.args:
        parts.append(", ".join(_operand(a) for a in instr.args))
    if instr.op in (Opcode.LOAD, Opcode.STORE) and instr.offset:
        parts.append(f"+{instr.offset}")
    if instr.imm is not None:
        parts.append(f"#{instr.imm}")
    if instr.sym is not None:
        parts.append(f"@{instr.sym}")
    if instr.callee is not None:
        parts.append(f"@{instr.callee}")
    if instr.service is not None:
        parts.append(f"${instr.service}")
    if instr.targets:
        parts.append("-> " + ", ".join(instr.targets))
    loc = instr.meta.get("loc")
    if loc is not None:
        parts.append(f"!loc({loc[0]}:{loc[1]})")
    return " ".join(parts)


def print_function(fn: Function) -> str:
    """Textual dump of a function (header, attributes, blocks)."""
    attrs = []
    if fn.is_kernel:
        attrs.append("kernel")
    if fn.declare_target:
        attrs.append("declare_target")
    if fn.nohost:
        attrs.append("nohost")
    attr_str = f" [{' '.join(attrs)}]" if attrs else ""
    params = ", ".join(f"{n}: {t}" for n, t in fn.params)
    lines = [f"func @{fn.name}({params}) -> {fn.ret_ty}{attr_str} {{"]
    for block in fn.iter_blocks():
        lines.append(f"{block.label}:")
        for instr in block.instrs:
            lines.append(f"  {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Textual dump of a whole module (externs, globals, functions)."""
    lines = [f"module @{module.name}"]
    for name in sorted(module.extern_host):
        lines.append(f"extern_host @{name}")
    for g in module.globals.values():
        tl = " team_local" if g.team_local else ""
        const = " const" if g.constant else ""
        lines.append(f"global @{g.name}: {g.mty.label} x {g.count}{tl}{const}")
    for fn in module.functions.values():
        lines.append("")
        lines.append(print_function(fn))
    return "\n".join(lines)
