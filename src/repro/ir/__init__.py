"""Typed register IR targeted by the restricted-Python frontend.

The IR is a conventional register machine over basic blocks:

* two scalar types (:data:`~repro.ir.types.I64`, :data:`~repro.ir.types.F64`);
  pointers are ``I64`` byte addresses into simulated device memory,
* an unbounded set of typed virtual registers per function,
* explicit terminators (``br`` / ``cbr`` / ``ret`` / ``retval``),
* GPU intrinsics (thread/team ids, barriers, parallel-region markers,
  team reductions, atomics) and a device->host ``rpc`` instruction.

The design intentionally mirrors what the paper's toolchain sees after Clang
codegen: the device passes in :mod:`repro.passes` (declare-target marking,
``main`` renaming, RPC lowering, full inlining) operate on this IR, and the
SIMT interpreter in :mod:`repro.runtime` executes it.
"""

from repro.ir.types import I64, F64, VOID, MemType, Reg, ScalarType
from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Block, Function, GlobalVar, Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify_function, verify_module
from repro.ir.printer import print_function, print_module

__all__ = [
    "I64",
    "F64",
    "VOID",
    "MemType",
    "Reg",
    "ScalarType",
    "Instr",
    "Opcode",
    "Block",
    "Function",
    "GlobalVar",
    "Module",
    "IRBuilder",
    "verify_function",
    "verify_module",
    "print_function",
    "print_module",
]
