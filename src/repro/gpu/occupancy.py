"""CUDA-style occupancy calculator.

Determines how many thread blocks can be simultaneously resident on one SM
given the block's thread count, register pressure, and shared-memory usage —
the same arithmetic the CUDA occupancy calculator performs.  The block
scheduler uses it to decide how many kernel "waves" a launch needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DeviceConfig
from repro.errors import LaunchError


@dataclass(frozen=True)
class OccupancyResult:
    blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    """Fraction of the SM's warp slots occupied."""
    limiter: str
    """Which resource capped residency: threads/warps/blocks/registers/shared."""


def occupancy(
    device: DeviceConfig,
    threads_per_block: int,
    *,
    regs_per_thread: int = 32,
    shared_mem_per_block: int = 0,
) -> OccupancyResult:
    """Blocks-per-SM residency for a block shape (CUDA occupancy math)."""
    if threads_per_block <= 0:
        raise LaunchError("threads_per_block must be positive")
    if threads_per_block > device.max_threads_per_block:
        raise LaunchError(
            f"{threads_per_block} threads per block exceeds the device limit "
            f"of {device.max_threads_per_block}"
        )
    if shared_mem_per_block > device.shared_mem_per_block:
        raise LaunchError(
            f"{shared_mem_per_block} bytes of shared memory per block exceeds "
            f"the device limit of {device.shared_mem_per_block}"
        )

    warps_per_block = -(-threads_per_block // device.warp_size)
    limits = {
        "threads": device.max_threads_per_sm // threads_per_block,
        "warps": device.max_warps_per_sm // warps_per_block,
        "blocks": device.max_blocks_per_sm,
    }
    regs_per_block = max(1, regs_per_thread) * threads_per_block
    limits["registers"] = device.registers_per_sm // regs_per_block
    if shared_mem_per_block > 0:
        limits["shared"] = device.shared_mem_per_sm // shared_mem_per_block

    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(0, limits[limiter])
    if blocks == 0:
        raise LaunchError(
            f"kernel cannot be scheduled: resource {limiter!r} allows zero "
            "blocks per SM"
        )
    active_warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        active_warps_per_sm=active_warps,
        occupancy=min(1.0, active_warps / device.max_warps_per_sm),
        limiter=limiter,
    )
