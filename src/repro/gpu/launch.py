"""Kernel launch geometry (grid/block dimensions) and validation.

The loaders only use one dimension — exactly like current LLVM OpenMP
offloading, as §3.1 of the paper notes — but the geometry type supports all
three so the packed multi-instance mapping ``(N/M, M, 1)`` proposed there
can be expressed and tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DeviceConfig
from repro.errors import LaunchError


@dataclass(frozen=True)
class Dim3:
    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise LaunchError(f"dimensions must be >= 1: {self}")

    @property
    def total(self) -> int:
        return self.x * self.y * self.z

    def __str__(self) -> str:
        return f"({self.x}, {self.y}, {self.z})"


@dataclass(frozen=True)
class LaunchConfig:
    """Validated launch configuration.

    ``instances_per_block`` expresses the paper's packed mapping: M
    instances share one block as a ``(threads/M, M, 1)``-shaped geometry;
    each instance privately uses ``threads_per_instance`` threads.
    """

    grid: Dim3
    block: Dim3
    instances_per_block: int = 1

    @property
    def num_blocks(self) -> int:
        return self.grid.total

    @property
    def threads_per_block(self) -> int:
        return self.block.total

    @property
    def threads_per_instance(self) -> int:
        return self.threads_per_block // self.instances_per_block

    def validate(self, device: DeviceConfig) -> None:
        if self.threads_per_block > device.max_threads_per_block:
            raise LaunchError(
                f"block {self.block} has {self.threads_per_block} threads; the "
                f"device supports at most {device.max_threads_per_block}"
            )
        if self.instances_per_block < 1:
            raise LaunchError("instances_per_block must be >= 1")
        if self.threads_per_block % self.instances_per_block:
            raise LaunchError(
                f"{self.threads_per_block} threads cannot be split evenly into "
                f"{self.instances_per_block} instances (the (N/M, M, 1) mapping "
                "requires M to divide the thread limit)"
            )
        if self.num_blocks < 1:
            raise LaunchError("grid must contain at least one block")


def config_1d(
    num_blocks: int, threads_per_block: int, instances_per_block: int = 1
) -> LaunchConfig:
    """The 1-D configuration the loaders use (teams x thread_limit)."""
    if instances_per_block > 1:
        # the packed mapping reshapes the block to (T/M, M, 1)
        block = Dim3(threads_per_block // instances_per_block, instances_per_block, 1)
    else:
        block = Dim3(threads_per_block, 1, 1)
    return LaunchConfig(Dim3(num_blocks, 1, 1), block, instances_per_block)
