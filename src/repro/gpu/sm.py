"""Block-to-SM scheduling.

Thread blocks are dispatched greedily to the SM slot that frees up first
(hardware work distributors behave like this to a first approximation).
With residency R blocks per SM and S SMs there are ``R*S`` slots; a launch
larger than that proceeds in "waves".  The makespan of the greedy schedule
is the SM-side component of the kernel time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class ScheduleResult:
    makespan: float
    waves: int
    per_slot_busy: list[float] = field(default_factory=list)


def schedule_blocks(
    block_times: list[float], *, num_sms: int, blocks_per_sm: int
) -> ScheduleResult:
    """Greedy earliest-available-slot scheduling of blocks onto SM slots."""
    slots = max(1, num_sms * blocks_per_sm)
    n = len(block_times)
    if n == 0:
        return ScheduleResult(0.0, 0, [])
    if n <= slots:
        # every block is resident from cycle 0: one wave
        return ScheduleResult(max(block_times), 1, list(block_times))
    heap = [0.0] * slots
    heapq.heapify(heap)
    for t in block_times:
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + t)
    busy = sorted(heap)
    return ScheduleResult(busy[-1], -(-n // slots), busy)
