"""First-fit free-list allocator over device global memory.

Used by the host side (loaders, device images, launch-time stack/team-local
regions).  Device-side ``malloc`` is different: it bump-allocates from a
heap region that the loader carves out with this allocator (see
:mod:`repro.runtime.libc`) — that is what gives every ensemble instance its
own non-contiguous heap allocations, the effect §4.3 of the paper blames
for non-coalesced cross-team access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceOutOfMemory
from repro.gpu.memory import NULL_GUARD

_ALIGN = 256  # allocation granularity; keeps regions sector- and row-aligned


def _round_up(x: int, align: int = _ALIGN) -> int:
    return (x + align - 1) & ~(align - 1)


@dataclass
class _FreeRange:
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


class DeviceAllocator:
    """Tracks [start, end) free ranges of the device arena."""

    def __init__(self, capacity: int, *, base: int = NULL_GUARD):
        if base >= capacity:
            raise ValueError("allocator base beyond capacity")
        self.capacity = capacity
        self.base = base
        self._free: list[_FreeRange] = [_FreeRange(base, capacity - base)]
        self._live: dict[int, int] = {}  # addr -> size

    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return sum(r.size for r in self._free)

    @property
    def used_bytes(self) -> int:
        return (self.capacity - self.base) - self.free_bytes

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (rounded to 256B); raises DeviceOutOfMemory."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        size = _round_up(nbytes)
        for i, r in enumerate(self._free):
            if r.size >= size:
                addr = r.start
                if r.size == size:
                    self._free.pop(i)
                else:
                    r.start += size
                    r.size -= size
                self._live[addr] = size
                return addr
        raise DeviceOutOfMemory(nbytes, self.free_bytes, self.capacity - self.base)

    def free(self, addr: int) -> None:
        """Release an allocation, coalescing with adjacent free ranges."""
        size = self._live.pop(addr, None)
        if size is None:
            raise ValueError(f"free of unallocated address 0x{addr:x}")
        new = _FreeRange(addr, size)
        # insert sorted by start, then coalesce neighbours
        pos = 0
        while pos < len(self._free) and self._free[pos].start < addr:
            pos += 1
        self._free.insert(pos, new)
        merged: list[_FreeRange] = []
        for r in self._free:
            if merged and merged[-1].end == r.start:
                merged[-1].size += r.size
            else:
                merged.append(r)
        self._free = merged

    def free_all(self) -> None:
        """Reset the allocator (all live allocations are dropped)."""
        self._live.clear()
        self._free = [_FreeRange(self.base, self.capacity - self.base)]

    def owns(self, addr: int) -> bool:
        return addr in self._live

    def size_of(self, addr: int) -> int:
        return self._live[addr]
