"""DRAM bandwidth and row-locality contention model.

Peak bandwidth is ``bytes_per_cycle``.  Actual efficiency depends on row-
buffer hits: a stream that walks a heap allocation sequentially enjoys long
same-row runs, but when many *independent* streams (one per ensemble
instance, since every instance owns separate heap allocations — §4.3) are
interleaved by the memory controller, each channel alternates between rows
and the hit rate collapses toward ``1/m`` of the single-stream value, where
``m`` is streams per channel.

The single-stream sequentiality ``q`` is *measured* from the actual sector
trace (fraction of per-warp consecutive transactions staying in one DRAM
row); only the interleaving penalty is analytic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramConfig


@dataclass(frozen=True)
class DramOutcome:
    efficiency: float
    service_cycles: float
    row_hit_prob: float
    streams_per_channel: float


class DramModel:
    """Bandwidth + row-buffer-locality model of the DRAM subsystem."""
    def __init__(self, cfg: DramConfig):
        self.cfg = cfg

    def efficiency(self, num_streams: int, seq_fraction: float) -> tuple[float, float, float]:
        """(efficiency, row_hit_prob, streams_per_channel).

        ``seq_fraction`` is the measured same-row fraction of each stream in
        isolation; interleaving ``m`` streams per channel divides it.  The
        interleave factor ramps smoothly (``1 + (streams-1)/channels``):
        even a handful of extra streams begins to break up row runs, which
        is what makes the paper's scaling gap grow *gradually* with the
        instance count instead of switching on at ``streams == channels``.
        """
        q = min(1.0, max(0.0, seq_fraction))
        m = 1.0 + max(0, num_streams - 1) / self.cfg.num_channels
        p_hit = q / m
        cost = p_hit + (1.0 - p_hit) * self.cfg.row_miss_penalty
        eff = max(self.cfg.min_efficiency, 1.0 / cost)
        return eff, p_hit, m

    def service(self, dram_bytes: float, num_streams: int, seq_fraction: float) -> DramOutcome:
        eff, p_hit, m = self.efficiency(num_streams, seq_fraction)
        cycles = dram_bytes / (self.cfg.bytes_per_cycle * eff)
        return DramOutcome(eff, cycles, p_hit, m)

    def peak_service(self, dram_bytes: float) -> DramOutcome:
        """Ablation: row-locality modeling disabled (always peak)."""
        return DramOutcome(1.0, dram_bytes / self.cfg.bytes_per_cycle, 1.0, 1.0)
