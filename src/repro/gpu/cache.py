"""Analytic L2 cache model.

The simulator does not replay every access through a set-associative array
(that would dominate runtime for zero reproduction value); instead it uses
the two quantities the trace gives us exactly — total transactions and the
unique-sector working set — and estimates the hit rate as

    reuse_fraction * capacity_factor

where ``reuse_fraction = 1 - unique/total`` is the fraction of transactions
that re-touch a sector (an upper bound on hits), and ``capacity_factor``
scales it down once the *combined* working set of all concurrent instances
overflows the shared L2.  This is the second mechanism (besides DRAM row
locality) that makes ensemble scaling sub-linear: N instances bring N
private working sets that compete for one cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig
from repro.gpu.coalescing import SECTOR_BYTES


@dataclass(frozen=True)
class CacheOutcome:
    hit_rate: float
    dram_bytes: float
    hit_bytes: float
    working_set_bytes: int


class L2Model:
    """Analytic shared-L2 filter over the kernel-wide sector stream."""
    def __init__(self, cfg: CacheConfig):
        self.cfg = cfg

    def evaluate(self, total_sectors: int, unique_sectors: int) -> CacheOutcome:
        """Estimate L2 filtering for a kernel's aggregate sector stream."""
        total_bytes = total_sectors * SECTOR_BYTES
        ws = unique_sectors * SECTOR_BYTES
        if not self.cfg.enabled or total_sectors == 0:
            return CacheOutcome(0.0, float(total_bytes), 0.0, ws)
        reuse = max(0.0, 1.0 - unique_sectors / total_sectors)
        capacity_factor = min(1.0, self.cfg.size_bytes / ws) if ws > 0 else 1.0
        hit = reuse * capacity_factor
        hit_bytes = total_bytes * hit
        return CacheOutcome(hit, total_bytes - hit_bytes, hit_bytes, ws)
