"""Functional device global memory.

A single byte-addressable numpy arena with typed, fully vectorized gather /
scatter used by the SIMT interpreter (all lanes of a team access memory in
one numpy operation).  Address 0 plus a guard page below
:data:`NULL_GUARD` bytes is never valid, so null-pointer dereferences fault
like on real hardware.

Alignment rules are the natural ones (i64/f64 -> 8, i32/f32 -> 4, i8 -> 1);
violations raise :class:`~repro.errors.MemoryFault` — sloppy address math in
a ported benchmark shows up immediately instead of corrupting neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryFault
from repro.ir.types import MemType

#: Bytes reserved at the bottom of the address space (null guard page).
NULL_GUARD = 4096

_NP_DTYPE = {
    MemType.I8: np.int8,
    MemType.I32: np.int32,
    MemType.I64: np.int64,
    MemType.F32: np.float32,
    MemType.F64: np.float64,
}


class GlobalMemory:
    """Byte-addressable simulated device memory."""

    def __init__(self, capacity: int):
        if capacity <= NULL_GUARD:
            raise ValueError(f"capacity must exceed the {NULL_GUARD}-byte null guard")
        capacity = (capacity + 7) & ~7  # keep the f64/i64 views aligned
        self.capacity = capacity
        self._buf = np.zeros(capacity, dtype=np.uint8)
        self._views = {
            MemType.I8: self._buf.view(np.int8),
            MemType.I32: self._buf.view(np.int32),
            MemType.I64: self._buf.view(np.int64),
            MemType.F32: self._buf.view(np.float32),
            MemType.F64: self._buf.view(np.float64),
        }

    # ------------------------------------------------------------------
    # vectorized lane access (used by the interpreter)
    # ------------------------------------------------------------------
    def _indices(self, addrs: np.ndarray, mty: MemType) -> np.ndarray:
        """Element indices for per-lane addresses, with the null-guard and
        alignment checks.

        Hot path: called for every load/store the interpreter executes.
        Sizes are powers of two, so alignment is a bitwise test and the
        element index a shift.  The *upper* bound is deliberately not
        checked here — element views are exactly ``capacity // size`` long,
        so numpy's own fancy-index bounds check catches overruns for free;
        callers translate that ``IndexError`` via :meth:`_beyond_end`
        (negative addresses land below the null guard and are caught by the
        ``min()`` test)."""
        size = mty.size
        if addrs.size == 0:
            return addrs
        if addrs.min() < NULL_GUARD:
            bad = int(addrs.min())
            raise MemoryFault(
                f"access at 0x{bad:x} inside the null guard page ({mty.label})"
            )
        if size == 1:
            return addrs
        # OR-reduce folds every address into one word: any set low bit in
        # any lane shows up in the fold, so one reduction replaces the
        # elementwise mask + any() pass.
        if int(np.bitwise_or.reduce(addrs)) & (size - 1):
            bad = int(addrs[addrs % size != 0][0])
            raise MemoryFault(f"misaligned {mty.label} access at 0x{bad:x}")
        return addrs >> (size.bit_length() - 1)

    def _beyond_end(self, addrs: np.ndarray) -> MemoryFault:
        hi = int(addrs.max())
        return MemoryFault(
            f"access at 0x{hi:x} beyond device memory end 0x{self.capacity:x}"
        )

    def gather(self, addrs: np.ndarray, mty: MemType) -> np.ndarray:
        """Load one element per address; returns i64 or f64 values."""
        idx = self._indices(addrs, mty)
        try:
            vals = self._views[mty][idx]
        except IndexError:
            raise self._beyond_end(addrs) from None
        if mty.reg_ty.is_int:
            return vals.astype(np.int64, copy=False)
        return vals.astype(np.float64, copy=False)

    def scatter(self, addrs: np.ndarray, values: np.ndarray, mty: MemType) -> None:
        """Store one element per address (later lanes win on conflicts, like
        the unordered-but-single-winner semantics of a real warp)."""
        idx = self._indices(addrs, mty)
        try:
            self._views[mty][idx] = values.astype(_NP_DTYPE[mty], copy=False)
        except IndexError:
            raise self._beyond_end(addrs) from None

    def fetch_add(self, addrs: np.ndarray, values: np.ndarray, mty: MemType) -> np.ndarray:
        """Atomic fetch-and-add per lane, correct under intra-call address
        collisions: lanes hitting the same address see a serialized order
        (lane order) and each receives the value before its own add.

        Float note: the vectorized prefix computation may leave O(eps *
        sum|v|) rounding on the returned *old* values relative to a strictly
        serial order (final memory contents are ordinary float sums either
        way).  Real GPU atomics give no ordering guarantee at all, so this
        is within the modeled semantics."""
        idx = self._indices(addrs, mty)
        view = self._views[mty]
        n = idx.size
        if n == 0:
            return values[:0]
        order = np.argsort(idx, kind="stable")
        sidx = idx[order]
        svals = values.astype(np.float64 if mty.reg_ty.is_float else np.int64)[order]
        group_start = np.empty(n, dtype=bool)
        group_start[0] = True
        group_start[1:] = sidx[1:] != sidx[:-1]
        cums = np.cumsum(svals)
        excl = cums - svals
        start_pos = np.maximum.accumulate(np.where(group_start, np.arange(n), 0))
        excl_in_group = excl - excl[start_pos]
        try:
            base = view[sidx].astype(svals.dtype)
        except IndexError:
            raise self._beyond_end(addrs) from None
        old_sorted = base + excl_in_group
        old = np.empty_like(old_sorted)
        old[order] = old_sorted
        # apply the total per-address delta
        np.add.at(view, idx, values.astype(_NP_DTYPE[mty]))
        if mty.reg_ty.is_int:
            return old.astype(np.int64)
        return old.astype(np.float64)

    def fetch_max(self, addrs: np.ndarray, values: np.ndarray, mty: MemType) -> np.ndarray:
        """Atomic fetch-and-max per lane (serialized in lane order)."""
        idx = self._indices(addrs, mty)
        view = self._views[mty]
        old = np.empty(idx.size, dtype=np.float64 if mty.reg_ty.is_float else np.int64)
        try:
            for k in range(idx.size):  # atomics with max are rare; keep it simple
                i = int(idx[k])
                old[k] = view[i]
                if values[k] > view[i]:
                    view[i] = values[k]
        except IndexError:
            raise self._beyond_end(addrs) from None
        return old

    # ------------------------------------------------------------------
    # host-side access (loader, RPC handlers, tests)
    # ------------------------------------------------------------------
    def _host_check(self, addr: int, nbytes: int) -> None:
        if addr < NULL_GUARD or addr + nbytes > self.capacity:
            raise MemoryFault(
                f"host access [0x{addr:x}, 0x{addr + nbytes:x}) out of range"
            )

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._host_check(addr, len(data))
        self._buf[addr : addr + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        self._host_check(addr, nbytes)
        return self._buf[addr : addr + nbytes].tobytes()

    def write_array(self, addr: int, array: np.ndarray) -> None:
        raw = np.ascontiguousarray(array)
        self.write_bytes(addr, raw.tobytes())

    def read_array(self, addr: int, dtype, count: int) -> np.ndarray:
        nbytes = np.dtype(dtype).itemsize * count
        raw = self.read_bytes(addr, nbytes)
        return np.frombuffer(raw, dtype=dtype).copy()

    def read_i64(self, addr: int) -> int:
        return int(self.read_array(addr, np.int64, 1)[0])

    def write_i64(self, addr: int, value: int) -> None:
        self.write_array(addr, np.array([value], dtype=np.int64))

    def read_f64(self, addr: int) -> float:
        return float(self.read_array(addr, np.float64, 1)[0])

    def write_f64(self, addr: int, value: float) -> None:
        self.write_array(addr, np.array([value], dtype=np.float64))

    def read_cstring(self, addr: int, max_len: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for RPC handlers like printf)."""
        self._host_check(addr, 1)
        end = min(self.capacity, addr + max_len)
        chunk = self._buf[addr:end]
        nul = np.flatnonzero(chunk == 0)
        if nul.size == 0:
            raise MemoryFault(f"unterminated string at 0x{addr:x}")
        return chunk[: nul[0]].tobytes().decode(errors="replace")

    def zero(self, addr: int, nbytes: int) -> None:
        self._host_check(addr, nbytes)
        self._buf[addr : addr + nbytes] = 0
