"""The simulated GPU device: image loading and kernel launching.

:class:`GPUDevice` owns the global-memory arena and its allocator, loads
finalized IR modules into :class:`DeviceImage` objects (globals materialized
at device addresses), and launches kernels block-by-block through the SIMT
interpreter, collecting the per-block traces the timing model consumes.

Launch-scoped resources (per-lane stacks, team-local copies of relocated
globals) are allocated before and freed after every launch, so a harness can
run hundreds of launches against one device without leaking the arena.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

import numpy as np

from repro.analysis.safety import SAFETY_META, Verdict
from repro.config import DEFAULT_DEVICE, DEFAULT_SIM, DeviceConfig, SimConfig
from repro.errors import DeviceError, DeviceTrap, LaunchError
from repro.faults.injector import NO_FAULTS, InjectedOOM, InstanceFault
from repro.gpu.allocator import DeviceAllocator
from repro.gpu.launch import config_1d
from repro.gpu.memory import GlobalMemory
from repro.gpu.timing import BlockTrace, KernelTiming, TimingModel
from repro.ir.module import Module
from repro.obs.tracer import CLOCK_CYCLES, CLOCK_STEPS, NULL_TRACER
from repro.runtime.backend import DEFAULT_BACKEND, Backend, get_backend
from repro.runtime.compiled import SAFETY_CERT_KEY, SAFETY_MODES
from repro.runtime.interpreter import BlockContext
from repro.runtime.machine import LoweredKernel, lower_kernel
from repro.runtime.trace import TraceCollector

#: Per-team trace tracks recorded per launch; beyond this the launch span
#: notes ``teams_truncated`` instead of flooding the trace with tracks.
TRACE_TEAM_LIMIT = 64

#: Occupancy-model register estimate per thread (post-regalloc estimate; the
#: virtual-register count of our unallocated IR is not meaningful hardware
#: pressure, so a fixed realistic figure is used).
HW_REGS_PER_THREAD = 32


@dataclass
class DeviceImage:
    """A module loaded onto the device."""

    module: Module
    base: int
    size: int
    symbols: dict[str, int]
    template: bytes = b""
    team_local_offsets: dict[str, int] = field(default_factory=dict)
    team_local_size: int = 0
    team_local_template: bytes = b""
    lowered: dict[str, LoweredKernel] = field(default_factory=dict)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise DeviceError(f"image has no symbol {name!r}") from None


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    kernel: str
    num_teams: int
    thread_limit: int
    instances_per_team: int
    cycles: float | None
    timing: KernelTiming | None
    interpreter_steps: int
    #: Name of the execution engine that ran this launch.
    backend: str = DEFAULT_BACKEND
    traces: list[BlockTrace] = field(default_factory=list)
    #: teams whose instances were fault-isolated mid-launch (injected
    #: per-instance faults, e.g. an RPC timeout): team id -> the fault.
    #: Every other team's results are valid; the ensemble loader maps the
    #: faulted teams back to instance slots.
    team_faults: dict[int, Exception] = field(default_factory=dict)

    @property
    def summary(self) -> dict:
        out = {
            "kernel": self.kernel,
            "teams": self.num_teams,
            "thread_limit": self.thread_limit,
            "steps": self.interpreter_steps,
        }
        if self.timing is not None:
            out.update(self.timing.summary())
        return out


#: Process-wide ordinal source for default device labels (``cuda:K``-style
#: identity, so multi-device stats can name devices without the caller
#: inventing labels).
_next_ordinal = count()


class GPUDevice:
    """A simulated GPU with an A100-like default configuration."""

    def __init__(
        self,
        config: DeviceConfig = DEFAULT_DEVICE,
        sim: SimConfig = DEFAULT_SIM,
        *,
        label: str | None = None,
    ):
        config.validate()
        self.config = config
        self.sim = sim
        self.ordinal = next(_next_ordinal)
        self.label = label if label is not None else f"gpu{self.ordinal}"
        self.memory = GlobalMemory(config.global_mem_bytes)
        self.allocator = DeviceAllocator(self.memory.capacity)
        self.timing_model = TimingModel(config, sim)
        #: Observability hooks: a tracer (null by default — zero overhead)
        #: and an optional MetricsRegistry launches publish into.  Set by
        #: :meth:`repro.sched.pool.DevicePool.attach_obs` or directly.
        self.tracer = NULL_TRACER
        self.metrics = None
        #: Fault injection hook, same null-object pattern as the tracer:
        #: :data:`~repro.faults.NO_FAULTS` unless a chaos plan is attached
        #: (by :meth:`repro.sched.pool.DevicePool.attach_faults`, a
        #: ``LaunchSpec.fault_plan``, or directly).
        self.faults = NO_FAULTS
        #: Per-domain simulated clocks: cumulative cycles of timed launches
        #: and interpreter steps of untimed ones.  Launch spans are placed
        #: on these clocks, so a device's trace track is monotonic.
        self.cycle_clock = 0.0
        self.step_clock = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GPUDevice {self.label!r} ordinal={self.ordinal} "
            f"mem={self.config.global_mem_bytes}>"
        )

    # ------------------------------------------------------------------
    # memory facade
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        return self.allocator.alloc(nbytes)

    def free(self, addr: int) -> None:
        self.allocator.free(addr)

    def memcpy_h2d(self, addr: int, data) -> None:
        if isinstance(data, (bytes, bytearray)):
            self.memory.write_bytes(addr, bytes(data))
        else:
            self.memory.write_array(addr, np.ascontiguousarray(data))

    def memcpy_d2h(self, addr: int, dtype, count: int) -> np.ndarray:
        return self.memory.read_array(addr, dtype, count)

    # ------------------------------------------------------------------
    # image loading
    # ------------------------------------------------------------------
    def load_image(self, module: Module) -> DeviceImage:
        """Materialize a finalized module's globals in device memory."""
        regular: list[tuple[str, bytes]] = []
        team_local: list[tuple[str, bytes]] = []
        for g in module.globals.values():
            bucket = team_local if g.team_local else regular
            bucket.append((g.name, g.initial_bytes()))

        def layout(items: list[tuple[str, bytes]]) -> tuple[dict[str, int], bytes]:
            offsets: dict[str, int] = {}
            blob = bytearray()
            for name, raw in items:
                if len(blob) % 8:
                    blob.extend(b"\x00" * (8 - len(blob) % 8))
                offsets[name] = len(blob)
                blob.extend(raw)
            return offsets, bytes(blob)

        reg_off, reg_blob = layout(regular)
        tl_off, tl_blob = layout(team_local)

        base = self.alloc(max(8, len(reg_blob)))
        if reg_blob:
            self.memory.write_bytes(base, reg_blob)
        symbols = {name: base + off for name, off in reg_off.items()}
        return DeviceImage(
            module=module,
            base=base,
            size=len(reg_blob),
            symbols=symbols,
            template=reg_blob,
            team_local_offsets=tl_off,
            team_local_size=len(tl_blob),
            team_local_template=tl_blob,
        )

    def reset_image(self, image: DeviceImage) -> None:
        """Restore every global to its initial value (fresh-process
        semantics between launches: an application run must not observe
        the previous run's global state)."""
        if image.template:
            self.memory.write_bytes(image.base, image.template)

    def unload_image(self, image: DeviceImage) -> None:
        self.free(image.base)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _publish_launch(
        self,
        kernel_name: str,
        num_teams: int,
        cycles: float | None,
        timing,
        total_steps: int,
    ) -> None:
        """Advance the device's simulated clock and emit the launch's
        span/counters into the attached tracer and metrics registry.

        Timed launches land on the cycle clock (one span on the device
        track, one per team from the timing model's block times); untimed
        launches land on the interpreter-step clock on a separate track,
        because cycles and steps are incomparable domains.
        """
        if self.metrics is not None:
            self.metrics.counter("device.launches", device=self.label).inc()
            self.metrics.counter("interp.steps", device=self.label).inc(
                total_steps
            )
            if cycles is not None:
                self.metrics.counter("device.cycles", device=self.label).inc(
                    cycles
                )

        if cycles is None:
            elapsed, clock = float(total_steps), CLOCK_STEPS
            track = f"device:{self.label} (steps)"
            start = self.step_clock
            self.step_clock += elapsed
        else:
            elapsed, clock = cycles, CLOCK_CYCLES
            track = f"device:{self.label}"
            start = self.cycle_clock
            self.cycle_clock += elapsed

        if not self.tracer.enabled:
            return
        args = {
            "kernel": kernel_name,
            "teams": num_teams,
            "interpreter_steps": total_steps,
        }
        if timing is not None and num_teams > TRACE_TEAM_LIMIT:
            args["teams_truncated"] = num_teams - TRACE_TEAM_LIMIT
        self.tracer.complete(
            f"launch {kernel_name}",
            track=track,
            start=start,
            end=start + elapsed,
            clock=clock,
            cat="launch",
            args=args,
        )
        if timing is not None:
            for team, block_time in enumerate(
                timing.block_times[:TRACE_TEAM_LIMIT]
            ):
                self.tracer.complete(
                    f"team {team}",
                    track=f"{self.label}/team{team}",
                    start=start,
                    end=start + min(block_time, elapsed),
                    clock=CLOCK_CYCLES,
                    cat="team",
                    args={"kernel": kernel_name},
                )

    # ------------------------------------------------------------------
    # launching
    # ------------------------------------------------------------------
    def launch(
        self,
        image: DeviceImage,
        kernel_name: str,
        *,
        num_teams: int,
        thread_limit: int,
        params: tuple = (),
        instances_per_team: int = 1,
        stack_bytes: int = 1024,
        rpc=None,
        collect_timing: bool = True,
        max_steps: int = 200_000_000,
        backend: "str | Backend" = DEFAULT_BACKEND,
        safety_mode: str = "unchecked",
    ) -> LaunchResult:
        engine = get_backend(backend)
        cfg = config_1d(num_teams, thread_limit, instances_per_team)
        cfg.validate(self.config)
        if num_teams > self.config.num_sms * self.config.max_blocks_per_sm:
            raise LaunchError(f"{num_teams} teams exceed device block capacity")
        if safety_mode not in SAFETY_MODES:
            raise LaunchError(
                f"unknown safety_mode {safety_mode!r}; expected one of "
                f"{SAFETY_MODES}"
            )
        # Per-lane stack bases are stack_base + lane * stack_bytes; the
        # safety analyzer proves 8-byte alignment for SALLOC-derived
        # pointers, so the stride must preserve the arena's alignment.
        stack_bytes = (stack_bytes + 7) & ~7

        if self.faults.enabled:
            # The ``device.alloc`` point models the launch-scoped allocation
            # (stacks, team-locals) failing; fired before anything is
            # allocated so a rejected launch leaks nothing.
            fault = self.faults.fire("device.alloc", device=self.label)
            if fault is not None:
                raise InjectedOOM(fault, device=self.label)

        kern = image.lowered.get(kernel_name)
        if kern is None:
            fn = image.module.get_function(kernel_name)
            kern = lower_kernel(fn, tracer=self.tracer, metrics=self.metrics)
            image.lowered[kernel_name] = kern
            # Attach the build-time safety certificate (if the module was
            # stamped) so certificate-aware backends can elide guards.
            certs = image.module.metadata.get(SAFETY_META)
            if isinstance(certs, dict):
                cert = certs.get(kernel_name)
                if cert is not None:
                    kern.backend_cache[SAFETY_CERT_KEY] = cert

        if self.metrics is not None:
            cert = kern.backend_cache.get(SAFETY_CERT_KEY)
            self.metrics.counter(
                "safety.launches",
                device=self.label,
                mode=safety_mode,
                certified=str(cert is not None).lower(),
            ).inc()
            if cert is not None and safety_mode == "unchecked":
                elided = kept = 0
                for proof in cert.sites.values():
                    if proof.verdict is Verdict.PROVEN:
                        elided += 1
                    else:
                        kept += 1
                self.metrics.counter(
                    "safety.guards.elided", device=self.label
                ).inc(elided)
                self.metrics.counter(
                    "safety.guards.kept", device=self.label
                ).inc(kept)

        warp = self.config.warp_size
        lanes = -(-thread_limit // warp) * warp  # padded per team

        # --- launch-scoped allocations ---------------------------------
        stacks_addr = None
        if stack_bytes > 0:
            stacks_addr = self.alloc(num_teams * lanes * stack_bytes)
        tl_addr = None
        tl_stride = 0
        if image.team_local_size > 0:
            tl_stride = (image.team_local_size + 255) & ~255
            tl_addr = self.alloc(num_teams * tl_stride)
            for team in range(num_teams):
                self.memory.write_bytes(
                    tl_addr + team * tl_stride, image.team_local_template
                )

        def make_resolver(team: int):
            def resolve(sym: str) -> int:
                addr = image.symbols.get(sym)
                if addr is not None:
                    return addr
                off = image.team_local_offsets.get(sym)
                if off is not None:
                    if tl_addr is None:
                        raise DeviceError(
                            f"team-local global {sym!r} without a team-local region"
                        )
                    return tl_addr + team * tl_stride + off
                raise DeviceTrap(f"undefined global symbol {sym!r}", team=team)

            return resolve

        traces: list[BlockTrace] = []
        team_faults: dict[int, Exception] = {}
        total_steps = 0
        try:
            for team in range(num_teams):
                shared_range = None
                if tl_addr is not None:
                    base = tl_addr + team * tl_stride
                    shared_range = (base, base + image.team_local_size)
                collector = None
                if collect_timing:
                    collector = TraceCollector(
                        team,
                        lanes // warp,
                        model_coalescing=self.sim.model_coalescing,
                        shared_range=shared_range,
                    )
                ctx = BlockContext(
                    memory=self.memory,
                    resolve=make_resolver(team),
                    params=params,
                    team_id=team,
                    num_teams=num_teams,
                    instances_per_team=instances_per_team,
                    threads_per_instance=thread_limit // instances_per_team,
                    stack_base=stacks_addr if stacks_addr is not None else 0,
                    stack_bytes=stack_bytes,
                    rpc=rpc,
                    warp_size=warp,
                    max_steps=max_steps,
                    collector=collector,
                    safety_mode=safety_mode,
                    shared_range=shared_range,
                )
                executor = engine.executor(kern, ctx)
                try:
                    executor.run()
                except InstanceFault as fault:
                    # Per-instance degradation: only this team's instances
                    # are lost; every other team keeps running.
                    if fault.team is None:
                        fault.team = team
                    team_faults[team] = fault
                total_steps += executor.steps
                if collector is not None:
                    traces.append(collector.finalize())
        finally:
            if stacks_addr is not None:
                self.free(stacks_addr)
            if tl_addr is not None:
                self.free(tl_addr)

        timing = None
        cycles = None
        if collect_timing:
            timing = self.timing_model.kernel_time(
                traces,
                threads_per_block=thread_limit,
                regs_per_thread=HW_REGS_PER_THREAD,
                shared_mem_per_block=image.team_local_size,
            )
            cycles = timing.cycles
            if self.faults.enabled and self.faults.watches("device.launch"):
                cycles = self._inject_team_stalls(timing, num_teams)
        self._publish_launch(kernel_name, num_teams, cycles, timing, total_steps)
        return LaunchResult(
            kernel=kernel_name,
            num_teams=num_teams,
            thread_limit=thread_limit,
            instances_per_team=instances_per_team,
            cycles=cycles,
            timing=timing,
            interpreter_steps=total_steps,
            backend=engine.name,
            traces=traces,
            team_faults=team_faults,
        )

    def _inject_team_stalls(self, timing: KernelTiming, num_teams: int) -> float:
        """Apply ``slow_team`` faults: inflate the matching teams' block
        times by the spec's factor and stretch the kernel makespan by the
        added critical-path time."""
        for team in range(num_teams):
            fault = self.faults.fire(
                "device.launch", device=self.label, team=team
            )
            if fault is None or team >= len(timing.block_times):
                continue
            delta = timing.block_times[team] * (fault.factor - 1.0)
            timing.block_times[team] += delta
            if timing.block_times[team] > timing.makespan:
                grow = timing.block_times[team] - timing.makespan
                timing.makespan += grow
                timing.cycles += grow
        return timing.cycles
