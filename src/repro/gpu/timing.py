"""Kernel timing model.

The interpreter executes kernels functionally and, alongside, fills a
:class:`BlockTrace` per thread block with

* per-phase issue cycles (CPI-weighted instruction counts per warp, split
  into sequential-mode and parallel-region phases, because a sequential
  phase has a single active warp per instance while a parallel phase has
  the whole team),
* the memory-transaction stream after warp-level coalescing (sector counts,
  per-block unique sectors, and measured DRAM row-run statistics).

:class:`TimingModel` then combines the traces:

1. L2 filtering (:class:`~repro.gpu.cache.L2Model`) over the aggregate
   sector stream of all concurrent instances;
2. per-block time = sum over phases of max(compute, memory), where memory
   throughput follows Little's law
   (``active_warps * mlp * sector_bytes / latency``) split between L2-hit
   and DRAM-bound traffic;
3. SM scheduling of blocks into occupancy-limited slots
   (:func:`~repro.gpu.sm.schedule_blocks`);
4. a device-wide DRAM bandwidth bound with the row-locality efficiency of
   :class:`~repro.gpu.dram.DramModel`, where the number of contending
   streams is the number of concurrently resident blocks — each ensemble
   instance walks its own heap allocations (§4.3 of the paper).

The kernel time is ``max(SM makespan, DRAM service time) + launch
overhead``, in device cycles.  Only ratios of these times are meaningful,
which is all the paper's ``T1*N/TN`` metric needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import DeviceConfig, SimConfig
from repro.errors import DeviceError
from repro.gpu.cache import L2Model
from repro.gpu.coalescing import SECTOR_BYTES
from repro.gpu.dram import DramModel
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.sm import schedule_blocks
from repro.ir.instructions import Opcode

#: Fixed kernel-launch overhead in cycles (driver + dispatch).
LAUNCH_OVERHEAD_CYCLES = 2500.0

#: Cycles-per-instruction by opcode (issue+execute cost seen by a warp).
_CPI_DEFAULT = 1.0
CPI: dict[Opcode, float] = {
    # double-precision ALU
    Opcode.FADD: 2.0,
    Opcode.FSUB: 2.0,
    Opcode.FMUL: 2.0,
    Opcode.FMIN: 2.0,
    Opcode.FMAX: 2.0,
    Opcode.FNEG: 1.0,
    Opcode.FDIV: 10.0,
    Opcode.SITOFP: 2.0,
    Opcode.FPTOSI: 2.0,
    # transcendental / SFU
    Opcode.SQRT: 8.0,
    Opcode.EXP: 16.0,
    Opcode.LOG: 16.0,
    Opcode.SIN: 16.0,
    Opcode.COS: 16.0,
    Opcode.TAN: 20.0,
    Opcode.FPOW: 24.0,
    Opcode.FABS: 1.0,
    Opcode.FLOOR: 2.0,
    Opcode.CEIL: 2.0,
    # integer division is slow on GPUs
    Opcode.SDIV: 12.0,
    Opcode.SREM: 12.0,
    # memory issue cost (transfer cost is modeled separately)
    Opcode.LOAD: 4.0,
    Opcode.STORE: 4.0,
    Opcode.ATOMIC_ADD: 20.0,
    Opcode.ATOMIC_MAX: 20.0,
    Opcode.MEMCPY: 8.0,
    Opcode.MEMSET: 8.0,
    # warp shuffles
    Opcode.SHFL_DOWN: 2.0,
    Opcode.SHFL_IDX: 2.0,
    # synchronization
    Opcode.BARRIER: 16.0,
    Opcode.PAR_BEGIN: 24.0,
    Opcode.PAR_END: 24.0,
    Opcode.RED_ADD: 32.0,
    Opcode.RED_MAX: 32.0,
    Opcode.RED_MIN: 32.0,
    # device->host round trip
    Opcode.RPC: 2000.0,
}


def cpi_of(op: Opcode) -> float:
    """Cycles-per-instruction charged for an opcode (1.0 default)."""
    return CPI.get(op, _CPI_DEFAULT)


@dataclass
class PhaseStats:
    """Issue/memory statistics for one sequential or parallel phase."""

    parallel: bool
    active_warps: int = 1
    mem_warps: int = 0
    """Warps that actually issued memory transactions during the phase.
    Latency hiding comes from *these* (idle tail warps that fail a
    worksharing bound immediately contribute no memory-level parallelism),
    so the throughput term uses mem_warps, not the instantaneous maximum."""
    issue_cycles_total: float = 0.0
    issue_cycles_max_warp: float = 0.0
    sectors: int = 0
    lane_accesses: int = 0
    shared_accesses: int = 0
    """Lane accesses served by on-chip shared memory (team-local globals);
    they cost issue cycles but no L2/DRAM traffic."""


@dataclass
class BlockTrace:
    """Everything the timing model needs about one executed block."""

    block_id: int
    phases: list[PhaseStats] = field(default_factory=list)
    row_transitions: int = 0
    row_hits: int = 0
    unique_sectors: np.ndarray | None = None
    dynamic_instructions: int = 0
    divergent_instructions: int = 0
    """Instructions executed on the interpreter's divergent (min-PC) path —
    a direct measure of warp divergence in the program."""

    @property
    def total_sectors(self) -> int:
        return sum(p.sectors for p in self.phases)

    @property
    def total_issue_cycles(self) -> float:
        return sum(p.issue_cycles_total for p in self.phases)


@dataclass
class KernelTiming:
    cycles: float
    block_times: list[float]
    makespan: float
    dram_cycles: float
    occupancy: OccupancyResult
    l2_hit_rate: float
    dram_efficiency: float
    row_seq_fraction: float
    total_sectors: int
    unique_sectors: int
    total_dram_bytes: float
    waves: int

    def summary(self) -> dict:
        return {
            "cycles": self.cycles,
            "makespan": self.makespan,
            "dram_cycles": self.dram_cycles,
            "blocks": len(self.block_times),
            "waves": self.waves,
            "occupancy": self.occupancy.occupancy,
            "l2_hit_rate": self.l2_hit_rate,
            "dram_efficiency": self.dram_efficiency,
            "row_seq_fraction": self.row_seq_fraction,
            "total_sectors": self.total_sectors,
            "unique_sectors": self.unique_sectors,
        }


class TimingModel:
    """Combines block traces into a simulated kernel time (see module doc)."""
    def __init__(self, device: DeviceConfig, sim: SimConfig):
        self.device = device
        self.sim = sim
        self.l2 = L2Model(device.l2)
        self.dram = DramModel(device.dram)

    # ------------------------------------------------------------------
    def kernel_time(
        self,
        traces: list[BlockTrace],
        *,
        threads_per_block: int,
        regs_per_thread: int = 32,
        shared_mem_per_block: int = 0,
    ) -> KernelTiming:
        if not traces:
            raise DeviceError("no block traces to time")
        dev = self.device

        occ = occupancy(
            dev,
            threads_per_block,
            regs_per_thread=regs_per_thread,
            shared_mem_per_block=shared_mem_per_block,
        )

        # ---- aggregate memory stream -> L2 ------------------------------
        total_sectors = sum(t.total_sectors for t in traces)
        uniq_arrays = [t.unique_sectors for t in traces if t.unique_sectors is not None]
        if uniq_arrays:
            unique_sectors = int(np.unique(np.concatenate(uniq_arrays)).size)
        else:
            unique_sectors = total_sectors
        if self.sim.model_l2:
            cache = self.l2.evaluate(total_sectors, unique_sectors)
            hit_rate = cache.hit_rate
        else:
            hit_rate = 0.0
        total_bytes = total_sectors * SECTOR_BYTES
        dram_bytes = total_bytes * (1.0 - hit_rate)

        # ---- DRAM row-locality efficiency ---------------------------------
        # Computed before block times: interleaved streams (one per resident
        # block, since each instance walks its own heap allocations) raise
        # the effective per-transaction latency for everyone.
        transitions = sum(t.row_transitions for t in traces)
        hits = sum(t.row_hits for t in traces)
        seq_fraction = hits / transitions if transitions else 1.0
        resident = min(len(traces), dev.num_sms * occ.blocks_per_sm)
        if self.sim.model_row_locality:
            dram_out = self.dram.service(dram_bytes, resident, seq_fraction)
        else:
            dram_out = self.dram.peak_service(dram_bytes)

        # ---- per-block times --------------------------------------------
        block_times = [
            self._block_time(t, hit_rate, dram_out.efficiency, resident)
            for t in traces
        ]

        # ---- SM scheduling -----------------------------------------------
        sched = schedule_blocks(
            block_times, num_sms=dev.num_sms, blocks_per_sm=occ.blocks_per_sm
        )

        # Block times already include each block's bandwidth share, so the
        # kernel time is the SM-schedule makespan; the aggregate DRAM
        # service time is kept as a diagnostic (and a sanity floor for
        # pathological schedules where one block hoards all traffic).
        cycles = max(sched.makespan, dram_out.service_cycles) + LAUNCH_OVERHEAD_CYCLES
        return KernelTiming(
            cycles=cycles,
            block_times=block_times,
            makespan=sched.makespan,
            dram_cycles=dram_out.service_cycles,
            occupancy=occ,
            l2_hit_rate=hit_rate,
            dram_efficiency=dram_out.efficiency,
            row_seq_fraction=seq_fraction,
            total_sectors=total_sectors,
            unique_sectors=unique_sectors,
            total_dram_bytes=dram_bytes,
            waves=sched.waves,
        )

    # ------------------------------------------------------------------
    def _block_time(
        self,
        trace: BlockTrace,
        l2_hit_rate: float,
        dram_efficiency: float,
        resident_blocks: int,
    ) -> float:
        """Sum of per-phase max(compute, memory) times for one block.

        Per-miss DRAM service time is a *series* of two components:

        * the latency-limited term ``1 / (concurrency/latency * eff)`` —
          how fast this block alone can pull misses given its in-flight
          transactions, inflated by row-locality loss (interleaved
          per-instance heap streams, the §4.3 effect), and
        * the bandwidth-share term ``resident / (BW * eff)`` — the block's
          queueing share of device bandwidth when ``resident`` blocks pull
          concurrently.

        The series form yields the paper's *gradual* bandwidth saturation
        (AMGmk at thread limit 1024 keeps gaining with N, just ever more
        slowly) instead of a sharp latency-bound/bandwidth-bound corner.
        """
        dev = self.device
        total = 0.0
        for phase in trace.phases:
            warps = max(1, phase.active_warps)
            schedulers = min(dev.warp_schedulers_per_sm, warps)
            compute = max(
                phase.issue_cycles_total / (schedulers * dev.issue_rate),
                phase.issue_cycles_max_warp,
            )
            bytes_phase = phase.sectors * SECTOR_BYTES
            mem = 0.0
            if bytes_phase > 0:
                mem_warps = phase.mem_warps or warps
                concurrency = mem_warps * dev.mlp_per_warp * SECTOR_BYTES
                thr_dram = concurrency / dev.mem_latency_cycles * dram_efficiency
                thr_l2 = concurrency / max(1, dev.l2.hit_latency)
                hit_b = bytes_phase * l2_hit_rate
                miss_b = bytes_phase - hit_b
                # queueing share: the bandwidth term matters in proportion
                # to DRAM utilization.  With `resident` symmetric blocks
                # each pulling at thr_dram, utilization rho approaches 1 at
                # saturation (AMGmk@1024) and stays small for latency-bound
                # kernels, which then see almost pure memory latency.
                cap = dev.dram.bytes_per_cycle * dram_efficiency
                rho = min(1.0, resident_blocks * thr_dram / cap)
                share = rho * resident_blocks / cap
                mem = hit_b / thr_l2 + miss_b * (1.0 / thr_dram + share)
            total += max(compute, mem)
        return total
