"""Simulated GPU: device memory, allocator, occupancy, coalescing, caches,
DRAM contention, and the kernel timing model.

The functional half (:class:`~repro.gpu.memory.GlobalMemory`,
:class:`~repro.gpu.allocator.DeviceAllocator`) backs device memory with a
real numpy buffer, so kernels compute real results.  The timing half
(:mod:`repro.gpu.coalescing`, :mod:`repro.gpu.cache`, :mod:`repro.gpu.dram`,
:mod:`repro.gpu.timing`) consumes the event trace the interpreter emits and
produces the simulated cycle counts that Figure 6 is built from.
"""

from repro.gpu.device import GPUDevice, DeviceImage, LaunchResult
from repro.gpu.launch import LaunchConfig
from repro.gpu.memory import GlobalMemory
from repro.gpu.allocator import DeviceAllocator
from repro.gpu.occupancy import OccupancyResult, occupancy

__all__ = [
    "GPUDevice",
    "DeviceImage",
    "LaunchResult",
    "LaunchConfig",
    "GlobalMemory",
    "DeviceAllocator",
    "OccupancyResult",
    "occupancy",
]
