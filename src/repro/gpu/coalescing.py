"""Warp-level memory coalescing.

NVIDIA-style memory systems service a warp's global access as a set of
32-byte *sectors*; when the 32 lanes touch consecutive addresses the access
"coalesces" into few sectors, while scattered lanes each pay a full sector.
The interpreter hands the coalescer the **actual byte addresses** issued by
the active lanes of each warp; the coalescer returns the unique
(warp, sector) pairs.  Everything downstream — L2, DRAM row locality — is
computed from these real sector streams, which is what makes the sub-linear
ensemble scaling in Figure 6 emerge from first principles rather than from
a fitted curve.
"""

from __future__ import annotations

import numpy as np

#: Sector (transaction) size in bytes.
SECTOR_BYTES = 32
_SECTOR_SHIFT = 5
#: Bits reserved for sector ids when packing (warp, sector) keys.
_KEY_SHIFT = 40


def sector_ids(addrs: np.ndarray, access_size: int) -> np.ndarray:
    """Sectors spanned by each access of ``access_size`` bytes (per lane).

    Accesses of <= 8 bytes touch one sector unless they straddle a boundary
    (impossible for naturally aligned accesses, which the memory model
    enforces), so the first-byte sector suffices.
    """
    return addrs >> _SECTOR_SHIFT


def warp_sector_keys(
    lane_ids: np.ndarray, addrs: np.ndarray, access_size: int, warp_size: int = 32
) -> np.ndarray:
    """Unique packed ``warp << 40 | sector`` keys for one memory instruction.

    ``lane_ids`` and ``addrs`` are the active lanes and their byte
    addresses.  The result is sorted (by warp, then sector), deduplicated —
    i.e. one entry per memory transaction actually issued.
    """
    warps = (lane_ids // warp_size).astype(np.int64)
    sectors = sector_ids(addrs.astype(np.int64), access_size)
    keys = (warps << _KEY_SHIFT) | sectors
    return np.unique(keys)


def split_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack key array into (warp ids, sector ids)."""
    return keys >> _KEY_SHIFT, keys & ((1 << _KEY_SHIFT) - 1)


def transactions_per_warp(keys: np.ndarray) -> dict[int, int]:
    """Transaction count by warp for one instruction (diagnostics/tests)."""
    warps, _ = split_keys(keys)
    uniq, counts = np.unique(warps, return_counts=True)
    return {int(w): int(c) for w, c in zip(uniq, counts)}


def uncoalesced_keys(
    lane_ids: np.ndarray, addrs: np.ndarray, warp_size: int = 32
) -> np.ndarray:
    """Ablation model ("coalescing off"): every active lane pays a private
    sector.  Keys are made unique per lane by folding the lane id in, so a
    32-lane access costs 32 transactions no matter the addresses."""
    warps = (lane_ids // warp_size).astype(np.int64)
    lanes = (lane_ids % warp_size).astype(np.int64)
    sectors = sector_ids(addrs.astype(np.int64), 1)
    keys = (warps << _KEY_SHIFT) | (sectors << 5) | lanes
    return keys  # deliberately not deduplicated across lanes
