"""The fault-plan spec language: what to break, where, and how often.

A *plan* is a ``;``-separated list of fault specs; a *spec* is a kind plus
``key=value`` parameters::

    oom:device=pool1:job=3          # one launch on pool1 of job 3 OOMs
    rpc_drop:rate=0.05:seed=42      # 5% of RPC replies are dropped
    slow_team:team=2:factor=10      # team 2 runs 10x slower
    transport_corrupt:byte=7        # flip the top byte of RPC replies
    deadline:job=*                  # every job's deadline fires
    worker_death:device=pool0       # pool0 dies on every dispatch

Selectors (``device``/``job``/``team``/``instance``/``service``) restrict
where a fault fires; ``*`` matches anything.  Control parameters shape the
firing schedule: ``rate`` (probability per consultation, drawn from a
deterministic per-spec PRNG), ``seed`` (that PRNG's seed), ``times`` (max
fires), ``after`` (skip the first N matching consultations).  Everything
is validated against the kind registry in :data:`KINDS`, so a typo'd plan
fails at parse time, not mid-campaign — ``python -m repro.faults.check``
is the CLI wrapper around that validation.

Plans also round-trip through JSON (:meth:`FaultPlan.from_json` /
:meth:`FaultPlan.to_json`) for harness configs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


class FaultPlanError(ReproError):
    """A fault-plan spec string or JSON document is malformed."""


#: Selector parameters every kind accepts (subset per kind, see KINDS).
SELECTOR_KEYS = ("device", "job", "team", "instance", "service")

#: Schedule-control parameters every kind accepts.
CONTROL_KEYS = ("rate", "seed", "times", "after")


@dataclass(frozen=True)
class FaultKind:
    """Registry entry: where a kind fires and which params it takes."""

    point: str
    selectors: frozenset[str]
    extras: frozenset[str] = frozenset()
    doc: str = ""

    @property
    def params(self) -> frozenset[str]:
        return self.selectors | self.extras | frozenset(CONTROL_KEYS)


#: Every fault kind, keyed by spec-string name.  ``point`` names the
#: injection point that consults the injector (see docs/faults.md).
KINDS: dict[str, FaultKind] = {
    "oom": FaultKind(
        point="device.alloc",
        selectors=frozenset({"device", "job"}),
        doc="a launch-scoped device allocation fails (DeviceOutOfMemory)",
    ),
    "slow_team": FaultKind(
        point="device.launch",
        selectors=frozenset({"device", "job", "team"}),
        extras=frozenset({"factor"}),
        doc="one team's simulated block time is inflated by `factor`",
    ),
    "rpc_drop": FaultKind(
        point="rpc.reply",
        selectors=frozenset(SELECTOR_KEYS),
        doc="the RPC reply is dropped; the launch fails transiently",
    ),
    "rpc_dup": FaultKind(
        point="rpc.reply",
        selectors=frozenset(SELECTOR_KEYS),
        doc="the RPC request is delivered twice (direct transport only)",
    ),
    "rpc_timeout": FaultKind(
        point="rpc.reply",
        selectors=frozenset(SELECTOR_KEYS),
        doc="the reply never arrives; only that instance's team faults",
    ),
    "transport_corrupt": FaultKind(
        point="rpc.reply",
        selectors=frozenset(SELECTOR_KEYS),
        extras=frozenset({"byte"}),
        doc="byte `byte` of the integer RPC reply is bit-flipped",
    ),
    "device_loss": FaultKind(
        point="batch.launch",
        selectors=frozenset({"device", "job"}),
        doc="the device disappears mid-batch (batched runner)",
    ),
    "worker_death": FaultKind(
        point="sched.dispatch",
        selectors=frozenset({"device", "job"}),
        doc="the dispatched-to pool worker dies before launching",
    ),
    "poison": FaultKind(
        point="sched.dispatch",
        selectors=frozenset({"device", "job", "instance"}),
        doc="the matching job/instance is poisoned and fault-isolated",
    ),
    "deadline": FaultKind(
        point="sched.dispatch",
        selectors=frozenset({"job"}),
        doc="the job's deadline fires; pending instances are isolated",
    ),
}


def _parse_number(key: str, raw: str, cast, lo=None, hi=None):
    try:
        value = cast(raw)
    except ValueError:
        raise FaultPlanError(
            f"parameter {key}={raw!r} is not a valid {cast.__name__}"
        ) from None
    if lo is not None and value < lo:
        raise FaultPlanError(f"parameter {key}={raw!r} must be >= {lo}")
    if hi is not None and value > hi:
        raise FaultPlanError(f"parameter {key}={raw!r} must be <= {hi}")
    return value


@dataclass
class FaultSpec:
    """One fault: a kind plus raw ``key=value`` parameters.

    Parameters are kept as strings so a spec formats back to exactly the
    grammar it was parsed from; typed accessors (:attr:`rate`,
    :attr:`times`, :attr:`factor`...) parse on demand.
    """

    kind: str
    params: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        info = KINDS.get(self.kind)
        if info is None:
            known = ", ".join(sorted(KINDS))
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} (known kinds: {known})"
            )
        for key in self.params:
            if key not in info.params:
                allowed = ", ".join(sorted(info.params))
                raise FaultPlanError(
                    f"fault {self.kind!r} does not take parameter {key!r} "
                    f"(allowed: {allowed})"
                )
        # touching each typed accessor validates its raw value
        self.rate, self.seed, self.times, self.after, self.factor, self.byte

    # -- identity -----------------------------------------------------------
    @property
    def point(self) -> str:
        return KINDS[self.kind].point

    def selector(self, key: str) -> str | None:
        """Raw selector value (``"*"`` for wildcard), or None if unset."""
        return self.params.get(key)

    # -- typed control parameters ------------------------------------------
    @property
    def rate(self) -> float | None:
        raw = self.params.get("rate")
        if raw is None:
            return None
        return _parse_number("rate", raw, float, lo=0.0, hi=1.0)

    @property
    def seed(self) -> int | None:
        raw = self.params.get("seed")
        return None if raw is None else _parse_number("seed", raw, int)

    @property
    def times(self) -> int | None:
        raw = self.params.get("times")
        return None if raw is None else _parse_number("times", raw, int, lo=1)

    @property
    def after(self) -> int:
        raw = self.params.get("after")
        return 0 if raw is None else _parse_number("after", raw, int, lo=0)

    @property
    def factor(self) -> float:
        raw = self.params.get("factor")
        if raw is None:
            return 10.0
        value = _parse_number("factor", raw, float)
        if value <= 0:
            raise FaultPlanError(f"parameter factor={raw!r} must be > 0")
        return value

    @property
    def byte(self) -> int:
        raw = self.params.get("byte")
        return 0 if raw is None else _parse_number("byte", raw, int, lo=0, hi=7)

    # -- formatting ---------------------------------------------------------
    def format(self) -> str:
        parts = [self.kind] + [f"{k}={v}" for k, v in self.params.items()]
        return ":".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = [p.strip() for p in text.strip().split(":")]
        if not parts or not parts[0]:
            raise FaultPlanError(f"empty fault spec in {text!r}")
        kind, params = parts[0], {}
        for part in parts[1:]:
            if "=" not in part:
                raise FaultPlanError(
                    f"fault parameter {part!r} is not of the form key=value"
                )
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not value:
                raise FaultPlanError(f"fault parameter {key!r} has no value")
            if key in params:
                raise FaultPlanError(f"duplicate parameter {key!r} in {text!r}")
            params[key] = value
        return cls(kind, params)


@dataclass
class FaultPlan:
    """An ordered set of fault specs plus a plan-level default seed.

    Specs without their own ``seed=`` parameter derive a deterministic
    per-spec stream from ``seed`` and their position, so the whole plan is
    reproducible from one number.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    def format(self) -> str:
        return ";".join(spec.format() for spec in self.specs)

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "FaultPlan":
        chunks = [c for c in (p.strip() for p in text.split(";")) if c]
        if not chunks:
            raise FaultPlanError("fault plan is empty")
        return cls([FaultSpec.parse(c) for c in chunks], seed=seed)

    # -- JSON shape ---------------------------------------------------------
    @classmethod
    def from_json(cls, data) -> "FaultPlan":
        """Build a plan from ``{"seed": .., "faults": [{"kind": ..}, ..]}``
        (or a bare list of fault objects)."""
        seed = 0
        if isinstance(data, dict):
            seed = int(data.get("seed", 0))
            data = data.get("faults", [])
        if not isinstance(data, list):
            raise FaultPlanError(
                "fault-plan JSON must be a list of faults or an object "
                "with a 'faults' list"
            )
        specs = []
        for entry in data:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise FaultPlanError(
                    f"fault entry {entry!r} must be an object with a 'kind'"
                )
            params = {
                str(k): str(v) for k, v in entry.items() if k != "kind"
            }
            specs.append(FaultSpec(str(entry["kind"]), params))
        if not specs:
            raise FaultPlanError("fault plan is empty")
        return cls(specs, seed=seed)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [
                {"kind": s.kind, **s.params} for s in self.specs
            ],
        }

    # -- wire shape (docs/serve.md) -----------------------------------------
    def to_wire(self) -> dict:
        """Versioned wire document (see :mod:`repro.wire`)."""
        from repro import wire

        data = wire.envelope("FaultPlan")
        data.update(self.to_json())
        return data

    @classmethod
    def from_wire(cls, data) -> "FaultPlan":
        """Parse a wire document; malformed plans surface as
        :class:`~repro.wire.WireError` with the stable ``E_SCHEMA`` code."""
        from repro import wire

        wire.check_envelope(data, "FaultPlan")
        seed = wire.get_field(data, "seed", int, 0, kind="FaultPlan")
        faults = wire.get_field(data, "faults", list, kind="FaultPlan")
        try:
            return cls.from_json({"seed": seed, "faults": faults})
        except FaultPlanError as exc:
            raise wire.WireError(f"FaultPlan: {exc}") from exc


__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "KINDS",
    "SELECTOR_KEYS",
    "CONTROL_KEYS",
]
