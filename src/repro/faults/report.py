"""Structured records of injected faults and their blast radius.

A :class:`FaultReport` is the degradation contract of the fault layer: when
an injected fault cannot be recovered transparently (retry, bisection,
redistribution), the affected instances are *isolated* — they get a
synthetic exit code of :data:`FAULT_EXIT` and a report attached to their
:class:`~repro.host.ensemble_loader.InstanceOutcome` — and the campaign
carries on.  A job, batch campaign, or single ensemble launch therefore
never crashes wholesale because of an injected fault; it completes with
per-instance reports instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Exit code assigned to instances that were fault-isolated.  Real
#: application exit codes are small positive numbers; 254 is outside every
#: shipped benchmark's range and mirrors the shell's "died abnormally"
#: convention without colliding with 255 (argument errors).
FAULT_EXIT = 254


@dataclass
class FaultReport:
    """One fault's consequence, attached to the result that absorbed it."""

    kind: str
    point: str
    message: str = ""
    job_id: int | None = None
    device: str | None = None
    team: int | None = None
    instances: list[int] = field(default_factory=list)
    attempts: int = 0
    error: str = ""
    recovered: bool = False

    def to_dict(self) -> dict:
        """JSON-friendly view for reports and ``--metrics-out`` dumps."""
        out = {
            "kind": self.kind,
            "point": self.point,
            "message": self.message,
            "attempts": self.attempts,
            "error": self.error,
            "recovered": self.recovered,
            "instances": list(self.instances),
        }
        if self.job_id is not None:
            out["job_id"] = self.job_id
        if self.device is not None:
            out["device"] = self.device
        if self.team is not None:
            out["team"] = self.team
        return out

    # -- wire shape (docs/serve.md) -----------------------------------------
    def to_wire(self) -> dict:
        """Versioned wire document (see :mod:`repro.wire`).

        The fault's own kind travels as ``fault_kind`` — the envelope's
        ``kind`` names the document type.
        """
        from repro import wire

        data = wire.envelope("FaultReport")
        fields = self.to_dict()
        fields["fault_kind"] = fields.pop("kind")
        data.update(fields)
        return data

    @classmethod
    def from_wire(cls, data) -> "FaultReport":
        from repro import wire

        wire.check_envelope(data, "FaultReport")
        kind = "FaultReport"
        instances = wire.get_field(data, "instances", list, [], kind=kind)
        if not all(isinstance(i, int) for i in instances):
            raise wire.WireError(f"{kind}: instances must be integers")
        return cls(
            kind=wire.get_field(data, "fault_kind", str, kind=kind),
            point=wire.get_field(data, "point", str, kind=kind),
            message=wire.get_field(data, "message", str, "", kind=kind),
            job_id=wire.get_field(data, "job_id", int, None, kind=kind),
            device=wire.get_field(data, "device", str, None, kind=kind),
            team=wire.get_field(data, "team", int, None, kind=kind),
            instances=list(instances),
            attempts=wire.get_field(data, "attempts", int, 0, kind=kind),
            error=wire.get_field(data, "error", str, "", kind=kind),
            recovered=wire.get_field(data, "recovered", bool, False, kind=kind),
        )


__all__ = ["FaultReport", "FAULT_EXIT"]
