"""Deterministic, seed-driven fault injection.

The injector is threaded through the stack the same way the tracer is: a
component holds a reference (``device.faults``, ``rpc_host.faults``,
``scheduler.faults``) and *consults* it at explicit injection points::

    fault = self.faults.fire("rpc.reply", service=name, instance=i)
    if fault is not None:
        ...provoke the failure the spec describes...

The default everywhere is :data:`NO_FAULTS` — mirroring
:data:`~repro.obs.tracer.NULL_TRACER` — whose ``enabled`` flag is False,
so un-chaos'd runs pay a single attribute check and nothing else.

Determinism: firing decisions depend only on the plan (selectors,
``times``/``after`` counters, and per-spec ``random.Random`` streams
seeded from the spec or plan seed) and on the *order of consultations*.
The whole stack is a deterministic simulator, so two identical runs
consult in the same order and inject the identical fault sequence — the
property suite pins this down.

Every fired fault is recorded in :attr:`FaultInjector.events` and
published to the attached observability sinks as a ``faults.injected``
counter sample and an instant event on the ``faults`` trace track.
"""

from __future__ import annotations

import random
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from repro.errors import DeviceOutOfMemory, DeviceTrap, RPCError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.report import FaultReport
from repro.obs.tracer import NULL_TRACER

#: Trace track injected-fault instants are recorded on.
FAULT_TRACK = "faults"


# ---------------------------------------------------------------------------
# injected errors
# ---------------------------------------------------------------------------
class InjectedFault:
    """Marker mixin: this error was provoked by a :class:`FaultInjector`.

    The recovery machinery treats injected faults exactly like the real
    thing *except* at the terminal edge: an injected fault that survives
    every recovery attempt is isolated into a :class:`FaultReport` instead
    of crashing the campaign (real faults keep their historical semantics).
    """

    spec: FaultSpec | None = None

    def _mark(self, spec: FaultSpec | None, ctx: dict) -> None:
        self.spec = spec
        self.injected_ctx = dict(ctx)

    @property
    def fault_kind(self) -> str:
        return self.spec.kind if self.spec is not None else "unknown"

    def to_report(self, **extra) -> FaultReport:
        spec = self.spec
        return FaultReport(
            kind=spec.kind if spec else "unknown",
            point=spec.point if spec else "unknown",
            message=str(self),
            error=type(self).__name__,
            **extra,
        )


class InjectedOOM(InjectedFault, DeviceOutOfMemory):
    """An injected launch-scoped allocation failure."""

    def __init__(self, spec: FaultSpec | None = None, **ctx):
        DeviceOutOfMemory.__init__(self, requested=0, free=0, capacity=0)
        self.args = (f"injected device out of memory ({_ctx_str(ctx)})",)
        self._mark(spec, ctx)


class InjectedDeviceLoss(InjectedFault, DeviceTrap):
    """An injected device/worker death (transient from outside)."""

    def __init__(self, spec: FaultSpec | None = None, message: str = "", **ctx):
        DeviceTrap.__init__(self, message or f"injected device loss ({_ctx_str(ctx)})")
        self._mark(spec, ctx)


class InjectedRPCFailure(InjectedFault, RPCError):
    """An injected RPC transport failure (dropped reply); fails the launch
    transiently, like a real wedged service thread would."""

    def __init__(self, spec: FaultSpec | None = None, message: str = "", **ctx):
        RPCError.__init__(self, message or f"injected RPC failure ({_ctx_str(ctx)})")
        self._mark(spec, ctx)


class InstanceFault(InjectedFault, DeviceTrap):
    """An injected per-instance failure (e.g. an RPC timeout).

    :meth:`GPUDevice.launch` catches this *per team*: the faulting team is
    recorded on the launch result and every other team keeps running, so
    the failure surfaces per instance instead of per launch.
    """

    def __init__(self, spec: FaultSpec | None = None, message: str = "", **ctx):
        team = ctx.get("team")
        DeviceTrap.__init__(
            self,
            message or f"injected instance fault ({_ctx_str(ctx)})",
            team=team if isinstance(team, int) else None,
        )
        self.instance = ctx.get("instance")
        self._mark(spec, ctx)


def _ctx_str(ctx: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(ctx.items())) or "unconditional"


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------
@dataclass
class FaultEvent:
    """One injected fault, as recorded in :attr:`FaultInjector.events`."""

    seq: int
    point: str
    kind: str
    spec: str
    ctx: dict = field(default_factory=dict)

    def key(self) -> tuple:
        """Order-stable identity used by the reproducibility tests."""
        return (self.seq, self.point, self.kind, tuple(sorted(
            (k, str(v)) for k, v in self.ctx.items()
        )))


class _Armed:
    """Mutable firing state of one spec: its PRNG and schedule counters."""

    __slots__ = ("spec", "rng", "fired", "skipped")

    def __init__(self, spec: FaultSpec, seed: int):
        self.spec = spec
        self.rng = random.Random(seed)
        self.fired = 0
        self.skipped = 0


class NullFaultInjector:
    """The inert injector: never fires, costs one attribute check."""

    enabled = False
    events: tuple = ()
    plan = FaultPlan.__new__(FaultPlan)  # empty sentinel, never consulted

    def watches(self, point: str) -> bool:
        return False

    def fire(self, point: str, **ctx):
        return None

    def scoped(self, **ctx):
        return nullcontext()

    def attach_obs(self, obs) -> None:
        pass

    def attach_sinks(self, tracer, metrics) -> None:
        pass


#: Shared inert injector, the default ``faults=`` value everywhere.
NO_FAULTS = NullFaultInjector()


class FaultInjector:
    """Arms a :class:`~repro.faults.plan.FaultPlan` and answers ``fire``.

    One injector serves a whole campaign: the scheduler attaches it to
    every pool device, the loaders hand it to their RPC hosts, and ambient
    context (current job, current device) is layered in with
    :meth:`scoped` so device-level points can match ``job=`` selectors.
    """

    enabled = True

    def __init__(
        self,
        plan: FaultPlan | str,
        *,
        tracer=None,
        metrics=None,
    ):
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._armed = [
            _Armed(spec, spec.seed if spec.seed is not None
                   else plan.seed * 1_000_003 + index * 7919)
            for index, spec in enumerate(plan.specs)
        ]
        self._points = frozenset(spec.point for spec in plan.specs)
        self._ambient: dict = {}
        self.events: list[FaultEvent] = []

    # -- observability plumbing --------------------------------------------
    def attach_obs(self, obs) -> None:
        """Adopt an :class:`~repro.obs.Observability` bundle's sinks
        (no-op for sinks already attached explicitly)."""
        self.attach_sinks(obs.tracer, obs.metrics)

    def attach_sinks(self, tracer, metrics) -> None:
        if self.tracer is NULL_TRACER and tracer is not None:
            self.tracer = tracer
        if self.metrics is None and metrics is not None:
            self.metrics = metrics

    # -- consultation API ---------------------------------------------------
    def watches(self, point: str) -> bool:
        """Whether any armed spec targets ``point`` — lets hot loops (e.g.
        a per-team sweep) skip consultation entirely."""
        return point in self._points

    @contextmanager
    def scoped(self, **ctx):
        """Layer ambient context (job id, device) over nested ``fire``\\ s."""
        saved = self._ambient
        self._ambient = {**saved, **ctx}
        try:
            yield self
        finally:
            self._ambient = saved

    def fire(self, point: str, **ctx) -> FaultSpec | None:
        """Consult the plan at ``point``; returns the spec of the first
        armed fault that fires, or None.  A returned spec has already been
        recorded and published."""
        if point not in self._points:
            return None
        full_ctx = {**self._ambient, **ctx} if self._ambient else ctx
        for armed in self._armed:
            spec = armed.spec
            if spec.point != point:
                continue
            if not self._matches(spec, full_ctx):
                continue
            times = spec.times
            if times is not None and armed.fired >= times:
                continue
            if armed.skipped < spec.after:
                armed.skipped += 1
                continue
            rate = spec.rate
            if rate is not None and armed.rng.random() >= rate:
                continue
            armed.fired += 1
            self._record(point, spec, full_ctx)
            return spec
        return None

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _matches(spec: FaultSpec, ctx: dict) -> bool:
        for key in ("device", "job", "team", "instance", "service"):
            want = spec.selector(key)
            if want is None or want == "*":
                continue
            got = ctx.get(key)
            if got is not None and str(got) == want:
                continue
            if key == "device":
                alt = ctx.get("device_index")
                if alt is not None and str(alt) == want:
                    continue
            if key == "instance":
                span = ctx.get("instance_range")
                if span is not None:
                    try:
                        if int(want) in span:
                            continue
                    except ValueError:
                        pass
            return False
        return True

    def _record(self, point: str, spec: FaultSpec, ctx: dict) -> None:
        clean = {
            k: v for k, v in ctx.items() if k != "instance_range"
        }
        event = FaultEvent(
            seq=len(self.events),
            point=point,
            kind=spec.kind,
            spec=spec.format(),
            ctx=clean,
        )
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.counter(
                "faults.injected", kind=spec.kind, point=point
            ).inc()
        if self.tracer.enabled:
            self.tracer.instant(
                f"inject {spec.kind}",
                track=FAULT_TRACK,
                cat="fault",
                args={"point": point, **{k: str(v) for k, v in clean.items()}},
            )

    def summary(self) -> dict:
        """Injected-fault totals by kind (for the CLI's closing line)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


__all__ = [
    "FAULT_TRACK",
    "FaultEvent",
    "FaultInjector",
    "InjectedDeviceLoss",
    "InjectedFault",
    "InjectedOOM",
    "InjectedRPCFailure",
    "InstanceFault",
    "NO_FAULTS",
    "NullFaultInjector",
]
