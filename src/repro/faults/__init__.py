"""Deterministic fault injection for the ensemble stack (``repro.faults``).

The package has three layers:

* :mod:`repro.faults.plan` — the spec language (``oom:device=pool1``,
  ``rpc_drop:rate=0.05:seed=42``, ...) with parse/format/JSON round-trips
  and a kind registry (:data:`KINDS`) that names each injection point.
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the armed plan
  consulted at injection points throughout the stack, plus the zero-cost
  :data:`NO_FAULTS` default and the injected-error hierarchy.
* :mod:`repro.faults.report` — :class:`FaultReport` / :data:`FAULT_EXIT`,
  the structured degradation records attached to instance outcomes and
  job results instead of crashing a campaign.

``python -m repro.faults.check <plan>`` validates plans offline.
"""

from repro.faults.injector import (
    FAULT_TRACK,
    FaultEvent,
    FaultInjector,
    InjectedDeviceLoss,
    InjectedFault,
    InjectedOOM,
    InjectedRPCFailure,
    InstanceFault,
    NO_FAULTS,
    NullFaultInjector,
)
from repro.faults.plan import (
    CONTROL_KEYS,
    KINDS,
    SELECTOR_KEYS,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from repro.faults.report import FAULT_EXIT, FaultReport

__all__ = [
    "CONTROL_KEYS",
    "FAULT_EXIT",
    "FAULT_TRACK",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultReport",
    "FaultSpec",
    "InjectedDeviceLoss",
    "InjectedFault",
    "InjectedOOM",
    "InjectedRPCFailure",
    "InstanceFault",
    "KINDS",
    "NO_FAULTS",
    "NullFaultInjector",
    "SELECTOR_KEYS",
]
