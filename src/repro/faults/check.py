"""Fault-plan validator: ``python -m repro.faults.check <plan> [...]``.

Parses each argument as a fault-plan spec string (or, with a leading
``@``, a file holding either a spec string or the JSON plan shape) and
prints the normalized plan — without running anything.  Exits non-zero on
the first malformed plan, so harness configs can be linted in CI before a
multi-hour chaos campaign discovers the typo.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.faults.plan import KINDS, FaultPlan, FaultPlanError


def _load(arg: str) -> FaultPlan:
    if not arg.startswith("@"):
        return FaultPlan.parse(arg)
    path = Path(arg[1:])
    try:
        text = path.read_text()
    except OSError as exc:
        raise FaultPlanError(f"cannot read plan file {path}: {exc}") from None
    stripped = text.strip()
    if stripped.startswith(("{", "[")):
        try:
            return FaultPlan.from_json(json.loads(stripped))
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"{path}: invalid JSON: {exc}") from None
    return FaultPlan.parse(stripped)


def main(argv: list[str] | None = None) -> int:
    """Validate fault plans; 0 iff every plan parses cleanly."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.check",
        description="Validate repro.faults plan strings without running them",
    )
    parser.add_argument(
        "plans",
        nargs="*",
        help="plan spec strings, or @file for a file (spec string or JSON)",
    )
    parser.add_argument(
        "--kinds",
        action="store_true",
        help="list every known fault kind and exit",
    )
    args = parser.parse_args(argv)

    if args.kinds:
        for name, info in sorted(KINDS.items()):
            params = ", ".join(sorted(info.params))
            print(f"{name:18} @{info.point:14} {info.doc}")
            print(f"{'':18} params: {params}")
        return 0
    if not args.plans:
        parser.error("no plans given (or use --kinds)")

    status = 0
    for arg in args.plans:
        try:
            plan = _load(arg)
        except FaultPlanError as exc:
            print(f"{arg}: {exc}", file=sys.stderr)
            status = 1
            continue
        print(f"{arg}: ok ({len(plan.specs)} fault(s), seed {plan.seed})")
        for spec in plan.specs:
            print(f"  {spec.format()}  @{spec.point}")
    return status


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
