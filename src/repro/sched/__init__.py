"""Multi-device ensemble scheduling.

The paper's §3 argues one application instance cannot saturate one GPU;
one level up, one GPU cannot saturate a campaign.  This package is the
scheduling layer the paper's related work gestures at ([3,4]): a
:class:`DevicePool` of simulated GPUs, a :class:`Scheduler` that shards
submitted jobs across the pool with work stealing, OOM bisection, bounded
retries and step-budget deadlines, and a :class:`SchedulerStats` surface
— a read view over the :mod:`repro.obs` metrics registry — reporting
per-device utilization in simulated time.  Pass
``obs=repro.obs.Observability.enabled()`` to record the campaign as a
Chrome-traceable timeline.

Quick start::

    from repro.host import LaunchSpec
    from repro.sched import DevicePool, Scheduler

    pool = DevicePool(4)                      # four simulated GPUs
    sched = Scheduler(pool)
    fut = sched.submit(app.build_program(),
                       LaunchSpec("campaign.args", thread_limit=128))
    result = fut.result()                     # drives the pool
    print(sched.stats.utilization())
"""

from repro.sched.jobs import Job, JobFuture, JobResult, JobState, JobTicket
from repro.sched.pool import DevicePool, PoolWorker
from repro.sched.scheduler import Scheduler
from repro.sched.stats import DeviceStats, SchedulerStats

__all__ = [
    "DevicePool",
    "PoolWorker",
    "Scheduler",
    "SchedulerStats",
    "DeviceStats",
    "Job",
    "JobFuture",
    "JobResult",
    "JobState",
    "JobTicket",
]
