"""The device pool: a set of simulated GPUs the scheduler dispatches onto.

Each :class:`PoolWorker` wraps one :class:`~repro.gpu.device.GPUDevice`
with a per-device simulated clock (the device's accumulated busy cycles)
and a cache of compiled :class:`~repro.host.ensemble_loader.EnsembleLoader`
instances, keyed by program, so a job touching several devices compiles
once per device, not once per batch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.config import DEFAULT_DEVICE, DEFAULT_SIM, DeviceConfig, SimConfig
from repro.errors import SchedulerError
from repro.gpu.device import GPUDevice
from repro.host.ensemble_loader import EnsembleLoader

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.jobs import Job

#: Builds the per-device loader for a job.  Replaceable in tests to inject
#: faults or wrap loaders with instrumentation.
LoaderFactory = Callable[[Any, GPUDevice, dict], EnsembleLoader]


def _default_loader_factory(program, device: GPUDevice, opts: dict) -> EnsembleLoader:
    return EnsembleLoader(program, device, **opts)


class PoolWorker:
    """One device plus its simulated clock and loader cache."""

    def __init__(self, index: int, device: GPUDevice, factory: LoaderFactory):
        self.index = index
        self.device = device
        self.factory = factory
        self.busy_cycles = 0.0
        #: Consecutive injected faults on this device; reset by any
        #: successful launch.  At the scheduler's quarantine threshold the
        #: worker is taken out of rotation and its queue redistributed.
        self.fault_streak = 0
        self.quarantined = False
        #: Shared :class:`~repro.compilecache.ExecutableCache`, when the
        #: scheduler attached one; handed to every loader this worker
        #: builds so compilation happens once per pool, not per device.
        self.cache = None
        self._loaders: dict[tuple, EnsembleLoader] = {}

    @property
    def label(self) -> str:
        return self.device.label

    def loader_for(self, job: "Job") -> EnsembleLoader:
        key = (id(job.program), repr(sorted(job.loader_opts.items(), key=repr)))
        loader = self._loaders.get(key)
        if loader is None:
            opts = dict(job.loader_opts)
            if self.cache is not None:
                # Injected at factory-call time (never into the job's own
                # opts) so the loader-cache key stays identity-stable.
                opts.setdefault("cache", self.cache)
            loader = self.factory(job.program, self.device, opts)
            self._loaders[key] = loader
        return loader

    def close(self) -> None:
        for loader in self._loaders.values():
            loader.close()
        self._loaders.clear()


class DevicePool:
    """A fixed set of workers, one per device.

    Construct from an explicit device list, or from a count (``size=K``)
    to get ``K`` identically configured devices labelled ``pool0..K-1``.
    """

    def __init__(
        self,
        devices: Sequence[GPUDevice] | int,
        *,
        config: DeviceConfig = DEFAULT_DEVICE,
        sim: SimConfig = DEFAULT_SIM,
        loader_factory: LoaderFactory = _default_loader_factory,
    ):
        if isinstance(devices, int):
            if devices < 1:
                raise SchedulerError("a device pool needs at least one device")
            devices = [
                GPUDevice(config, sim, label=f"pool{i}") for i in range(devices)
            ]
        else:
            devices = list(devices)
            if not devices:
                raise SchedulerError("a device pool needs at least one device")
            labels = [d.label for d in devices]
            if len(set(labels)) != len(labels):
                raise SchedulerError(
                    f"device labels must be unique, got {labels}"
                )
        self.workers = [
            PoolWorker(i, dev, loader_factory) for i, dev in enumerate(devices)
        ]

    def attach_obs(self, obs) -> None:
        """Point every device at an :class:`~repro.obs.Observability`
        bundle so launches emit spans/counters into the shared tracer and
        registry.  Called by the scheduler; idempotent."""
        for w in self.workers:
            w.device.tracer = obs.tracer
            w.device.metrics = obs.metrics

    def attach_cache(self, cache) -> None:
        """Share one :class:`~repro.compilecache.ExecutableCache` across
        every worker's loaders.  Called by the scheduler; idempotent."""
        for w in self.workers:
            w.cache = cache

    def attach_faults(self, faults) -> None:
        """Point every device at one shared
        :class:`~repro.faults.FaultInjector` so a campaign's injection
        points draw from a single deterministic plan.  Called by the
        scheduler; idempotent."""
        for w in self.workers:
            w.device.faults = faults

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    @property
    def labels(self) -> list[str]:
        return [w.label for w in self.workers]

    @property
    def healthy(self) -> list[PoolWorker]:
        """Workers still in rotation (not quarantined)."""
        return [w for w in self.workers if not w.quarantined]

    def close(self) -> None:
        """Release every cached loader's device resources."""
        for w in self.workers:
            w.close()


__all__ = ["DevicePool", "PoolWorker", "LoaderFactory"]
