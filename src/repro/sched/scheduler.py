"""The multi-device ensemble scheduler.

One device cannot saturate a campaign any more than one instance can
saturate a device (§3 of the paper, one level up): :class:`Scheduler`
owns a :class:`~repro.sched.pool.DevicePool` and drives every device
concurrently in *simulated time*.  Each worker advances its own clock by
the simulated cycles of the launches it runs; the scheduler always
dispatches the next shard to the device whose clock is furthest behind —
exactly how a concurrent pool behaves, but deterministic and reproducible
because the whole stack is a simulator.

Mechanics:

* **Sharding** — a submitted job's instances are cut into contiguous
  chunks (roughly ``2×`` the pool size, so every device gets work and
  fast devices can take more) and spread round-robin across per-worker
  queues.
* **Work stealing** — a worker whose queue is empty steals the oldest
  chunk from the longest queue.
* **Batch coalescing + OOM bisection** — chunk sizes are capped by a
  per-worker-per-job :class:`~repro.host.batch.BisectionPolicy`: the same
  halving schedule :class:`~repro.host.batch.BatchedEnsembleRunner` uses,
  so a size that OOMed on a device is never tried there again.
  :class:`~repro.errors.DeviceOutOfMemory` at batch size one is terminal.
* **Retries** — a chunk that dies to a device fault (trap, RPC failure)
  is requeued with exponential backoff, at most ``retries`` times per
  chunk; exhaustion fails the job with
  :class:`~repro.errors.RetriesExhausted`.
  :class:`~repro.errors.EnsembleSafetyError` from the race gate is
  terminal immediately.
* **Deadlines** — a job may carry an interpreter-step budget; every
  launch is clamped to the remaining budget and overrunning it fails the
  job with :class:`~repro.errors.DeadlineExceeded`.
* **Observability** — every decision publishes into the
  :class:`~repro.obs.metrics.MetricsRegistry` of the scheduler's
  :class:`~repro.obs.Observability` bundle;
  :class:`~repro.sched.stats.SchedulerStats` is a read view over it.
  With a recording tracer (``obs=Observability.enabled()``) the job
  lifecycle (submitted → running → retry → done), steal and OOM-split
  events land on a ``scheduler`` track, and the pool's devices emit
  launch/team spans in simulated time.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.errors import (
    DeadlineExceeded,
    DeviceError,
    DeviceOutOfMemory,
    DeviceTrap,
    EnsembleSafetyError,
    JobFailed,
    ReproError,
    RetriesExhausted,
    SchedulerError,
)
from repro.faults.injector import (
    NO_FAULTS,
    FaultInjector,
    InjectedDeviceLoss,
    InjectedFault,
    NullFaultInjector,
)
from repro.faults.report import FAULT_EXIT, FaultReport
from repro.host.batch import BatchRecord, BisectionPolicy, launch_chunk
from repro.host.ensemble_loader import InstanceOutcome
from repro.host.launch import LaunchSpec
from repro.obs import Observability
from repro.sched.jobs import Job, JobFuture, JobResult, JobState, JobTicket
from repro.sched.pool import DevicePool, PoolWorker
from repro.sched.stats import SchedulerStats

#: Track name the scheduler's own (wall-clock) events are recorded on.
SCHED_TRACK = "scheduler"


@dataclass
class _Chunk:
    """A contiguous shard of one job's instances."""

    job: Job
    start: int  # global index of the first instance in this shard
    instances: list[list[str]]
    attempt: int = 0
    #: The attempt counter came from a split parent, not from this chunk
    #: faulting itself.  Reset to zero once any chunk of the job launches
    #: successfully: after an OOM-bisection success, a later unrelated
    #: fault must retry from attempt 0, not from the parent's attempt N.
    attempt_inherited: bool = False
    #: Kinds of the injected faults this chunk is being retried for (a
    #: chunk can stack several — e.g. a worker death then injected OOM);
    #: a subsequent successful launch publishes each as
    #: ``faults.recovered``.
    pending_faults: list = field(default_factory=list)

    def split(self) -> tuple["_Chunk", "_Chunk"]:
        half = len(self.instances) // 2
        inherited = self.attempt_inherited or self.attempt > 0
        left = _Chunk(
            self.job, self.start, self.instances[:half], self.attempt, inherited
        )
        right = _Chunk(
            self.job,
            self.start + half,
            self.instances[half:],
            self.attempt,
            inherited,
        )
        return left, right


class Scheduler:
    """Shards ensemble jobs across a device pool; see module docstring."""

    def __init__(
        self,
        pool: DevicePool,
        *,
        max_batch: int | None = None,
        default_retries: int = 2,
        backoff_base: float = 0.0,
        chunk_size: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
        obs: Observability | None = None,
        faults=None,
        quarantine_threshold: int = 3,
        static_packing: bool = True,
        job_scoped_faults: bool = False,
        cache=None,
    ):
        if default_retries < 0:
            raise SchedulerError("default_retries must be >= 0")
        if quarantine_threshold < 1:
            raise SchedulerError("quarantine_threshold must be >= 1")
        self.pool = pool
        self.max_batch = max_batch
        self.default_retries = default_retries
        self.backoff_base = backoff_base
        self.chunk_size = chunk_size
        self.quarantine_threshold = quarantine_threshold
        #: Seed per-device batch caps from the compiler's StaticFootprint
        #: instead of discovering them through runtime OOM bisection.
        self.static_packing = static_packing
        #: Multi-tenant mode (the ``repro.serve`` contract): a fault plan
        #: carried by a submitted spec arms an injector scoped to *that
        #: job only* — its injection points fire solely during that job's
        #: launches — instead of lazily arming the campaign-global
        #: injector.  One tenant's chaos must not leak into another's.
        self.job_scoped_faults = job_scoped_faults
        self.obs = obs if obs is not None else Observability()
        self.tracer = self.obs.tracer
        self.metrics = self.obs.metrics
        pool.attach_obs(self.obs)
        #: Chaos hook: a FaultInjector (or a FaultPlan / spec string to arm
        #: one) shared by every injection point in the campaign — the
        #: scheduler's own dispatch loop and, via the pool, every device
        #: and RPC host.  ``None`` keeps the zero-cost NO_FAULTS default.
        self.faults = NO_FAULTS
        if faults is not None:
            self._arm_faults(
                faults
                if isinstance(faults, (FaultInjector, NullFaultInjector))
                else FaultInjector(faults)
            )
        #: Shared compile-once cache (see :mod:`repro.compilecache`):
        #: attached to every pool worker, so each distinct (program,
        #: config) compiles once for the whole pool; cached footprints
        #: pre-seed static packing without recompiling.
        self.cache = cache
        if cache is not None:
            cache.attach_metrics(self.metrics)
            pool.attach_cache(cache)
        self.stats = SchedulerStats(self.metrics)
        for label in pool.labels:
            self.stats.device(label)
        self._sleep = sleep
        self._queues: list[deque[_Chunk]] = [deque() for _ in pool.workers]
        #: per-(worker, job) bisection state: a size that OOMed on a device
        #: is never retried on that device.
        self._policies: dict[tuple[int, int], BisectionPolicy] = {}
        #: per-(worker, job) statically derived batch cap (None = dynamic).
        self._static_caps: dict[tuple[int, int], int | None] = {}
        #: Every submitted job, keyed by id; futures and tickets resolve
        #: through this registry (``release`` drops terminal entries).
        self._jobs: dict[int, Job] = {}
        self._next_job_id = 0
        self._rr = 0  # round-robin cursor for chunk placement

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    def _arm_faults(self, injector) -> None:
        injector.attach_obs(self.obs)
        self.faults = injector
        self.pool.attach_faults(injector)

    def _count(self, name: str, amount: float = 1.0, **labels) -> None:
        self.metrics.counter(f"sched.{name}", **labels).inc(amount)

    def _dev_count(
        self, label: str, name: str, amount: float = 1.0, **labels
    ) -> None:
        self.metrics.counter(
            f"sched.device.{name}", device=label, **labels
        ).inc(amount)

    def _event(self, name: str, **args) -> None:
        if self.tracer.enabled:
            self.tracer.instant(name, track=SCHED_TRACK, cat="sched", args=args)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        program: Any,
        spec: LaunchSpec,
        *,
        retries: int | None = None,
        step_budget: int | None = None,
        loader_opts: dict[str, Any] | None = None,
        tenant: str = "",
    ) -> JobFuture:
        """Queue a campaign; returns a future resolving to a
        :class:`~repro.sched.jobs.JobResult`.

        ``program`` is a DSL :class:`~repro.frontend.dsl.Program` or
        compiled :class:`~repro.ir.module.Module`; ``loader_opts`` are
        forwarded to each per-device
        :class:`~repro.host.ensemble_loader.EnsembleLoader` (heap size,
        mapping strategy, ``allow_races``...).  ``step_budget`` caps the
        job's *total* interpreter steps across all of its launches — the
        deadline mechanism of a simulator whose only clock is simulated.
        ``tenant`` stamps the job's :class:`JobTicket` with its
        fair-share identity (set by ``repro.serve``; optional locally).
        """
        if not isinstance(spec, LaunchSpec):
            raise SchedulerError(
                "Scheduler.submit takes a LaunchSpec; wrap the argument "
                "source in repro.host.LaunchSpec(...)"
            )
        instances = spec.resolve_instances()
        if not instances:
            raise SchedulerError("job needs at least one instance")
        plan = spec.resolve_fault_plan()
        injector = None
        if plan is not None:
            if self.job_scoped_faults:
                # Multi-tenant isolation: this plan fires only inside
                # this job's launches, whatever else the pool is running.
                injector = FaultInjector(plan)
                injector.attach_obs(self.obs)
            elif not self.faults.enabled:
                # Spec-carried chaos plan: armed lazily for the whole
                # campaign (a constructor injector wins over the spec).
                self._arm_faults(FaultInjector(plan))
        job = Job(
            job_id=self._next_job_id,
            program=program,
            spec=spec,
            instances=instances,
            retries=self.default_retries if retries is None else retries,
            step_budget=step_budget,
            loader_opts=dict(loader_opts or {}),
            tenant=tenant,
            injector=injector,
        )
        self._next_job_id += 1
        self._jobs[job.job_id] = job
        self._count("jobs.submitted")
        self._event(
            f"job {job.job_id} submitted",
            job=job.job_id,
            instances=len(instances),
        )
        for chunk in self._shard(job):
            self._queues[self._rr % len(self.pool)].append(chunk)
            self._rr += 1
        from repro import wire

        ticket = JobTicket(
            job_id=job.job_id,
            tenant=tenant,
            spec_hash=wire.spec_hash(spec.with_instances(instances).to_wire()),
        )
        return JobFuture(ticket, self)

    # ------------------------------------------------------------------
    # ticket plumbing
    # ------------------------------------------------------------------
    def _job_of(self, ticket_or_id) -> Job:
        job_id = getattr(ticket_or_id, "job_id", ticket_or_id)
        job = self._jobs.get(job_id)
        if job is None:
            raise SchedulerError(
                f"unknown job {job_id}: never submitted here, or already "
                "released"
            )
        return job

    def future_of(self, ticket: JobTicket) -> JobFuture:
        """Rehydrate a live :class:`JobFuture` from a serializable ticket.

        The inverse of ``future.ticket``: any process holding the
        scheduler can turn a ticket (which may have crossed a wire or a
        pickle) back into a drivable handle.  Unknown tickets raise
        :class:`~repro.errors.SchedulerError`.
        """
        job = self._job_of(ticket)
        ticket.state = job.state
        return JobFuture(ticket, self)

    def release(self, ticket_or_id) -> None:
        """Forget a terminal job's bookkeeping (results, bisection state).

        A long-running server completes millions of jobs against one
        scheduler; without release, every outcome would be retained
        forever.  Releasing a non-terminal job is an error.  Compiled
        loaders stay cached in the pool — they are keyed by program, not
        job, and reuse across submissions is the point of serving.
        """
        job = self._job_of(ticket_or_id)
        if not job.state.terminal:
            raise SchedulerError(
                f"job {job.job_id} is {job.state.value}; only terminal "
                "jobs can be released"
            )
        del self._jobs[job.job_id]
        for key in [k for k in self._policies if k[1] == job.job_id]:
            del self._policies[key]
        for key in [k for k in self._static_caps if k[1] == job.job_id]:
            del self._static_caps[key]

    def _shard(self, job: Job) -> list[_Chunk]:
        n = len(job.instances)
        size = self.chunk_size
        if size is None:
            # ~2 chunks per device: every device gets work, faster devices
            # (or luckier shards) pick up the surplus via stealing.
            size = -(-n // (2 * len(self.pool)))
        if self.max_batch is not None:
            size = min(size, self.max_batch)
        size = max(1, size)
        return [
            _Chunk(job, start, job.instances[start : start + size])
            for start in range(0, n, size)
        ]

    def run_campaign(self, program: Any, spec: LaunchSpec, **submit_kw) -> JobResult:
        """Submit one job and drive the pool until it resolves."""
        return self.submit(program, spec, **submit_kw).result()

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Run until every queued shard has been dispatched."""
        while self._step():
            pass

    def step(self) -> bool:
        """Dispatch exactly one shard; False when no work is queued.

        The incremental face of :meth:`drain`, for callers that own the
        outer loop — the ``repro.serve`` pump interleaves one step at a
        time with socket I/O so a long campaign cannot starve clients.
        """
        return self._step()

    @property
    def has_work(self) -> bool:
        """True while any shard is queued on any device."""
        return any(self._queues)

    def _drive(self, job: Job) -> None:
        """Advance the pool until ``job`` reaches a terminal state."""
        while not job.state.terminal:
            if not self._step():
                raise SchedulerError(
                    f"job {job.job_id} is {job.state.value} but the pool "
                    "has no runnable work"
                )

    def _step(self) -> bool:
        """Dispatch one chunk to the least-loaded device; False when idle."""
        if not any(self._queues):
            return False
        # Earliest-available device in simulated time runs next: this is
        # what "all devices execute concurrently" looks like when replayed
        # deterministically on one host.  Quarantined devices are out of
        # rotation (their queues were redistributed at quarantine time).
        worker = min(self.pool.healthy, key=lambda w: (w.busy_cycles, w.index))
        own = self._queues[worker.index]
        if own:
            chunk = own.popleft()
        else:
            victim = max(
                (q for q in self._queues if q),
                key=len,
            )
            chunk = victim.popleft()  # steal the oldest shard
            self._count("steals")
            self._dev_count(worker.label, "steals")
            self._event(
                f"steal by {worker.label}",
                job=chunk.job.job_id,
                first_instance=chunk.start,
                size=len(chunk.instances),
            )
        self._run_chunk(worker, chunk)
        return True

    # ------------------------------------------------------------------
    # running one chunk
    # ------------------------------------------------------------------
    def _run_chunk(self, worker: PoolWorker, chunk: _Chunk) -> None:
        job = chunk.job
        if job.state.terminal:  # stale shard of a failed/cancelled job
            return
        if job.state is JobState.PENDING:
            job.state = JobState.RUNNING
            self._event(f"job {job.job_id} running", job=job.job_id)

        remaining = job.steps_remaining
        if remaining is not None and remaining <= 0:
            self._fail_job(
                job,
                DeadlineExceeded(
                    f"job {job.job_id} exhausted its step budget of "
                    f"{job.step_budget} with {job.pending_instances} "
                    "instances outstanding",
                    job_id=job.job_id,
                ),
            )
            return

        try:
            loader = worker.loader_for(job)
            # The race gate is a property of the whole campaign: chunking
            # must not smuggle a racy program past it one instance at a
            # time.
            loader._check_ensemble_safety(job.total_instances)
        except ReproError as exc:
            self._fail_job(job, exc)
            return

        # per-device bisection: never re-try a size this device OOMed on
        key = (worker.index, job.job_id)
        policy = self._policies.get(key)
        if policy is None:
            policy = BisectionPolicy(max_batch=self.max_batch)
            static_cap = self._seed_static_cap(worker, job, loader, policy)
            self._policies[key] = policy
            self._static_caps[key] = static_cap
        static_cap = self._static_caps.get(key)
        if static_cap == 0:
            # Not even one instance fits the device heap: fail before the
            # first launch instead of discovering it through bisection.
            fp = loader.static_footprint
            self._fail_job(
                job,
                DeviceOutOfMemory(
                    requested=fp.heap_hi or 0,
                    free=loader.heap_bytes,
                    capacity=loader.heap_bytes,
                ),
            )
            return
        cap = policy.next_size(len(chunk.instances))
        if (
            static_cap is not None
            and policy.current is None
            and cap < len(chunk.instances)
        ):
            # The static bound (not OOM history — none yet) truncated the
            # chunk: one doomed launch + bisection round skipped.
            self.metrics.counter("analysis.packing.static_hits").inc()
        if len(chunk.instances) > cap:
            head = _Chunk(
                job,
                chunk.start,
                chunk.instances[:cap],
                chunk.attempt,
                chunk.attempt_inherited,
                chunk.pending_faults,
            )
            tail = _Chunk(
                job,
                chunk.start + cap,
                chunk.instances[cap:],
                chunk.attempt,
                chunk.attempt_inherited,
            )
            self._queues[worker.index].appendleft(tail)
            chunk = head

        max_steps = job.spec.max_steps
        clamped = remaining is not None and remaining < max_steps
        if clamped:
            max_steps = remaining
        spec = replace(job.spec, max_steps=max_steps)

        # Ambient fault context: device-level injection points (allocation,
        # RPC replies) fired during this launch can match job=/device=
        # selectors without threading the ids through every layer.  In
        # job-scoped mode the job's own injector (or NO_FAULTS) is armed
        # on the device for exactly this launch, so one tenant's plan
        # never observes another tenant's traffic.
        faults = job.injector if job.injector is not None else self.faults
        if self.job_scoped_faults:
            worker.device.faults = faults
        with faults.scoped(job=job.job_id, device=worker.label):
            if faults.enabled:
                fault = faults.fire(
                    "sched.dispatch",
                    instance_range=range(
                        chunk.start, chunk.start + len(chunk.instances)
                    ),
                )
                if fault is not None and self._dispatch_fault(
                    worker, chunk, fault
                ):
                    return
            try:
                if self.tracer.enabled:
                    with self.tracer.span(
                        f"dispatch j{job.job_id}"
                        f"[{chunk.start}+{len(chunk.instances)}]",
                        track=SCHED_TRACK,
                        cat="dispatch",
                        job=job.job_id,
                        device=worker.label,
                    ):
                        run, outcomes = launch_chunk(
                            loader, spec, chunk.instances, chunk.start
                        )
                else:
                    run, outcomes = launch_chunk(
                        loader, spec, chunk.instances, chunk.start
                    )
            except DeviceOutOfMemory as exc:
                self._count("oom_splits")
                self._dev_count(worker.label, "oom_splits")
                self._event(
                    f"oom split on {worker.label}",
                    job=job.job_id,
                    size=len(chunk.instances),
                )
                job.oom_splits += 1
                if len(chunk.instances) == 1:
                    if isinstance(exc, InjectedFault):
                        # Injected pressure never fails the campaign: the
                        # unsplittable instance is isolated instead.
                        self._isolate_chunk(worker, chunk, exc)
                        self._maybe_complete(job)
                        return
                    self._fail_job(job, exc)  # one instance does not fit
                    return
                policy.record_oom(len(chunk.instances))
                left, right = chunk.split()
                if isinstance(exc, InjectedFault):
                    left.pending_faults = chunk.pending_faults + [
                        exc.fault_kind
                    ]
                self._queues[worker.index].appendleft(right)
                self._queues[worker.index].appendleft(left)
                return
            except EnsembleSafetyError as exc:
                self._fail_job(job, exc)
                return
            except DeviceError as exc:
                if (
                    clamped
                    and isinstance(exc, DeviceTrap)
                    and "interpreter steps" in str(exc)
                ):
                    self._fail_job(
                        job,
                        DeadlineExceeded(
                            f"job {job.job_id} hit its step budget of "
                            f"{job.step_budget} mid-launch",
                            job_id=job.job_id,
                            cause=exc,
                        ),
                    )
                    return
                self._retry(worker, chunk, exc)
                return
            except ReproError as exc:
                self._fail_job(job, exc)  # loader misuse etc.: not transient
                return

        policy.record_success(len(chunk.instances))
        worker.fault_streak = 0
        for kind in chunk.pending_faults:
            self.metrics.counter("faults.recovered", kind=kind).inc()
            self._event(
                f"recovered {kind}",
                job=job.job_id,
                device=worker.label,
            )
        chunk.pending_faults = []
        if job.retries_used or job.oom_splits:
            # Backoff reset on success: queued siblings that inherited this
            # job's attempt counter from a split start over from attempt 0
            # — a later unrelated fault must not start half-exhausted.
            for queue in self._queues:
                for c in queue:
                    if c.job is job and c.attempt_inherited:
                        c.attempt = 0
                        c.attempt_inherited = False
        for outcome in outcomes:
            job.outcomes[outcome.index] = outcome
            if outcome.fault is not None:
                # Per-instance faults surfaced inside the launch (e.g. an
                # injected RPC timeout isolating one team).
                outcome.fault.job_id = job.job_id
                outcome.fault.device = worker.label
                job.fault_reports.append(outcome.fault)
        job.batches.append(
            BatchRecord(
                first_instance=chunk.start,
                size=len(chunk.instances),
                cycles=run.cycles,
            )
        )
        job.steps_used += run.launch.interpreter_steps
        backend = job.spec.backend
        if run.cycles is None:
            job.have_cycles = False
            elapsed = float(run.launch.interpreter_steps)
            self._dev_count(worker.label, "busy_steps", elapsed, backend=backend)
        else:
            job.cycles += run.cycles
            elapsed = run.cycles
            self._dev_count(worker.label, "busy_cycles", elapsed, backend=backend)
        # The dispatch heuristic stays clock-agnostic: whichever domain a
        # launch was timed in, the device that did it is "ahead".
        worker.busy_cycles += elapsed

        self._dev_count(worker.label, "batches", backend=backend)
        self._dev_count(
            worker.label, "instances", len(chunk.instances), backend=backend
        )
        self._dev_count(
            worker.label,
            "interpreter_steps",
            run.launch.interpreter_steps,
            backend=backend,
        )
        self._count("instances.completed", len(chunk.instances), backend=backend)
        self._maybe_complete(job)

    def _seed_static_cap(
        self, worker: PoolWorker, job: Job, loader, policy: BisectionPolicy
    ) -> int | None:
        """Seed a fresh bisection policy from the compiled module's
        :class:`~repro.analysis.footprint.StaticFootprint`.

        Returns the static per-device instance cap (``0`` = even one
        instance cannot fit), or ``None`` when packing is disabled or the
        footprint is unbounded — the classic dynamic-bisection path.
        """
        if not self.static_packing:
            return None
        try:
            preseeded = (
                getattr(loader, "_static_footprint", None) is not None
                or getattr(loader, "_cache_entry", None) is not None
            )
            fp = loader.static_footprint
        except ReproError:
            return None
        if preseeded:
            # The footprint came with the loader's compile-cache entry:
            # packing is seeded with zero recompute on this device.
            self.metrics.counter("analysis.packing.footprint_cached").inc()
        cap = fp.max_instances(loader.heap_bytes)
        if cap is None:
            self.metrics.counter("analysis.packing.static_misses").inc()
            self._event(
                f"static packing miss on {worker.label}",
                job=job.job_id,
                bounded=fp.bounded,
            )
            return None
        self.metrics.counter("analysis.packing.static_seeds").inc()
        self._event(
            f"static packing cap {cap} on {worker.label}",
            job=job.job_id,
            heap_hi=fp.heap_hi,
            cap=cap,
        )
        if cap > 0:
            policy.max_batch = (
                cap if policy.max_batch is None else min(policy.max_batch, cap)
            )
        return cap

    def _retry(self, worker: PoolWorker, chunk: _Chunk, exc: Exception) -> None:
        job = chunk.job
        chunk.attempt += 1
        job.retries_used += 1
        injected = isinstance(exc, InjectedFault)
        if injected:
            chunk.pending_faults.append(exc.fault_kind)
            worker.fault_streak += 1
            self._maybe_quarantine(worker)
        self._count("retries")
        self._dev_count(worker.label, "retries")
        self._event(
            f"retry on {worker.label}",
            job=job.job_id,
            attempt=chunk.attempt,
            error=type(exc).__name__,
        )
        if chunk.attempt > job.retries:
            if injected:
                # Graceful degradation: an injected fault that survives
                # every retry is isolated into FaultReports, never a
                # campaign-level crash.
                self._isolate_chunk(worker, chunk, exc)
                self._maybe_complete(job)
                return
            self._fail_job(
                job,
                RetriesExhausted(
                    f"job {job.job_id}: instances {chunk.start}.."
                    f"{chunk.start + len(chunk.instances) - 1} still faulting "
                    f"after {job.retries} retries: {exc}",
                    job_id=job.job_id,
                    cause=exc,
                ),
            )
            return
        if self.backoff_base > 0:
            self._sleep(self.backoff_base * (2 ** (chunk.attempt - 1)))
        target = worker.index
        if injected or worker.quarantined:
            # An injected fault marks the device as suspect: requeue to the
            # least-loaded *other* healthy device when the pool has one.
            # Real faults keep the historical same-device requeue.
            others = [w for w in self.pool.healthy if w is not worker]
            if others:
                target = min(
                    others, key=lambda w: (len(self._queues[w.index]), w.index)
                ).index
        self._queues[target].append(chunk)

    # ------------------------------------------------------------------
    # fault handling: dispatch-point kinds, quarantine, isolation
    # ------------------------------------------------------------------
    def _dispatch_fault(self, worker: PoolWorker, chunk: _Chunk, fault) -> bool:
        """React to a fired ``sched.dispatch`` fault; True = chunk consumed."""
        job = chunk.job
        if fault.kind == "worker_death":
            self._retry(
                worker,
                chunk,
                InjectedDeviceLoss(fault, device=worker.label, job=job.job_id),
            )
            return True
        if fault.kind == "deadline":
            # The job's deadline fires: everything still pending — queued
            # shards included — is isolated and the job completes degraded.
            self._purge(job)
            pending = [
                i for i in range(job.total_instances) if i not in job.outcomes
            ]
            self._isolate_indices(
                job,
                pending,
                kind=fault.kind,
                point=fault.point,
                message=f"injected deadline fired for job {job.job_id}",
                device=worker.label,
            )
            self._maybe_complete(job)
            return True
        if fault.kind == "poison":
            sel = fault.selector("instance")
            if sel is None or sel == "*":
                idxs = list(
                    range(chunk.start, chunk.start + len(chunk.instances))
                )
                rest: list[_Chunk] = []
            else:
                # Isolate exactly the poisoned instance; the rest of the
                # shard goes back to the queue untouched.
                target = int(sel)
                idxs = [target]
                rel = target - chunk.start
                rest = []
                if chunk.instances[rel + 1 :]:
                    rest.append(
                        _Chunk(
                            job,
                            target + 1,
                            chunk.instances[rel + 1 :],
                            chunk.attempt,
                            chunk.attempt_inherited,
                        )
                    )
                if chunk.instances[:rel]:
                    rest.append(
                        _Chunk(
                            job,
                            chunk.start,
                            chunk.instances[:rel],
                            chunk.attempt,
                            chunk.attempt_inherited,
                        )
                    )
            for leftover in rest:
                self._queues[worker.index].appendleft(leftover)
            self._isolate_indices(
                job,
                idxs,
                kind=fault.kind,
                point=fault.point,
                message=f"instances {idxs} poisoned",
                device=worker.label,
            )
            self._maybe_complete(job)
            return True
        return False

    def _maybe_quarantine(self, worker: PoolWorker) -> None:
        """Quarantine a device whose injected-fault streak hit the
        threshold, redistributing its queue — unless it is the last
        healthy device, which must keep limping along."""
        if worker.quarantined or worker.fault_streak < self.quarantine_threshold:
            return
        others = [w for w in self.pool.healthy if w is not worker]
        if not others:
            return
        worker.quarantined = True
        self._count("quarantines")
        self._dev_count(worker.label, "quarantines")
        self._event(
            f"quarantine {worker.label}",
            device=worker.label,
            streak=worker.fault_streak,
        )
        queue = self._queues[worker.index]
        while queue:
            chunk = queue.popleft()
            target = min(
                others, key=lambda w: (len(self._queues[w.index]), w.index)
            )
            self._queues[target.index].append(chunk)

    def _isolate_chunk(self, worker: PoolWorker, chunk: _Chunk, exc) -> None:
        job = chunk.job
        idxs = list(range(chunk.start, chunk.start + len(chunk.instances)))
        report = exc.to_report(
            job_id=job.job_id,
            device=worker.label,
            instances=idxs,
            attempts=chunk.attempt,
        )
        self._apply_isolation(job, idxs, report)

    def _isolate_indices(
        self,
        job: Job,
        idxs: list[int],
        *,
        kind: str,
        point: str,
        message: str,
        device: str | None = None,
    ) -> None:
        report = FaultReport(
            kind=kind,
            point=point,
            message=message,
            job_id=job.job_id,
            device=device,
            instances=list(idxs),
        )
        self._apply_isolation(job, idxs, report)

    def _apply_isolation(
        self, job: Job, idxs: list[int], report: FaultReport
    ) -> None:
        """The degradation contract: the affected instances get synthetic
        ``FAULT_EXIT`` outcomes plus the report; the job carries on."""
        if not idxs:
            return
        job.fault_reports.append(report)
        for idx in idxs:
            job.outcomes[idx] = InstanceOutcome(
                index=idx,
                args=job.instances[idx],
                exit_code=FAULT_EXIT,
                slot=-1,
                stdout="",
                fault=report,
            )
        self.metrics.counter("faults.isolated", kind=report.kind).inc(len(idxs))
        self._event(
            f"isolate {report.kind}",
            job=job.job_id,
            kind=report.kind,
            instances=len(idxs),
        )

    def _maybe_complete(self, job: Job) -> None:
        if job.state.terminal or job.pending_instances:
            return
        job.state = JobState.COMPLETED
        self._count("jobs.completed")
        self._event(
            f"job {job.job_id} completed",
            job=job.job_id,
            degraded=bool(job.fault_reports),
        )

    # ------------------------------------------------------------------
    # job termination
    # ------------------------------------------------------------------
    def _purge(self, job: Job) -> None:
        for queue in self._queues:
            stale = [c for c in queue if c.job is job]
            for c in stale:
                queue.remove(c)

    def _fail_job(self, job: Job, error: BaseException) -> None:
        self._purge(job)
        job.state = JobState.FAILED
        job.error = error
        self._count("jobs.failed")
        self._event(
            f"job {job.job_id} failed",
            job=job.job_id,
            error=type(error).__name__,
        )

    def _cancel(self, job: Job) -> bool:
        if job.state is not JobState.PENDING:
            return False
        self._purge(job)
        job.state = JobState.CANCELLED
        job.error = JobFailed(
            f"job {job.job_id} cancelled before any shard ran",
            job_id=job.job_id,
        )
        self._count("jobs.cancelled")
        self._event(f"job {job.job_id} cancelled", job=job.job_id)
        return True


__all__ = ["Scheduler"]
