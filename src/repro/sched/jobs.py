"""Jobs, futures, and job results for the ensemble scheduler.

A *job* is one campaign: an application (DSL program or compiled module),
a :class:`~repro.host.launch.LaunchSpec` describing the workload and its
limits, a transient-fault retry bound, and an optional deadline expressed
as an interpreter-step budget.  Submitting a job yields a
:class:`JobFuture`; the scheduler shards the job across the device pool
and resolves the future with a :class:`JobResult` (or the terminal error).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SchedulerError
from repro.faults.report import FaultReport
from repro.host.batch import BatchRecord
from repro.host.ensemble_loader import InstanceOutcome
from repro.host.launch import LaunchSpec
from repro.host.results import OutcomeMixin

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.scheduler import Scheduler


class JobState(enum.Enum):
    """Lifecycle of a submitted job: PENDING -> RUNNING -> terminal."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


@dataclass
class JobResult(OutcomeMixin):
    """Aggregated outcome of one scheduled job.

    Implements the :class:`~repro.host.results.EnsembleOutcome` protocol;
    ``instances`` is ordered by global instance index regardless of which
    device ran which shard.
    """

    job_id: int
    instances: list[InstanceOutcome]
    batches: list[BatchRecord] = field(default_factory=list)
    total_cycles: float | None = None
    retries: int = 0
    oom_splits: int = 0
    steps_used: int = 0
    #: One report per injected fault that could not be recovered and was
    #: isolated into this job's instances (``exit_code == FAULT_EXIT``);
    #: a degraded-but-completed job carries them instead of an error.
    fault_reports: list[FaultReport] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any instance was fault-isolated."""
        return bool(self.fault_reports)

    # -- wire shape (docs/serve.md) -----------------------------------------
    def to_wire(self) -> dict:
        """Versioned wire document (see :mod:`repro.wire`)."""
        from repro import wire

        data = wire.envelope("JobResult")
        data.update(
            job_id=self.job_id,
            instances=[o.to_wire() for o in self.instances],
            batches=[b.to_wire() for b in self.batches],
            total_cycles=self.total_cycles,
            retries=self.retries,
            oom_splits=self.oom_splits,
            steps_used=self.steps_used,
            fault_reports=[r.to_wire() for r in self.fault_reports],
        )
        return data

    @classmethod
    def from_wire(cls, data) -> "JobResult":
        from repro import wire

        wire.check_envelope(data, "JobResult")
        kind = "JobResult"
        cycles = wire.get_field(
            data, "total_cycles", (int, float), None, kind=kind
        )
        return cls(
            job_id=wire.get_field(data, "job_id", int, kind=kind),
            instances=[
                InstanceOutcome.from_wire(o)
                for o in wire.get_field(data, "instances", list, kind=kind)
            ],
            batches=[
                BatchRecord.from_wire(b)
                for b in wire.get_field(data, "batches", list, [], kind=kind)
            ],
            total_cycles=None if cycles is None else float(cycles),
            retries=wire.get_field(data, "retries", int, 0, kind=kind),
            oom_splits=wire.get_field(data, "oom_splits", int, 0, kind=kind),
            steps_used=wire.get_field(data, "steps_used", int, 0, kind=kind),
            fault_reports=[
                FaultReport.from_wire(r)
                for r in wire.get_field(
                    data, "fault_reports", list, [], kind=kind
                )
            ],
        )


@dataclass
class JobTicket:
    """Pure-data identity of a submitted job.

    Historically :class:`JobFuture` was the only handle to a job — and it
    holds the live scheduler, so it could never be pickled, JSON-encoded,
    or handed to another process.  The ticket is the serializable half of
    that split: ids and provenance only, no live references.  It is what
    crosses the ``repro.serve`` wire, and
    :meth:`~repro.sched.scheduler.Scheduler.future_of` turns it back into
    a live handle on the owning scheduler.

    ``state`` is a snapshot as of the last refresh, not a live view.
    """

    job_id: int
    tenant: str = ""
    #: Content hash of the submitted spec's wire form
    #: (:func:`repro.wire.spec_hash`): two tickets with equal hashes
    #: describe the same resolved workload under the same limits.
    spec_hash: str = ""
    state: JobState = JobState.PENDING

    # -- wire shape (docs/serve.md) -----------------------------------------
    def to_wire(self) -> dict:
        """Versioned wire document (see :mod:`repro.wire`)."""
        from repro import wire

        data = wire.envelope("JobTicket")
        data.update(
            job_id=self.job_id,
            tenant=self.tenant,
            spec_hash=self.spec_hash,
            state=self.state.value,
        )
        return data

    @classmethod
    def from_wire(cls, data) -> "JobTicket":
        from repro import wire

        wire.check_envelope(data, "JobTicket")
        kind = "JobTicket"
        raw_state = wire.get_field(
            data, "state", str, JobState.PENDING.value, kind=kind
        )
        try:
            state = JobState(raw_state)
        except ValueError:
            raise wire.WireError(
                f"{kind}: unknown state {raw_state!r}"
            ) from None
        return cls(
            job_id=wire.get_field(data, "job_id", int, kind=kind),
            tenant=wire.get_field(data, "tenant", str, "", kind=kind),
            spec_hash=wire.get_field(data, "spec_hash", str, "", kind=kind),
            state=state,
        )


@dataclass
class Job:
    """Scheduler-internal bookkeeping for one submitted campaign."""

    job_id: int
    program: Any
    spec: LaunchSpec
    instances: list[list[str]]
    retries: int
    step_budget: int | None
    loader_opts: dict[str, Any] = field(default_factory=dict)
    #: Owning tenant (the fair-share identity under ``repro.serve``; the
    #: empty string for direct library submissions).
    tenant: str = ""
    #: Job-scoped fault injector: set by a scheduler constructed with
    #: ``job_scoped_faults=True`` when the spec carries a plan, so one
    #: tenant's chaos cannot leak into another tenant's campaign.
    injector: Any = None

    state: JobState = JobState.PENDING
    error: BaseException | None = None
    outcomes: dict[int, InstanceOutcome] = field(default_factory=dict)
    batches: list[BatchRecord] = field(default_factory=list)
    cycles: float = 0.0
    have_cycles: bool = True
    steps_used: int = 0
    retries_used: int = 0
    oom_splits: int = 0
    fault_reports: list[FaultReport] = field(default_factory=list)

    @property
    def total_instances(self) -> int:
        return len(self.instances)

    @property
    def pending_instances(self) -> int:
        return len(self.instances) - len(self.outcomes)

    @property
    def steps_remaining(self) -> int | None:
        if self.step_budget is None:
            return None
        return self.step_budget - self.steps_used

    def to_result(self) -> JobResult:
        return JobResult(
            job_id=self.job_id,
            instances=[self.outcomes[i] for i in sorted(self.outcomes)],
            batches=list(self.batches),
            total_cycles=self.cycles if self.have_cycles else None,
            retries=self.retries_used,
            oom_splits=self.oom_splits,
            steps_used=self.steps_used,
            fault_reports=list(self.fault_reports),
        )


class JobFuture:
    """Live handle to a submitted job.

    The scheduler advances in deterministic simulated time, so
    :meth:`result` *drives* the scheduler until this job resolves rather
    than blocking on a thread — callers get future semantics with
    reproducible execution order.

    A future is a thin pair: a serializable :class:`JobTicket` (exposed
    as :attr:`ticket`) plus the owning scheduler.  All result plumbing
    routes through the ticket's ``job_id`` — the future itself holds no
    job state, so dropping it loses nothing:
    ``scheduler.future_of(ticket)`` reconstructs an equivalent handle.
    """

    def __init__(self, ticket: JobTicket, scheduler: "Scheduler"):
        self.ticket = ticket
        self._scheduler = scheduler

    def _job(self) -> Job:
        return self._scheduler._job_of(self.ticket)

    @property
    def job_id(self) -> int:
        return self.ticket.job_id

    @property
    def state(self) -> JobState:
        state = self._job().state
        self.ticket.state = state  # the ticket snapshot tracks reads
        return state

    def done(self) -> bool:
        return self.state.terminal

    def cancel(self) -> bool:
        """Drop the job if no shard of it has run yet."""
        cancelled = self._scheduler._cancel(self._job())
        self.ticket.state = self._job().state
        return cancelled

    def exception(self) -> BaseException | None:
        """Drive the scheduler until this job resolves; return its error."""
        job = self._job()
        self._scheduler._drive(job)
        self.ticket.state = job.state
        return job.error

    def result(self) -> JobResult:
        """Drive the scheduler until this job resolves; return or raise."""
        job = self._job()
        self._scheduler._drive(job)
        self.ticket.state = job.state
        if job.state is JobState.COMPLETED:
            return job.to_result()
        if job.error is not None:
            raise job.error
        raise SchedulerError(
            f"job {job.job_id} ended in state {job.state.value} "
            "without a result"
        )


__all__ = ["Job", "JobFuture", "JobResult", "JobState", "JobTicket"]
