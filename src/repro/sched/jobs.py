"""Jobs, futures, and job results for the ensemble scheduler.

A *job* is one campaign: an application (DSL program or compiled module),
a :class:`~repro.host.launch.LaunchSpec` describing the workload and its
limits, a transient-fault retry bound, and an optional deadline expressed
as an interpreter-step budget.  Submitting a job yields a
:class:`JobFuture`; the scheduler shards the job across the device pool
and resolves the future with a :class:`JobResult` (or the terminal error).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SchedulerError
from repro.faults.report import FaultReport
from repro.host.batch import BatchRecord
from repro.host.ensemble_loader import InstanceOutcome
from repro.host.launch import LaunchSpec
from repro.host.results import OutcomeMixin

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.scheduler import Scheduler


class JobState(enum.Enum):
    """Lifecycle of a submitted job: PENDING -> RUNNING -> terminal."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


@dataclass
class JobResult(OutcomeMixin):
    """Aggregated outcome of one scheduled job.

    Implements the :class:`~repro.host.results.EnsembleOutcome` protocol;
    ``instances`` is ordered by global instance index regardless of which
    device ran which shard.
    """

    job_id: int
    instances: list[InstanceOutcome]
    batches: list[BatchRecord] = field(default_factory=list)
    total_cycles: float | None = None
    retries: int = 0
    oom_splits: int = 0
    steps_used: int = 0
    #: One report per injected fault that could not be recovered and was
    #: isolated into this job's instances (``exit_code == FAULT_EXIT``);
    #: a degraded-but-completed job carries them instead of an error.
    fault_reports: list[FaultReport] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any instance was fault-isolated."""
        return bool(self.fault_reports)


@dataclass
class Job:
    """Scheduler-internal bookkeeping for one submitted campaign."""

    job_id: int
    program: Any
    spec: LaunchSpec
    instances: list[list[str]]
    retries: int
    step_budget: int | None
    loader_opts: dict[str, Any] = field(default_factory=dict)

    state: JobState = JobState.PENDING
    error: BaseException | None = None
    outcomes: dict[int, InstanceOutcome] = field(default_factory=dict)
    batches: list[BatchRecord] = field(default_factory=list)
    cycles: float = 0.0
    have_cycles: bool = True
    steps_used: int = 0
    retries_used: int = 0
    oom_splits: int = 0
    fault_reports: list[FaultReport] = field(default_factory=list)

    @property
    def total_instances(self) -> int:
        return len(self.instances)

    @property
    def pending_instances(self) -> int:
        return len(self.instances) - len(self.outcomes)

    @property
    def steps_remaining(self) -> int | None:
        if self.step_budget is None:
            return None
        return self.step_budget - self.steps_used

    def to_result(self) -> JobResult:
        return JobResult(
            job_id=self.job_id,
            instances=[self.outcomes[i] for i in sorted(self.outcomes)],
            batches=list(self.batches),
            total_cycles=self.cycles if self.have_cycles else None,
            retries=self.retries_used,
            oom_splits=self.oom_splits,
            steps_used=self.steps_used,
            fault_reports=list(self.fault_reports),
        )


class JobFuture:
    """Handle to a submitted job.

    The scheduler advances in deterministic simulated time, so
    :meth:`result` *drives* the scheduler until this job resolves rather
    than blocking on a thread — callers get future semantics with
    reproducible execution order.
    """

    def __init__(self, job: Job, scheduler: "Scheduler"):
        self._job = job
        self._scheduler = scheduler

    @property
    def job_id(self) -> int:
        return self._job.job_id

    @property
    def state(self) -> JobState:
        return self._job.state

    def done(self) -> bool:
        return self._job.state.terminal

    def cancel(self) -> bool:
        """Drop the job if no shard of it has run yet."""
        return self._scheduler._cancel(self._job)

    def exception(self) -> BaseException | None:
        """Drive the scheduler until this job resolves; return its error."""
        self._scheduler._drive(self._job)
        return self._job.error

    def result(self) -> JobResult:
        """Drive the scheduler until this job resolves; return or raise."""
        self._scheduler._drive(self._job)
        if self._job.state is JobState.COMPLETED:
            return self._job.to_result()
        if self._job.error is not None:
            raise self._job.error
        raise SchedulerError(
            f"job {self._job.job_id} ended in state {self._job.state.value} "
            "without a result"
        )


__all__ = ["Job", "JobFuture", "JobResult", "JobState"]
