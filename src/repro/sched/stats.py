"""Scheduler stats as a *view* over the observability metrics registry.

Everything the scheduler does is published into a
:class:`~repro.obs.metrics.MetricsRegistry` (``sched.jobs.*`` counters,
``sched.device.*`` per-device counters).  :class:`SchedulerStats` and
:class:`DeviceStats` are read surfaces over that registry: the attribute
API of the original counter structs keeps working, but there is exactly
one place each number lives, so the CLI, the report facade, and a
``--metrics-out`` dump can never disagree.

The attributes are read-only views since v2.0: publishers increment
registry counters, and direct assignment (``stats.retries += 1``) raises
:class:`AttributeError`.  Counters may carry extra labels beyond the ones
a view filters on — notably ``backend=interp|compiled`` on every
work-accounting series — and each view *aggregates across label sets*, so
totals are stable whether a campaign ran one backend or mixed them;
:meth:`DeviceStats.by_backend` / :meth:`SchedulerStats.by_backend` break
one metric down per backend.

Clock domains: a device that ran timed launches accumulates
``busy_cycles`` (simulated cycles); launches with ``collect_timing=False``
accumulate ``busy_steps`` (interpreter steps).  The two clocks are not
commensurable, so when a campaign mixes them — across devices, or on one
device — :meth:`SchedulerStats.utilization` reports per-unit utilization
within each clock domain instead of blending incomparable numbers into
one makespan (the historical behavior silently summed steps into the
cycle clock).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

#: Clock-domain labels a device's busy time can be expressed in.
CLOCK_IDLE = "idle"
CLOCK_CYCLES = "cycles"
CLOCK_STEPS = "steps"
CLOCK_MIXED = "mixed"


def _rejected_set(name: str):
    return AttributeError(
        f"{name} is a read-only view since v2.0; scheduler stats are a "
        "view over the MetricsRegistry — increment the registry counter "
        "instead"
    )


class _CounterProperty:
    """A read-only attribute aggregating a registry counter across every
    label set it was published under (e.g. per ``backend=``)."""

    def __init__(self, metric: str):
        self.metric = metric

    def __set_name__(self, owner, name):
        self.name = f"{owner.__name__}.{name}"

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._cast(obj._sum(self.metric))

    def __set__(self, obj, value):
        raise _rejected_set(self.name)


class DeviceStats:
    """Work accounted to one device: a per-label view over the registry.

    ``busy_cycles`` accumulates simulated cycles from the timing model;
    launches run with ``collect_timing=False`` accumulate interpreter
    steps into ``busy_steps`` instead (a separate clock domain — see
    module docstring).  ``interpreter_steps`` counts steps of *every*
    launch, timed or not.
    """

    _cast = staticmethod(int)

    batches = _CounterProperty("batches")
    instances = _CounterProperty("instances")
    retries = _CounterProperty("retries")
    oom_splits = _CounterProperty("oom_splits")
    steals = _CounterProperty("steals")
    quarantines = _CounterProperty("quarantines")
    interpreter_steps = _CounterProperty("interpreter_steps")

    def __init__(self, label: str, registry: MetricsRegistry | None = None):
        self.label = label
        self.registry = registry if registry is not None else MetricsRegistry()

    def _sum(self, name: str) -> float:
        """Aggregate ``sched.device.<name>`` across all label sets that
        belong to this device (a counter may additionally be labelled by
        ``backend=``; the per-device total spans every backend)."""
        key = ("device", self.label)
        return sum(
            c.value
            for c in self.registry.series(f"sched.device.{name}")
            if key in c.labels
        )

    def by_backend(self, name: str) -> dict[str, float]:
        """Per-backend breakdown of one ``sched.device.*`` metric for this
        device; counters published without a backend label aggregate under
        ``""``."""
        key = ("device", self.label)
        out: dict[str, float] = {}
        for c in self.registry.series(f"sched.device.{name}"):
            if key not in c.labels:
                continue
            backend = dict(c.labels).get("backend", "")
            out[backend] = out.get(backend, 0.0) + c.value
        return out

    @property
    def busy_cycles(self) -> float:
        """Simulated cycles of timed work this device ran."""
        return self._sum("busy_cycles")

    @property
    def busy_steps(self) -> float:
        """Interpreter steps of untimed work (``collect_timing=False``)."""
        return self._sum("busy_steps")

    @property
    def clock(self) -> str:
        """Which clock domain(s) this device's busy time lives in."""
        cycles, steps = self.busy_cycles > 0, self.busy_steps > 0
        if cycles and steps:
            return CLOCK_MIXED
        if cycles:
            return CLOCK_CYCLES
        if steps:
            return CLOCK_STEPS
        return CLOCK_IDLE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DeviceStats {self.label!r} batches={self.batches} "
            f"instances={self.instances} clock={self.clock}>"
        )


class SchedulerStats:
    """Scheduler-wide counters plus the per-device breakdown.

    A view over a :class:`~repro.obs.metrics.MetricsRegistry`; pass the
    registry of an :class:`~repro.obs.Observability` bundle to share one
    substrate with the rest of the stack, or construct bare for a
    private one.
    """

    _cast = staticmethod(int)

    jobs_submitted = _CounterProperty("jobs.submitted")
    jobs_completed = _CounterProperty("jobs.completed")
    jobs_failed = _CounterProperty("jobs.failed")
    jobs_cancelled = _CounterProperty("jobs.cancelled")
    instances_completed = _CounterProperty("instances.completed")
    retries = _CounterProperty("retries")
    oom_splits = _CounterProperty("oom_splits")
    steals = _CounterProperty("steals")
    quarantines = _CounterProperty("quarantines")

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.per_device: dict[str, DeviceStats] = {}

    def _sum(self, name: str) -> float:
        """Aggregate ``sched.<name>`` across every label set (counters may
        carry a ``backend=`` label; the campaign total spans them all)."""
        return sum(c.value for c in self.registry.series(f"sched.{name}"))

    def by_backend(self, name: str) -> dict[str, float]:
        """Per-backend breakdown of one ``sched.*`` metric; counters
        published without a backend label aggregate under ``""``."""
        out: dict[str, float] = {}
        for c in self.registry.series(f"sched.{name}"):
            backend = dict(c.labels).get("backend", "")
            out[backend] = out.get(backend, 0.0) + c.value
        return out

    def device(self, label: str) -> DeviceStats:
        """Get-or-create the per-device view for ``label``."""
        if label not in self.per_device:
            self.per_device[label] = DeviceStats(label, self.registry)
        return self.per_device[label]

    # ------------------------------------------------------------------
    # fault-injection views (registry-wide faults.* series, which carry
    # kind/point labels and are published by repro.faults, not sched.*)
    # ------------------------------------------------------------------
    def _faults_total(self, name: str) -> int:
        return int(sum(c.value for c in self.registry.series(name)))

    @property
    def faults_injected(self) -> int:
        """Total faults fired by the campaign's injector, all kinds."""
        return self._faults_total("faults.injected")

    @property
    def faults_recovered(self) -> int:
        """Injected faults that retry/redistribution recovered from."""
        return self._faults_total("faults.recovered")

    @property
    def faults_isolated(self) -> int:
        """Instances fault-isolated (``FAULT_EXIT``) instead of recovered."""
        return self._faults_total("faults.isolated")

    # ------------------------------------------------------------------
    # derived time/utilization views
    # ------------------------------------------------------------------
    @property
    def makespan_cycles(self) -> float:
        """Campaign wall time in simulated cycles: devices run concurrently,
        so the makespan is the busiest device's clock, not the sum."""
        return max((d.busy_cycles for d in self.per_device.values()), default=0.0)

    @property
    def makespan_steps(self) -> float:
        """Makespan of the step-clocked (untimed) work, in interpreter steps."""
        return max((d.busy_steps for d in self.per_device.values()), default=0.0)

    @property
    def total_busy_cycles(self) -> float:
        return sum(d.busy_cycles for d in self.per_device.values())

    @property
    def mixed_clocks(self) -> bool:
        """True when busy time exists in both clock domains — across
        devices or within one — making a single blended makespan
        meaningless."""
        return self.makespan_cycles > 0 and self.makespan_steps > 0

    def utilization(self) -> dict[str, float]:
        """Fraction of the makespan each device spent busy (1.0 = the
        critical-path device; idle devices score 0.0).

        With mixed clock domains each device is scored *within its own
        domain* (per-unit utilization): its busy time over that domain's
        makespan, taking the larger fraction for a device active in both.
        Cycle and step times are never added together.
        """
        span_cycles = self.makespan_cycles
        span_steps = self.makespan_steps
        out: dict[str, float] = {}
        for label, dev in self.per_device.items():
            frac_c = dev.busy_cycles / span_cycles if span_cycles > 0 else 0.0
            frac_s = dev.busy_steps / span_steps if span_steps > 0 else 0.0
            out[label] = max(frac_c, frac_s)
        return out

    def summary(self) -> dict:
        """JSON-friendly snapshot for reports and the CLI."""
        util = self.utilization()
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "instances_completed": self.instances_completed,
            "retries": self.retries,
            "oom_splits": self.oom_splits,
            "steals": self.steals,
            "quarantines": self.quarantines,
            "faults_injected": self.faults_injected,
            "faults_recovered": self.faults_recovered,
            "faults_isolated": self.faults_isolated,
            "makespan_cycles": self.makespan_cycles,
            "makespan_steps": self.makespan_steps,
            "mixed_clocks": self.mixed_clocks,
            "devices": {
                label: {
                    "batches": d.batches,
                    "instances": d.instances,
                    "retries": d.retries,
                    "oom_splits": d.oom_splits,
                    "steals": d.steals,
                    "quarantines": d.quarantines,
                    "busy_cycles": d.busy_cycles,
                    "busy_steps": d.busy_steps,
                    "clock": d.clock,
                    "utilization": util[label],
                }
                for label, d in self.per_device.items()
            },
        }


__all__ = ["DeviceStats", "SchedulerStats"]
