"""Counter surface for the multi-device scheduler.

Everything the scheduler does is observable here: how many jobs and
instances finished, how often the OOM bisection had to split, how many
transient-fault retries were spent, how much work each device did, and —
because devices advance independent simulated clocks — per-device
utilization over the campaign makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeviceStats:
    """Work accounted to one device (one :class:`~repro.sched.pool.PoolWorker`).

    ``busy_cycles`` accumulates simulated cycles from the timing model;
    launches run with ``collect_timing=False`` fall back to interpreter
    steps as the clock proxy (coarser, but keeps utilization meaningful).
    """

    label: str
    batches: int = 0
    instances: int = 0
    retries: int = 0
    oom_splits: int = 0
    steals: int = 0
    busy_cycles: float = 0.0
    interpreter_steps: int = 0


@dataclass
class SchedulerStats:
    """Scheduler-wide counters plus the per-device breakdown."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    instances_completed: int = 0
    retries: int = 0
    oom_splits: int = 0
    steals: int = 0
    per_device: dict[str, DeviceStats] = field(default_factory=dict)

    def device(self, label: str) -> DeviceStats:
        if label not in self.per_device:
            self.per_device[label] = DeviceStats(label=label)
        return self.per_device[label]

    @property
    def makespan_cycles(self) -> float:
        """Campaign wall time in simulated cycles: devices run concurrently,
        so the makespan is the busiest device's clock, not the sum."""
        return max((d.busy_cycles for d in self.per_device.values()), default=0.0)

    @property
    def total_busy_cycles(self) -> float:
        return sum(d.busy_cycles for d in self.per_device.values())

    def utilization(self) -> dict[str, float]:
        """Fraction of the makespan each device spent busy (1.0 = the
        critical-path device; idle devices score 0.0)."""
        span = self.makespan_cycles
        if span <= 0:
            return {label: 0.0 for label in self.per_device}
        return {
            label: dev.busy_cycles / span for label, dev in self.per_device.items()
        }

    def summary(self) -> dict:
        """JSON-friendly snapshot for reports and the CLI."""
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "instances_completed": self.instances_completed,
            "retries": self.retries,
            "oom_splits": self.oom_splits,
            "steals": self.steals,
            "makespan_cycles": self.makespan_cycles,
            "devices": {
                label: {
                    "batches": d.batches,
                    "instances": d.instances,
                    "retries": d.retries,
                    "oom_splits": d.oom_splits,
                    "steals": d.steals,
                    "busy_cycles": d.busy_cycles,
                    "utilization": u,
                }
                for (label, d), u in zip(
                    self.per_device.items(), self.utilization().values()
                )
            },
        }


__all__ = ["DeviceStats", "SchedulerStats"]
