"""Versioned wire formats: the serialization layer behind ``repro.serve``.

A campaign that crosses a process boundary — a remote submission, a
streamed result, a ticket reclaimed after a reconnect — is described by
*wire documents*: plain JSON objects with two mandatory envelope fields::

    {"kind": "LaunchSpec", "schema_version": 1, ...}

The value types that travel (``LaunchSpec``, ``FaultPlan``,
``FaultReport``, ``InstanceOutcome``, ``BatchRecord``, ``JobResult``,
``JobTicket``, ``Submission``) each carry ``to_wire()`` /
``from_wire()`` built on the helpers here.  The compatibility policy:

* **Readers tolerate unknown fields.**  A newer peer may add fields
  within the same ``schema_version``; readers consume the keys they know
  and ignore the rest, so rolling upgrades do not require lockstep.
* **Readers reject newer schema versions.**  A document whose
  ``schema_version`` exceeds :data:`WIRE_SCHEMA_VERSION` fails with the
  stable error code :data:`E_VERSION` — unknown *fields* are tolerable,
  unknown *semantics* are not.
* **Errors carry stable codes.**  Every failure mode a client can
  program against is named by a code from :data:`ERROR_CODES`; messages
  are for humans and may change, codes may not.

``python -m repro.serve.check`` validates a committed corpus of wire
documents against these rules; see docs/serve.md for the full protocol.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.host.results import OutcomeMixin

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.report import FaultReport
    from repro.host.ensemble_loader import InstanceOutcome

#: Version stamped on every document this process writes.  Bump only on
#: an incompatible change (renamed/retyped field, changed semantics);
#: additive fields ride on the same version.
WIRE_SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# stable error codes
# ---------------------------------------------------------------------------
#: Document malformed: not an object, bad envelope, missing or mistyped field.
E_SCHEMA = "E_SCHEMA"
#: ``schema_version`` newer than this process understands.
E_VERSION = "E_VERSION"
#: Request is well-formed JSON but semantically invalid for the op.
E_BAD_REQUEST = "E_BAD_REQUEST"
#: Request names an op the server does not implement.
E_UNKNOWN_OP = "E_UNKNOWN_OP"
#: Submission names an application not in the server's registry.
E_UNKNOWN_APP = "E_UNKNOWN_APP"
#: Request names a job id the server has no record of.
E_UNKNOWN_JOB = "E_UNKNOWN_JOB"
#: Admission control refused the submission (queue limits reached).
E_ADMISSION = "E_ADMISSION"
#: The server is draining and accepts no new submissions.
E_DRAINING = "E_DRAINING"
#: The job reached a terminal error (the message carries the cause).
E_JOB_FAILED = "E_JOB_FAILED"
#: Anything else; a bug if a client ever programs against it.
E_INTERNAL = "E_INTERNAL"

#: Every stable code, in one place for docs and the corpus checker.
ERROR_CODES = frozenset(
    {
        E_SCHEMA,
        E_VERSION,
        E_BAD_REQUEST,
        E_UNKNOWN_OP,
        E_UNKNOWN_APP,
        E_UNKNOWN_JOB,
        E_ADMISSION,
        E_DRAINING,
        E_JOB_FAILED,
        E_INTERNAL,
    }
)


class WireError(ReproError):
    """A wire document or protocol message was rejected.

    ``code`` is one of :data:`ERROR_CODES` — the stable, programmable
    identity of the failure; the message is advisory.
    """

    def __init__(self, message: str, *, code: str = E_SCHEMA):
        assert code in ERROR_CODES, code
        self.code = code
        super().__init__(message)


# ---------------------------------------------------------------------------
# envelope helpers
# ---------------------------------------------------------------------------
#: Sentinel for required fields in :func:`get_field`.
_REQUIRED = object()


def envelope(kind: str) -> dict:
    """A fresh wire document of ``kind`` with the version stamped."""
    return {"kind": kind, "schema_version": WIRE_SCHEMA_VERSION}


def check_envelope(data: Any, kind: str) -> dict:
    """Validate the two envelope fields; returns ``data`` for chaining."""
    if not isinstance(data, dict):
        raise WireError(
            f"{kind} wire document must be a JSON object, "
            f"got {type(data).__name__}"
        )
    got = data.get("kind")
    if got != kind:
        raise WireError(f"expected wire kind {kind!r}, got {got!r}")
    version = data.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireError(f"{kind}: schema_version must be an integer")
    if version > WIRE_SCHEMA_VERSION:
        raise WireError(
            f"{kind}: schema_version {version} is newer than this "
            f"process understands (max {WIRE_SCHEMA_VERSION})",
            code=E_VERSION,
        )
    return data


def get_field(
    data: dict,
    key: str,
    types,
    default: Any = _REQUIRED,
    *,
    kind: str = "document",
):
    """Typed field access with wire-grade errors.

    ``types`` is a type or tuple accepted for the value.  A missing key
    returns ``default``, or raises :class:`WireError` when no default was
    given.  ``bool`` is never accepted where a number was asked for.
    """
    value = data.get(key)
    if value is None:  # absent and explicit null read the same
        if default is _REQUIRED:
            raise WireError(f"{kind}: missing required field {key!r}")
        return default
    if not isinstance(value, types) or (
        isinstance(value, bool) and bool not in _astuple(types)
    ):
        raise WireError(
            f"{kind}: field {key!r} must be "
            f"{_typenames(types)}, got {type(value).__name__}"
        )
    return value


def _astuple(types) -> tuple:
    return types if isinstance(types, tuple) else (types,)


def _typenames(types) -> str:
    return "/".join(t.__name__ for t in _astuple(types))


def string_list(data: dict, key: str, *, kind: str) -> list[str]:
    """A required list-of-strings field."""
    raw = get_field(data, key, list, kind=kind)
    out = []
    for item in raw:
        if not isinstance(item, str):
            raise WireError(
                f"{kind}: field {key!r} must hold strings, "
                f"got {type(item).__name__}"
            )
        out.append(item)
    return out


# ---------------------------------------------------------------------------
# canonical form + hashing
# ---------------------------------------------------------------------------
def canonical_json(data: dict) -> str:
    """Deterministic serialization: sorted keys, no whitespace."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_hash(data: dict) -> str:
    """Content hash of a wire document (used as ``JobTicket.spec_hash``).

    Two submissions with the same resolved workload and limits hash
    identically regardless of field order — the key a compile-once cache
    or a dedup layer would use.
    """
    digest = hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()
    return f"sha256:{digest[:32]}"


# ---------------------------------------------------------------------------
# the generic outcome document
# ---------------------------------------------------------------------------
@dataclass
class WireOutcome(OutcomeMixin):
    """A deserialized ensemble outcome: pure data, protocol-complete.

    Any :class:`~repro.host.results.EnsembleOutcome` (single launch,
    batched campaign, scheduler job) serializes to the same
    ``EnsembleOutcome`` wire kind via :func:`outcome_to_wire`; this is
    what comes back out.  It satisfies the outcome protocol
    (``instances`` / ``return_codes`` / ``all_succeeded`` /
    ``total_cycles`` / ``stdout_of``) so report code consumes local and
    remote results identically.
    """

    instances: list["InstanceOutcome"]
    total_cycles: float | None = None
    fault_reports: list["FaultReport"] = field(default_factory=list)

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    @property
    def degraded(self) -> bool:
        return bool(self.fault_reports)


def outcome_to_wire(outcome) -> dict:
    """Serialize any :class:`EnsembleOutcome` implementation."""
    data = envelope("EnsembleOutcome")
    data["instances"] = [o.to_wire() for o in outcome.instances]
    data["total_cycles"] = outcome.total_cycles
    data["fault_reports"] = [
        r.to_wire() for r in getattr(outcome, "fault_reports", [])
    ]
    return data


def outcome_from_wire(data: dict) -> WireOutcome:
    """Decode an ``EnsembleOutcome`` document into a :class:`WireOutcome`."""
    from repro.faults.report import FaultReport
    from repro.host.ensemble_loader import InstanceOutcome

    check_envelope(data, "EnsembleOutcome")
    kind = "EnsembleOutcome"
    cycles = get_field(data, "total_cycles", (int, float), None, kind=kind)
    return WireOutcome(
        instances=[
            InstanceOutcome.from_wire(o)
            for o in get_field(data, "instances", list, kind=kind)
        ],
        total_cycles=None if cycles is None else float(cycles),
        fault_reports=[
            FaultReport.from_wire(r)
            for r in get_field(data, "fault_reports", list, [], kind=kind)
        ],
    )


# ---------------------------------------------------------------------------
# dispatch for heterogeneous corpora
# ---------------------------------------------------------------------------
def from_wire_any(data: Any):
    """Parse a wire document of any registered kind (corpus checker)."""
    if not isinstance(data, dict):
        raise WireError("wire document must be a JSON object")
    kind = data.get("kind")
    if kind == "EnsembleOutcome":
        return outcome_from_wire(data)
    # Deferred imports: this module is a leaf the value types import.
    if kind == "LaunchSpec":
        from repro.host.launch import LaunchSpec

        return LaunchSpec.from_wire(data)
    if kind == "FaultPlan":
        from repro.faults.plan import FaultPlan

        return FaultPlan.from_wire(data)
    if kind == "FaultReport":
        from repro.faults.report import FaultReport

        return FaultReport.from_wire(data)
    if kind == "InstanceOutcome":
        from repro.host.ensemble_loader import InstanceOutcome

        return InstanceOutcome.from_wire(data)
    if kind == "BatchRecord":
        from repro.host.batch import BatchRecord

        return BatchRecord.from_wire(data)
    if kind == "JobResult":
        from repro.sched.jobs import JobResult

        return JobResult.from_wire(data)
    if kind == "JobTicket":
        from repro.sched.jobs import JobTicket

        return JobTicket.from_wire(data)
    if kind == "Submission":
        from repro.serve.protocol import Submission

        return Submission.from_wire(data)
    raise WireError(f"unknown wire kind {kind!r}")


__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ERROR_CODES",
    "E_SCHEMA",
    "E_VERSION",
    "E_BAD_REQUEST",
    "E_UNKNOWN_OP",
    "E_UNKNOWN_APP",
    "E_UNKNOWN_JOB",
    "E_ADMISSION",
    "E_DRAINING",
    "E_JOB_FAILED",
    "E_INTERNAL",
    "WireError",
    "WireOutcome",
    "envelope",
    "check_envelope",
    "get_field",
    "string_list",
    "canonical_json",
    "spec_hash",
    "outcome_to_wire",
    "outcome_from_wire",
    "from_wire_any",
]
