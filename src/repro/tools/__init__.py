"""Developer tools: IR inspection (`repro.tools.objdump`)."""
