"""Developer tools: IR inspection (`repro.tools.objdump`) and the
ensemble-safety linter (`repro.tools.lint`)."""
