"""Ensemble-safety linter over the device IR.

Runs the :mod:`repro.analysis` checkers on an application at a chosen
pipeline stage and reports the findings as compiler-style text or JSON::

    python -m repro.tools.lint xsbench
    python -m repro.tools.lint rsbench --stage device --format json
    python -m repro.tools.lint pagerank --checker races --checker uninit
    python -m repro.tools.lint --all --fail-on error
    python -m repro.tools.lint pagerank --interproc
    python -m repro.tools.lint --driver examples/auto_ensemble_loop.py

``--interproc`` additionally reports the interprocedural facts (call
cycles, allocation bounds, the static per-instance footprint) from
:mod:`repro.analysis.interproc`.

``--driver`` lints *host* driver scripts instead of device IR: every
top-level function's ``for`` loops go through the loop-carried
dependence analyzer (:mod:`repro.analysis.driverdep`), reporting which
loops the auto-ensemble frontend would accept and, for the rest, the
variable, dependence kind, and line blocking parallel execution.
``--driver-fn`` restricts the analysis to one function.  Driver and app
linting compose in one invocation; both feed the same exit code.

Exit status (stable contract for CI):

* ``0`` — clean (no diagnostic at or above ``--fail-on``),
* ``1`` — findings at or above the ``--fail-on`` severity (default
  ``error``),
* ``2`` — usage error (unknown app name, unreadable/unparsable driver
  script),
* ``3`` — internal error (a checker or the compiler crashed).

The JSON format (``--format json``) is a stable schema: one object with
``stage``, ``apps``, ``safety`` and (when ``--driver`` is used)
``drivers``; each app or driver script maps to a list of diagnostics
carrying ``file``/``line``/``col`` (source provenance when the frontend
recorded it), ``severity``, ``checker``, ``function``/``block``/
``index``, ``sym``, ``message`` and ``hint``.  ``safety`` maps each app
to its per-kernel :class:`~repro.analysis.safety.SafetyCertificate`
summaries (site counts, proven/unproven/disproven tallies, guard-free
coverage) — the proof state behind the ``static-oob``/``static-trap``
checkers.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import traceback

from repro.analysis import CHECKERS, Severity, analyze_module, count_by_severity
from repro.analysis.diagnostics import Diagnostic
from repro.tools.objdump import STAGES, module_at_stage

#: ``--fail-on`` choices mapped to severity thresholds (``never`` disables).
FAIL_LEVELS = {
    "error": Severity.ERROR,
    "warning": Severity.WARNING,
    "note": Severity.NOTE,
    "never": None,
}

#: Stable exit codes (see module docstring).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3


def lint_app(
    entry, stage: str, checkers: list[str] | None, *, interproc: bool = False
) -> list[Diagnostic]:
    """Compile one registry app to ``stage`` and run the checkers on it."""
    return _lint_app(entry, stage, checkers, interproc=interproc)[1]


def _lint_app(
    entry, stage: str, checkers: list[str] | None, *, interproc: bool = False
):
    """``lint_app`` that also hands back the staged module, so the JSON
    renderer can attach the safety-certificate summaries without a second
    compile."""
    module = module_at_stage(entry.build_program(), stage)
    diags = analyze_module(module, checkers)
    if interproc:
        from repro.analysis.interproc import interproc_facts

        diags.extend(interproc_facts(module))
    return module, diags


def lint_driver(
    path: str, func_name: str | None = None
) -> list[Diagnostic]:
    """Run the loop-dependence analyzer over one driver script.

    Raises :class:`~repro.errors.AnalysisError` (a usage error for the
    CLI) when the file cannot be read or parsed, or when ``func_name``
    names a function without a ``for`` loop.
    """
    from repro.analysis.driverdep import classify_loop, lift_source
    from repro.errors import AnalysisError

    try:
        source = open(path).read()
    except OSError as exc:
        raise AnalysisError(f"cannot read driver script {path}: {exc}") from exc
    diags: list[Diagnostic] = []
    for loop in lift_source(source, filename=path, func_name=func_name):
        diags.extend(classify_loop(loop).diagnostics)
    return diags


def _safety_summaries(module) -> dict:
    """Per-kernel :meth:`~repro.analysis.safety.SafetyCertificate.summary`
    dicts for the JSON report (empty when the stage has no lowerable
    kernels — early stages have nothing to certify)."""
    from repro.analysis.safety import certificates_for
    from repro.errors import ReproError

    try:
        certs = certificates_for(module)
    except ReproError:
        return {}
    return {name: cert.summary() for name, cert in sorted(certs.items())}


def _app_source_file(entry) -> str | None:
    """The Python source file an app is defined in — the closest thing the
    DSL has to a translation unit, and what ``line``/``col`` refer to."""
    try:
        return inspect.getsourcefile(entry.build_program)
    except (TypeError, OSError):
        return None


def _render_text(app: str, diags: list[Diagnostic]) -> None:
    counts = count_by_severity(diags)
    tally = ", ".join(
        f"{counts[sev.label]} {sev.label}{'s' if counts[sev.label] != 1 else ''}"
        for sev in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
        if counts.get(sev.label)
    )
    print(f"== {app}: {tally or 'clean'}")
    for d in diags:
        print(d.format())


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module doc for usage)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Run the ensemble-safety checkers on application IR.",
    )
    parser.add_argument("app", nargs="*", help="registry app name(s)")
    parser.add_argument(
        "--all", action="store_true", help="lint every registered app"
    )
    parser.add_argument("--stage", choices=STAGES, default="final")
    parser.add_argument(
        "--checker",
        action="append",
        choices=sorted(CHECKERS),
        help="run only this checker (repeatable; default: all)",
    )
    parser.add_argument(
        "--interproc",
        action="store_true",
        help="also report interprocedural facts (call cycles, allocation "
        "bounds, the static packing footprint)",
    )
    parser.add_argument(
        "--driver",
        action="append",
        metavar="SCRIPT",
        help="lint a host driver script with the loop-carried dependence "
        "analyzer instead of (or in addition to) app IR (repeatable)",
    )
    parser.add_argument(
        "--driver-fn",
        metavar="NAME",
        default=None,
        help="restrict --driver analysis to one function",
    )
    parser.add_argument(
        "--fail-on",
        choices=sorted(FAIL_LEVELS),
        default="error",
        help="exit nonzero when a diagnostic at or above this severity fires",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="deprecated alias for --format json",
    )
    args = parser.parse_args(argv)
    fmt = args.format or ("json" if args.json else "text")

    from repro.apps.registry import APPS

    if args.all:
        names = sorted(APPS)
    elif args.app:
        names = args.app
    elif args.driver:
        names = []
    else:
        parser.error("name at least one app, pass --all, or pass --driver")
    if args.driver_fn and not args.driver:
        parser.error("--driver-fn requires --driver")

    unknown = [n for n in names if n not in APPS]
    if unknown:
        print(
            f"unknown app(s) {unknown}; choices: {sorted(APPS)}", file=sys.stderr
        )
        return EXIT_USAGE

    threshold = FAIL_LEVELS[args.fail_on]
    failed = False
    report: dict[str, list[dict]] = {}
    safety_report: dict[str, dict] = {}
    for name in names:
        entry = APPS[name]
        try:
            module, diags = _lint_app(
                entry, args.stage, args.checker, interproc=args.interproc
            )
        except Exception:
            print(f"internal error linting {name!r}:", file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
        if fmt == "json":
            src = _app_source_file(entry)
            report[name] = [dict(d.to_dict(), file=src) for d in diags]
            safety_report[name] = _safety_summaries(module)
        else:
            _render_text(name, diags)
        if threshold is not None and any(d.severity >= threshold for d in diags):
            failed = True

    driver_report: dict[str, list[dict]] = {}
    for path in args.driver or []:
        from repro.errors import AnalysisError

        try:
            diags = lint_driver(path, args.driver_fn)
        except AnalysisError as exc:
            print(f"driver {path}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except Exception:
            print(f"internal error linting driver {path!r}:", file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
        if fmt == "json":
            driver_report[path] = [
                dict(d.to_dict(), file=path) for d in diags
            ]
        else:
            _render_text(path, diags)
        if threshold is not None and any(d.severity >= threshold for d in diags):
            failed = True

    if fmt == "json":
        out = {"stage": args.stage, "apps": report, "safety": safety_report}
        if args.driver:
            out["drivers"] = driver_report
        print(json.dumps(out, indent=2))
    return EXIT_FINDINGS if failed else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
