"""Ensemble-safety linter over the device IR.

Runs the :mod:`repro.analysis` checkers on an application at a chosen
pipeline stage and reports the findings as compiler-style text or JSON::

    python -m repro.tools.lint xsbench
    python -m repro.tools.lint rsbench --stage device --json
    python -m repro.tools.lint pagerank --checker races --checker uninit
    python -m repro.tools.lint --all --fail-on error

Exit status is 1 when any diagnostic at or above the ``--fail-on``
severity (default: ``error``) was produced, so the command slots directly
into ``make lint`` / CI.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import CHECKERS, Severity, analyze_module, count_by_severity
from repro.analysis.diagnostics import Diagnostic
from repro.tools.objdump import STAGES, module_at_stage

#: ``--fail-on`` choices mapped to severity thresholds (``never`` disables).
FAIL_LEVELS = {
    "error": Severity.ERROR,
    "warning": Severity.WARNING,
    "note": Severity.NOTE,
    "never": None,
}


def lint_app(entry, stage: str, checkers: list[str] | None) -> list[Diagnostic]:
    """Compile one registry app to ``stage`` and run the checkers on it."""
    module = module_at_stage(entry.build_program(), stage)
    return analyze_module(module, checkers)


def _render_text(app: str, diags: list[Diagnostic]) -> None:
    counts = count_by_severity(diags)
    tally = ", ".join(
        f"{counts[sev.label]} {sev.label}{'s' if counts[sev.label] != 1 else ''}"
        for sev in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
        if counts.get(sev.label)
    )
    print(f"== {app}: {tally or 'clean'}")
    for d in diags:
        print(d.format())


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module doc for usage)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Run the ensemble-safety checkers on application IR.",
    )
    parser.add_argument("app", nargs="*", help="registry app name(s)")
    parser.add_argument(
        "--all", action="store_true", help="lint every registered app"
    )
    parser.add_argument("--stage", choices=STAGES, default="final")
    parser.add_argument(
        "--checker",
        action="append",
        choices=sorted(CHECKERS),
        help="run only this checker (repeatable; default: all)",
    )
    parser.add_argument(
        "--fail-on",
        choices=sorted(FAIL_LEVELS),
        default="error",
        help="exit nonzero when a diagnostic at or above this severity fires",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    args = parser.parse_args(argv)

    from repro.apps.registry import APPS

    if args.all:
        names = sorted(APPS)
    elif args.app:
        names = args.app
    else:
        parser.error("name at least one app, or pass --all")

    unknown = [n for n in names if n not in APPS]
    if unknown:
        print(
            f"unknown app(s) {unknown}; choices: {sorted(APPS)}", file=sys.stderr
        )
        return 2

    threshold = FAIL_LEVELS[args.fail_on]
    failed = False
    report: dict[str, list[dict]] = {}
    for name in names:
        diags = lint_app(APPS[name], args.stage, args.checker)
        if args.json:
            report[name] = [d.to_dict() for d in diags]
        else:
            _render_text(name, diags)
        if threshold is not None and any(d.severity >= threshold for d in diags):
            failed = True
    if args.json:
        print(json.dumps({"stage": args.stage, "apps": report}, indent=2))
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
