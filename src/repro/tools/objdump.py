"""objdump-style IR inspector.

Dumps the IR of an application at each pipeline stage, like inspecting a
real toolchain with ``clang -emit-llvm`` / ``llvm-dis`` between passes::

    python -m repro.tools.objdump --app xsbench --stage device
    python -m repro.tools.objdump --app rsbench --stage final --function __ensemble_entry
    python -m repro.tools.objdump --app amgmk --stats

Stages
------
``frontend``  after the restricted-Python frontend + libc link
``device``    after declare-target / rename-main / RPC lowering
``final``     after kernel construction and LTO finalization (call-free)
"""

from __future__ import annotations

import argparse
import sys

from repro.ir.module import Module
from repro.ir.printer import print_function, print_module
from repro.passes import compile_for_device, finalize_executable
from repro.runtime.kernel import build_ensemble_kernel, build_single_kernel

STAGES = ("frontend", "device", "final")


def module_at_stage(program, stage: str) -> Module:
    """Compile ``program`` up to the requested pipeline stage."""
    module = program.compile()
    if stage == "frontend":
        return module
    module = compile_for_device(module)
    if stage == "device":
        return module
    build_single_kernel(module)
    build_ensemble_kernel(module)
    return finalize_executable(module)


def stats_of(module: Module) -> dict:
    """Instruction/function statistics for a module."""
    per_fn = {
        name: fn.instruction_count() for name, fn in module.functions.items()
    }
    return {
        "functions": len(module.functions),
        "globals": len(module.globals),
        "kernels": [f.name for f in module.kernels()],
        "instructions_total": sum(per_fn.values()),
        "instructions_per_function": per_fn,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module doc for usage)."""
    parser = argparse.ArgumentParser(
        prog="repro-objdump", description="Dump application IR by pipeline stage."
    )
    parser.add_argument("--app", required=True, help="benchmark app name")
    parser.add_argument("--stage", choices=STAGES, default="final")
    parser.add_argument("--function", default=None, help="dump a single function")
    parser.add_argument(
        "--stats", action="store_true", help="print statistics instead of IR"
    )
    args = parser.parse_args(argv)

    from repro.apps.registry import APPS

    entry = APPS.get(args.app)
    if entry is None:
        print(f"unknown app {args.app!r}; choices: {sorted(APPS)}", file=sys.stderr)
        return 1
    module = module_at_stage(entry.build_program(), args.stage)

    if args.stats:
        stats = stats_of(module)
        print(f"module @{module.name} at stage {args.stage}")
        print(f"  functions:    {stats['functions']}")
        print(f"  globals:      {stats['globals']}")
        print(f"  kernels:      {', '.join(stats['kernels']) or '-'}")
        print(f"  instructions: {stats['instructions_total']}")
        for name, count in sorted(
            stats["instructions_per_function"].items(), key=lambda kv: -kv[1]
        ):
            print(f"    {name:24s} {count:6d}")
        return 0

    if args.function:
        fn = module.functions.get(args.function)
        if fn is None:
            print(
                f"no function {args.function!r}; have: {sorted(module.functions)}",
                file=sys.stderr,
            )
            return 1
        print(print_function(fn))
    else:
        print(print_module(module))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
