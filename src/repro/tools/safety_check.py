"""CI gate for the static safety analyzer (``make safety-check``).

Two legs, both of which must hold for the gate to pass:

* **Registry coverage** — every ported application, compiled at ``-O2``,
  must certify with zero DISPROVEN sites and at least
  :data:`MIN_COVERAGE` of its memory sites proven guard-free (the bar
  the compiled backend's unchecked fast path is built on).
* **Broken fixtures** — known-unsafe programs (a constant out-of-bounds
  load, a guaranteed division by zero) must produce DISPROVEN sites and
  trip the ``static-oob`` / ``static-trap`` checkers at ERROR severity.

Exit status: ``0`` when both legs hold, ``1`` otherwise.
"""

from __future__ import annotations

import argparse
import sys

#: Minimum guard-free fraction of memory sites per wrapper kernel.
MIN_COVERAGE = 0.6

#: Known-unsafe fixtures -> the checker that must flag them.
BROKEN = {
    "oob": (
        """
def main(argc: i64, argv: ptr_ptr) -> i64:
    p = malloc_i64(4)
    return p[0 - 999999]
""",
        "static-oob",
    ),
    "div0": (
        """
def main(argc: i64, argv: ptr_ptr) -> i64:
    buf = malloc_i64(8)
    for i in dgpu.parallel_range(8):
        buf[i] = 7 // (i - i)
    return 0
""",
        "static-trap",
    ),
}


def check_registry(opt_level: int, min_coverage: float) -> bool:
    """Certify every registry app and gate on coverage.

    Prints the per-kernel certificate table; fails on any DISPROVEN
    site or guard-free coverage below ``min_coverage``.
    """
    from repro.analysis.safety import certify_module
    from repro.apps.registry import APPS
    from repro.compilecache.build import build_executable

    ok = True
    print(f"== registry apps at -O{opt_level} (coverage bar {min_coverage:.0%})")
    for name in sorted(APPS):
        module = build_executable(
            APPS[name].build_program().compile(), opt_level=opt_level
        )
        for kernel, cert in sorted(certify_module(module).items()):
            s = cert.summary()
            bad = []
            if s["disproven"]:
                bad.append(f"{s['disproven']} DISPROVEN site(s)")
            if s["mem_sites"] and s["coverage"] < min_coverage:
                bad.append(f"coverage {s['coverage']:.2f} < {min_coverage}")
            status = "FAIL: " + "; ".join(bad) if bad else "ok"
            print(
                f"  {name:10s} {kernel:18s} {s['mem_sites']:4d} mem sites, "
                f"{s['guard_free']:4d} guard-free ({s['coverage']:.2f}), "
                f"{s['trap_sites']} trap sites, "
                f"{s['disproven']} disproven  [{status}]"
            )
            ok &= not bad
    return ok


def _text_program(src: str):
    """Build a Program from literal source text (the fixtures above have
    no file for ``inspect.getsource`` to find)."""
    import textwrap

    from repro.frontend import dsl, dtypes
    from repro.frontend.dsl import Program, SourceFunction

    text = textwrap.dedent(src)
    ns = {
        "i64": dtypes.i64,
        "ptr_ptr": dtypes.ptr_ptr,
        "dgpu": dsl.dgpu,
        "malloc_i64": lambda n: None,
    }
    exec(text, ns)  # noqa: S102 - fixed fixture text above

    class _Text(SourceFunction):
        @property
        def source(self):
            return text

    prog = Program("fixture")
    prog.functions["main"] = _Text(ns["main"], "main", is_main=True)
    return prog


def check_broken_fixtures() -> bool:
    """Negative control: deliberately broken programs must be DISPROVEN
    and flagged by the static-oob / static-trap lint checkers."""
    from repro.analysis import Severity, analyze_module
    from repro.analysis.safety import certify_module
    from repro.compilecache.build import build_executable

    ok = True
    print("== broken fixtures (must be DISPROVEN and flagged)")
    for name, (src, checker) in BROKEN.items():
        module = build_executable(_text_program(src).compile(), opt_level=2)
        disproven = sum(
            len(c.disproven()) for c in certify_module(module).values()
        )
        errors = [
            d
            for d in analyze_module(module, [checker])
            if d.severity is Severity.ERROR
        ]
        good = disproven > 0 and bool(errors)
        print(
            f"  {name:6s} {disproven} disproven site(s), "
            f"{len(errors)} {checker} error(s)  "
            f"[{'ok' if good else 'FAIL'}]"
        )
        ok &= good
    return ok


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run both gates, exit 0 on pass, 1 on failure."""
    parser = argparse.ArgumentParser(
        prog="repro-safety-check",
        description="Gate the static safety analyzer over the app registry.",
    )
    parser.add_argument("--opt-level", type=int, default=2)
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=MIN_COVERAGE,
        help="minimum guard-free fraction of memory sites per kernel",
    )
    args = parser.parse_args(argv)

    ok = check_registry(args.opt_level, args.min_coverage)
    ok &= check_broken_fixtures()
    print("safety-check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
