"""Dominator and post-dominator analysis over a :class:`~repro.analysis.cfg.CFG`.

Block ``D`` *dominates* ``B`` when every path from the entry to ``B`` goes
through ``D``; ``P`` *post-dominates* ``B`` when every path from ``B`` to a
function exit goes through ``P``.  Both are computed with the classic
iterative set-intersection fixpoint, which is plenty fast for the block
counts this IR produces (the largest finalized app kernel is a few hundred
blocks).

Post-dominance is parameterized on what counts as an "exit".  For
convergence questions (may all threads reach this barrier together?) the
right notion ignores aborting paths: a ``trap`` kills the whole launch, so
a path that ends in a trap never leaves some threads waiting at a barrier.
``postdominators(cfg)`` therefore uses only ``ret``/``retval`` blocks as
exits by default; pass ``through_traps=True`` for the strict variant.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG


def dominators(cfg: CFG) -> dict[str, frozenset[str]]:
    """Map each reachable label to the set of labels dominating it
    (reflexive: every block dominates itself)."""
    blocks = cfg.rpo
    universe = frozenset(blocks)
    dom: dict[str, frozenset[str]] = {b: universe for b in blocks}
    dom[cfg.entry] = frozenset({cfg.entry})
    changed = True
    while changed:
        changed = False
        for b in blocks:
            if b == cfg.entry:
                continue
            preds = [p for p in cfg.preds[b] if p in cfg.reachable]
            new = universe
            for p in preds:
                new = new & dom[p]
            new = new | {b}
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def postdominators(
    cfg: CFG, *, through_traps: bool = False
) -> dict[str, frozenset[str]]:
    """Map each reachable label to the set of labels post-dominating it.

    Only blocks that can reach an exit participate; blocks that cannot
    (infinite loops, trap-only tails when ``through_traps=False``) are
    mapped to the full block set — post-dominance over them is vacuous,
    and callers treating the result as "must pass through" stay
    conservative.
    """
    exits = set(cfg.return_blocks)
    if through_traps:
        exits |= cfg.trap_blocks
    universe = frozenset(cfg.reachable)
    live = cfg.can_reach(exits) & cfg.reachable
    pdom: dict[str, frozenset[str]] = {}
    for b in cfg.reachable:
        if b in exits:
            pdom[b] = frozenset({b})
        else:
            pdom[b] = universe
    order = [b for b in reversed(cfg.rpo) if b in live]
    changed = True
    while changed:
        changed = False
        for b in order:
            if b in exits:
                continue
            succs = [s for s in cfg.succs[b] if s in live]
            new = universe
            for s in succs:
                new = new & pdom[s]
            new = new | {b}
            if new != pdom[b]:
                pdom[b] = new
                changed = True
    return pdom
