"""Static per-instance resource estimation for ensemble packing.

The paper packs instances onto a device until the device heap says no —
an *O(log N)* OOM-bisection discovers the feasible batch size at runtime
(§4.3's Page-Rank cap, :class:`~repro.host.batch.BisectionPolicy`).  This
module moves that discovery to compile time where the program allows it:
bound every device-heap allocation ``__user_main`` can reach, multiply by
a bound on how often each allocation site executes, and the sum is a
per-instance heap footprint the scheduler can divide into the device heap
*before* the first doomed launch.

The three interprocedural analyses each contribute one factor:

* the **call graph** restricts attention to functions reachable from the
  entry point and yields per-function *invocation bounds* (how many times
  a function can run per instance — recursion degrades to unbounded);
* **counted-loop matching + value ranges** turn "a ``malloc`` inside a
  loop" into "at most *k* executions" (:func:`~repro.analysis.ranges.trip_bound`);
* **value ranges** again bound the byte size each execution requests.

Any unknown — an unbounded loop, a recursive caller, a size the range
analysis cannot close — makes the footprint *unbounded* (``heap_hi is
None``), and callers fall back to runtime bisection exactly as before.
A bounded footprint is a sound over-approximation: allocation sizes are
rounded up to the bump allocator's :data:`~repro.runtime.libc.HEAP_ALIGN`
just like the device ``malloc`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.loops import (
    Loop,
    dominators,
    enclosing_loops,
    match_counted_loop,
    natural_loops,
)
from repro.analysis.ranges import Interval, ValueRanges, trip_bound
from repro.ir.instructions import Opcode
from repro.ir.module import Function, Module
from repro.ir.types import Reg
from repro.runtime.libc import HEAP_ALIGN

#: Allocator entry points and the byte width of one element each requests.
#: ``malloc`` takes raw bytes; the typed wrappers take element counts.
ALLOCATORS: dict[str, int] = {
    "malloc": 1,
    "calloc": 1,
    "malloc_i64": 8,
    "malloc_f64": 8,
}

#: Default entry point: the renamed user ``main`` every kernel iterates.
DEFAULT_ENTRY = "__user_main"


def _align(nbytes: int) -> int:
    return -(-nbytes // HEAP_ALIGN) * HEAP_ALIGN


@dataclass(frozen=True)
class AllocSite:
    """One reachable allocator call and its static bounds."""

    function: str
    block: str
    index: int
    callee: str
    #: bytes requested per execution (element count already scaled).
    size: Interval
    #: executions per instance; ``hi is None`` = unbounded.
    count: Interval

    @property
    def total_hi(self) -> int | None:
        """Aligned worst-case bytes this site contributes per instance."""
        if self.size.hi is None or self.count.hi is None:
            return None
        return _align(max(self.size.hi, 1)) * max(self.count.hi, 0)

    @property
    def total_lo(self) -> int:
        """Aligned bytes this site is guaranteed to consume per instance."""
        lo = self.count.lo or 0
        if lo <= 0:
            return 0
        # malloc traps on non-positive sizes, so a site that executes
        # requests at least one byte (one aligned chunk).
        return _align(max(self.size.lo or 1, 1)) * lo

    def describe(self) -> str:
        size = self.size.render() if hasattr(self.size, "render") else str(self.size)
        count = self.count.render() if hasattr(self.count, "render") else str(self.count)
        return (
            f"{self.function}:{self.block}[{self.index}] {self.callee} "
            f"size={size} count={count}"
        )


@dataclass(frozen=True)
class StaticFootprint:
    """Per-instance resource bounds of a linked module.

    ``heap_hi is None`` means the analysis could not bound the heap —
    callers must fall back to runtime OOM bisection.
    """

    entry: str
    #: guaranteed device-heap bytes per instance (aligned lower bound).
    heap_lo: int
    #: worst-case device-heap bytes per instance, or None if unbounded.
    heap_hi: int | None
    #: bytes of module globals (shared by all instances, not per-instance).
    globals_bytes: int
    sites: tuple[AllocSite, ...]

    @property
    def bounded(self) -> bool:
        return self.heap_hi is not None

    def max_instances(self, heap_bytes: int) -> int | None:
        """How many instances statically fit in ``heap_bytes`` of heap.

        ``None`` means *no static constraint*: either the footprint is
        unbounded (fall back to bisection) or the program provably never
        allocates.  ``0`` means even a single instance cannot fit.
        """
        if self.heap_hi is None or self.heap_hi == 0:
            return None
        return heap_bytes // self.heap_hi

    def describe(self) -> str:
        hi = "unbounded" if self.heap_hi is None else f"{self.heap_hi} B"
        lines = [
            f"entry {self.entry}: heap per instance in "
            f"[{self.heap_lo} B, {hi}]; globals {self.globals_bytes} B",
        ]
        lines += [f"  {s.describe()}" for s in self.sites]
        return "\n".join(lines)


def _exit_blocks(fn: Function) -> list[str]:
    out = []
    for block in fn.iter_blocks():
        term = block.terminator
        if term is not None and term.op in (Opcode.RET, Opcode.RETVAL):
            out.append(block.label)
    return out


def _site_count(
    vr: ValueRanges,
    fn: Function,
    label: str,
    loops_of: dict[str, list[Loop]],
    counted_cache: dict[str, int | None],
    dom: dict[str, set[str]],
    exits: list[str],
) -> Interval:
    """Bound how often one instruction in ``label`` executes per call of
    ``fn``: the product of the trip bounds of every enclosing loop."""
    hi: int | None = 1
    for loop in loops_of.get(label, []):
        if loop.header not in counted_cache:
            counted = match_counted_loop(fn, loop)
            counted_cache[loop.header] = (
                None if counted is None else trip_bound(vr, fn.name, counted)
            )
        trips = counted_cache[loop.header]
        if trips is None:
            hi = None
            break
        hi = hi * trips
    # Lower bound: 1 only for straight-line sites on every path to exit.
    lo = 0
    if not loops_of.get(label) and exits and all(label in dom[e] for e in exits):
        lo = 1
    return Interval(lo, hi)


def compute_footprint(
    module: Module,
    *,
    entry: str = DEFAULT_ENTRY,
    callgraph: CallGraph | None = None,
    ranges: ValueRanges | None = None,
) -> StaticFootprint:
    """Bound the per-instance device-heap footprint of ``entry``."""
    globals_bytes = sum(g.nbytes for g in module.globals.values())
    if entry not in module.functions:
        return StaticFootprint(entry, 0, None, globals_bytes, ())
    cg = callgraph or build_callgraph(module)
    vr = ranges or ValueRanges(module, cg)
    reachable = cg.reachable_from([entry])

    # Per-function structural facts, computed once.
    loops_of: dict[str, dict[str, list[Loop]]] = {}
    counted: dict[str, dict[str, int | None]] = {}
    doms: dict[str, dict[str, set[str]]] = {}
    exits: dict[str, list[str]] = {}
    for name in reachable:
        if name not in module.functions or name in ALLOCATORS:
            continue
        fn = module.functions[name]
        lps = natural_loops(fn)
        loops_of[name] = enclosing_loops(fn, lps)
        counted[name] = {}
        doms[name] = dominators(fn)
        exits[name] = _exit_blocks(fn)

    def local_count(name: str, label: str) -> Interval:
        fn = module.functions[name]
        return _site_count(
            vr, fn, label, loops_of[name], counted[name], doms[name], exits[name]
        )

    # Invocation bounds per function: callers-first over the call graph.
    # ``entry`` runs once per instance; a callee's bound is the sum over
    # its reachable call sites of caller_bound x site execution bound.
    # Recursion (non-trivial SCC) and indirect calls degrade to unbounded.
    inv: dict[str, Interval] = {entry: Interval.const(1)}
    for name in cg.topo_order(callees_first=False):
        if name not in reachable or name not in loops_of:
            continue
        caller_inv = inv.get(name)
        if caller_inv is None:
            continue
        for site in cg.sites_in(name):
            callee = site.callee
            if callee is None or callee not in module.functions:
                continue
            mult = local_count(name, site.block)
            if caller_inv.hi is None or mult.hi is None:
                contrib = Interval(0, None)
            else:
                contrib = Interval(0, caller_inv.hi * mult.hi)
            prev = inv.get(callee)
            if prev is None:
                inv[callee] = contrib
            else:
                hi = (
                    None
                    if prev.hi is None or contrib.hi is None
                    else prev.hi + contrib.hi
                )
                inv[callee] = Interval(min(prev.lo or 0, contrib.lo or 0), hi)
        if cg.is_recursive(name):
            inv[name] = Interval(0, None)

    sites: list[AllocSite] = []
    for name in sorted(reachable):
        if name not in loops_of:  # allocators themselves, externs
            continue
        fn = module.functions[name]
        fn_inv = inv.get(name, Interval(0, None))
        if cg.is_recursive(name):
            fn_inv = Interval(0, None)
        for block in fn.iter_blocks():
            for idx, instr in enumerate(block.instrs):
                if instr.op is not Opcode.CALL or instr.callee not in ALLOCATORS:
                    continue
                elem = ALLOCATORS[instr.callee]
                arg = instr.args[0] if instr.args else None
                if isinstance(arg, Reg):
                    req = vr.interval_at(name, block.label, idx, arg)
                elif isinstance(arg, int):
                    req = Interval.const(arg)
                else:
                    req = Interval(None, None)
                size = req.mul(Interval.const(elem)) if elem != 1 else req
                here = local_count(name, block.label)
                if fn_inv.hi is None or here.hi is None:
                    count = Interval(0, None)
                else:
                    count = Interval(
                        (fn_inv.lo or 0) * (here.lo or 0), fn_inv.hi * here.hi
                    )
                sites.append(
                    AllocSite(
                        function=name,
                        block=block.label,
                        index=idx,
                        callee=instr.callee,
                        size=size,
                        count=count,
                    )
                )

    heap_lo = sum(s.total_lo for s in sites)
    heap_hi: int | None = 0
    for s in sites:
        t = s.total_hi
        if t is None:
            heap_hi = None
            break
        heap_hi += t
    return StaticFootprint(
        entry=entry,
        heap_lo=heap_lo,
        heap_hi=heap_hi,
        globals_bytes=globals_bytes,
        sites=tuple(sites),
    )


__all__ = [
    "ALLOCATORS",
    "AllocSite",
    "StaticFootprint",
    "compute_footprint",
]
