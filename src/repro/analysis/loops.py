"""Natural-loop detection and counted-loop (induction) pattern matching.

The loop machinery lives here — shared by :mod:`repro.passes.licm` (which
needs loop bodies and preheader insertion points) and by
:mod:`repro.analysis.footprint` (which needs *trip-count bounds* to turn
"one ``malloc(n)`` inside a loop" into "at most ``k·n`` bytes").

A loop is the classic natural loop of a back edge ``latch -> header``
where ``header`` dominates ``latch``; loops sharing a header are merged.
On top of that, :func:`match_counted_loop` recognizes the counted-loop
shape the frontend emits for ``for i in range(...)`` (and the strided
variant ``parallel_range`` emits):

.. code-block:: none

    header:   cond = icmp_slt ivar, bound   ; bound defined outside loop
              cbr cond, body, exit
    ...
    latch:    t = add ivar, step            ; step a constant (movi)
              ivar = mov t
              br header

yielding a symbolic :class:`CountedLoop` — induction register, constant
step, bound and initial-value registers.  It deliberately reports *only*
what is structurally certain; turning the symbols into numbers is the
range analysis' job (:func:`repro.analysis.ranges.trip_bound`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.ir.instructions import Opcode
from repro.ir.module import Function
from repro.ir.types import Reg

_STEP_CMPS = {
    Opcode.ICMP_SLT: (True, 1),  # (strict, required step sign)
    Opcode.ICMP_SLE: (False, 1),
    Opcode.ICMP_SGT: (True, -1),
    Opcode.ICMP_SGE: (False, -1),
}


@dataclass(frozen=True)
class Loop:
    """One natural loop: its header label and the set of body labels
    (header included)."""

    header: str
    body: frozenset[str]

    def contains(self, label: str) -> bool:
        return label in self.body


@dataclass(frozen=True)
class CountedLoop:
    """A structurally counted loop; all registers are symbolic.

    ``trips <= ceil((bound - init) / step)`` once the range analysis
    bounds ``bound`` from above and ``init`` from below (signs flipped
    for down-counting loops); ``strict=False`` (``<=``) adds one trip.
    """

    loop: Loop
    ivar: Reg
    bound: Reg
    init: Reg | int | None  #: constant, out-of-loop source reg, or unknown
    step: int
    strict: bool


def predecessors(fn: Function) -> dict[str, list[str]]:
    """Block label -> predecessor labels."""
    preds: dict[str, list[str]] = {lbl: [] for lbl in fn.block_order}
    for block in fn.iter_blocks():
        for succ in block.successors():
            preds[succ].append(block.label)
    return preds


def dominators(fn: Function, preds: dict[str, list[str]] | None = None) -> dict[str, set[str]]:
    """Iterative dataflow dominator sets (fine at our CFG sizes)."""
    if preds is None:
        preds = predecessors(fn)
    labels = fn.block_order
    entry = labels[0]
    all_set = set(labels)
    dom = {lbl: set(all_set) for lbl in labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for lbl in labels:
            if lbl == entry:
                continue
            ps = [p for p in preds[lbl] if p in dom]
            if not ps:
                continue
            new = set.intersection(*(dom[p] for p in ps)) | {lbl}
            if new != dom[lbl]:
                dom[lbl] = new
                changed = True
    return dom


def natural_loops(fn: Function) -> list[Loop]:
    """All natural loops of ``fn``, loops sharing a header merged,
    innermost (smallest body) first."""
    preds = predecessors(fn)
    dom = dominators(fn, preds)
    merged: dict[str, set[str]] = defaultdict(set)
    for block in fn.iter_blocks():
        for succ in block.successors():
            if succ in dom[block.label]:  # back edge block -> succ (header)
                body = {succ, block.label}
                stack = [block.label]
                while stack:
                    cur = stack.pop()
                    if cur == succ:
                        continue
                    for p in preds[cur]:
                        if p not in body:
                            body.add(p)
                            stack.append(p)
                merged[succ] |= body
    loops = [Loop(h, frozenset(b)) for h, b in merged.items()]
    loops.sort(key=lambda lp: (len(lp.body), lp.header))
    return loops


def loop_depths(fn: Function, loops: list[Loop] | None = None) -> dict[str, int]:
    """Block label -> number of loops whose body contains it."""
    if loops is None:
        loops = natural_loops(fn)
    depth = {lbl: 0 for lbl in fn.block_order}
    for loop in loops:
        for lbl in loop.body:
            depth[lbl] += 1
    return depth


def enclosing_loops(fn: Function, loops: list[Loop] | None = None) -> dict[str, list[Loop]]:
    """Block label -> the loops containing it, innermost first."""
    if loops is None:
        loops = natural_loops(fn)
    out: dict[str, list[Loop]] = {lbl: [] for lbl in fn.block_order}
    for loop in loops:  # already innermost-first
        for lbl in loop.body:
            out[lbl].append(loop)
    return out


def _defs_of(fn: Function, reg: Reg):
    """(block label, instr) pairs defining ``reg``."""
    for block in fn.iter_blocks():
        for instr in block.instrs:
            if instr.dest is not None and instr.dest.id == reg.id:
                yield block.label, instr


def _const_of(fn: Function, reg: Reg) -> int | None:
    """The constant value of a single-def MOVI register, else None."""
    defs = list(_defs_of(fn, reg))
    if len(defs) == 1 and defs[0][1].op is Opcode.MOVI:
        return int(defs[0][1].imm)
    return None


def match_counted_loop(fn: Function, loop: Loop) -> CountedLoop | None:
    """Recognize the frontend's counted-loop shape, or return None.

    Requirements (each one is what makes the trip bound *sound*):

    * the header's CBR condition is an integer compare computed in the
      header, ``ivar <op> bound``;
    * every definition of ``bound`` is outside the loop (the bound is
      loop-invariant);
    * every definition of ``ivar`` inside the loop is ``mov ivar, t``
      with ``t = add ivar, c`` (or ``add c, ivar``) for one constant
      ``c`` whose sign matches the compare direction — the induction
      variable makes strict progress toward the bound on every path
      that re-enters the header.
    """
    header = fn.blocks[loop.header]
    term = header.terminator
    if term is None or term.op is not Opcode.CBR:
        return None
    cond = term.args[0] if term.args else None
    if not isinstance(cond, Reg):
        return None
    cmp_instr = None
    for instr in header.instrs:
        if instr.dest is not None and instr.dest.id == cond.id:
            cmp_instr = instr
    if cmp_instr is None or cmp_instr.op not in _STEP_CMPS:
        return None
    strict, want_sign = _STEP_CMPS[cmp_instr.op]
    regs = [a for a in cmp_instr.args if isinstance(a, Reg)]
    if len(regs) != 2:
        return None
    ivar, bound = regs

    # The bound must be loop-invariant.
    if any(lbl in loop.body for lbl, _ in _defs_of(fn, bound)):
        return None

    in_defs = [(lbl, i) for lbl, i in _defs_of(fn, ivar) if lbl in loop.body]
    out_defs = [(lbl, i) for lbl, i in _defs_of(fn, ivar) if lbl not in loop.body]
    if not in_defs:
        return None
    step: int | None = None
    for _lbl, mov in in_defs:
        if mov.op is not Opcode.MOV:
            return None
        src = mov.args[0]
        if not isinstance(src, Reg):
            return None
        src_defs = [i for _l, i in _defs_of(fn, src)]
        if len(src_defs) != 1 or src_defs[0].op is not Opcode.ADD:
            return None
        add = src_defs[0]
        a, b = add.args
        if isinstance(a, Reg) and a.id == ivar.id and isinstance(b, Reg):
            c = _const_of(fn, b)
            step_src = b
        elif isinstance(b, Reg) and b.id == ivar.id and isinstance(a, Reg):
            c = _const_of(fn, a)
            step_src = a
        else:
            return None
        if c is None and want_sign > 0:
            # The strided worksharing loop steps by ``ntid`` (>= 1): use 1,
            # a lower bound on the increment, hence an upper bound on trips.
            sdefs = [i for _l, i in _defs_of(fn, step_src)]
            if len(sdefs) == 1 and sdefs[0].op is Opcode.NTID:
                c = 1
        if c is None or c == 0 or (1 if c > 0 else -1) != want_sign:
            return None
        # Several increments (continue paths): the smallest magnitude
        # still bounds the trip count from above.
        step = c if step is None else (min(step, c) if c > 0 else max(step, c))

    init: Reg | int | None = None
    if len(out_defs) == 1:
        src_instr = out_defs[0][1]
        if src_instr.op is Opcode.MOVI:
            init = int(src_instr.imm)
        elif src_instr.op is Opcode.MOV and isinstance(src_instr.args[0], Reg):
            init = src_instr.args[0]
        elif src_instr.op is Opcode.TID and want_sign > 0:
            init = 0  # tid >= 0: a sound *lower* bound, valid only up-counting
    return CountedLoop(
        loop=loop, ivar=ivar, bound=bound, init=init, step=step or want_sign,
        strict=strict,
    )


__all__ = [
    "CountedLoop",
    "Loop",
    "dominators",
    "enclosing_loops",
    "loop_depths",
    "match_counted_loop",
    "natural_loops",
    "predecessors",
]
