"""Use-before-def checker (uninitialized registers).

The IR is deliberately not SSA: the frontend compiles each variable to a
mutable *home register* written by plain moves.  That makes "is this
register always written before it is read" a real question — a miscompiled
control-flow merge, a hand-built kernel, or an aggressive pass can leave a
path on which a register is read while still holding garbage.

The query is answered with the framework's reaching-definitions analysis:
every non-parameter register starts with an ``UNDEF`` pseudo-definition at
the entry; any read that pseudo-definition may reach is a use-before-def
on some path.  Equivalently (and the property tests assert this
equivalence): a register that is live into the entry block.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import uninitialized_uses
from repro.analysis.diagnostics import Diagnostic, Severity, instr_loc
from repro.ir.module import Module

CHECKER = "uninit"


def check_uninitialized(module: Module) -> list[Diagnostic]:
    """Flag register reads that no definition dominates on some path."""
    diags: list[Diagnostic] = []
    for fn in module.functions.values():
        if not fn.block_order:
            continue
        cfg = CFG(fn)
        for use in uninitialized_uses(fn, cfg):
            instr = fn.blocks[use.block].instrs[use.index]
            diags.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    checker=CHECKER,
                    function=fn.name,
                    block=use.block,
                    index=use.index,
                    loc=instr_loc(instr),
                    message=(
                        f"register {use.reg!r} may be read before it is "
                        f"written (in {instr.op.name.lower()})"
                    ),
                    hint=(
                        "initialize the register on every path reaching this "
                        "instruction"
                    ),
                )
            )
    return diags
