"""Control-flow graph view of an IR function.

The IR stores control flow implicitly (each block's terminator names its
successor labels); every analysis in :mod:`repro.analysis` wants the
explicit graph: successors *and* predecessors, the set of blocks reachable
from the entry, a reverse-postorder traversal for fast dataflow
convergence, and the exit classification (returning vs. trapping blocks).

``CFG`` is a read-only snapshot: build it, query it, throw it away.  It
deliberately tolerates slightly malformed functions (branches to unknown
labels, missing terminators) so the lint checkers can run on IR the
verifier would reject — the verifier itself reuses ``CFG`` and reports
those problems with proper diagnostics.
"""

from __future__ import annotations

from repro.ir.instructions import Opcode
from repro.ir.module import Function


class CFG:
    """Explicit control-flow graph of one :class:`~repro.ir.module.Function`.

    Attributes
    ----------
    entry:
        Label of the entry block.
    succs / preds:
        Adjacency maps over block labels.  Edges to labels that do not
        exist in the function are dropped (the verifier reports them).
    reachable:
        Labels reachable from the entry block.
    rpo:
        Reachable labels in reverse postorder (entry first); iterating
        forward dataflow in this order converges in few passes.
    return_blocks / trap_blocks:
        Reachable blocks terminated by ``ret``/``retval`` vs. ``trap``.
    """

    def __init__(self, fn: Function):
        self.fn = fn
        if not fn.block_order:
            raise ValueError(f"function {fn.name!r} has no blocks")
        self.entry: str = fn.block_order[0]
        self.succs: dict[str, tuple[str, ...]] = {}
        self.preds: dict[str, list[str]] = {label: [] for label in fn.block_order}
        for label in fn.block_order:
            succ = tuple(
                t for t in fn.blocks[label].successors() if t in fn.blocks
            )
            self.succs[label] = succ
            for s in succ:
                self.preds[s].append(label)

        self.reachable: frozenset[str] = frozenset(self.reachable_from(self.entry))
        self.rpo: list[str] = self._reverse_postorder()
        self.return_blocks: frozenset[str] = frozenset(
            label
            for label in self.reachable
            if (term := fn.blocks[label].terminator) is not None
            and term.op in (Opcode.RET, Opcode.RETVAL)
        )
        self.trap_blocks: frozenset[str] = frozenset(
            label
            for label in self.reachable
            if (term := fn.blocks[label].terminator) is not None
            and term.op is Opcode.TRAP
        )

    # ------------------------------------------------------------------
    def reachable_from(self, label: str) -> set[str]:
        """All labels reachable from ``label`` (inclusive) along CFG edges."""
        seen = {label}
        stack = [label]
        while stack:
            for s in self.succs.get(stack.pop(), ()):
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen

    def can_reach(self, sources: set[str] | frozenset[str]) -> set[str]:
        """All labels from which some block in ``sources`` is reachable
        (inclusive); i.e. reachability on the reversed graph."""
        seen = set(sources)
        stack = list(sources)
        while stack:
            for p in self.preds.get(stack.pop(), ()):
                if p not in seen:
                    seen.add(p)
                    stack.append(p)
        return seen

    def _reverse_postorder(self) -> list[str]:
        order: list[str] = []
        seen: set[str] = set()
        # Iterative DFS with an explicit "exit" marker so large CFGs do not
        # hit the Python recursion limit.
        stack: list[tuple[str, bool]] = [(self.entry, False)]
        while stack:
            label, done = stack.pop()
            if done:
                order.append(label)
                continue
            if label in seen:
                continue
            seen.add(label)
            stack.append((label, True))
            for s in reversed(self.succs[label]):
                if s not in seen:
                    stack.append((s, False))
        order.reverse()
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CFG {self.fn.name}: {len(self.succs)} blocks, "
            f"{len(self.reachable)} reachable>"
        )
