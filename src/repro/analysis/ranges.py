"""Interprocedural value-range analysis (interval abstract interpretation).

Every integer register gets an interval ``[lo, hi]`` (either end may be
open).  Intra-procedurally the domain runs forward over the CFG through
:func:`repro.analysis.dataflow.env_fixpoint`, with widening at loop
re-entries; interprocedurally, argument intervals flow into callee
parameters and return intervals flow back into call destinations along
the :mod:`~repro.analysis.callgraph`, iterated to a global fixpoint
(recursive SCCs are widened to ⊤ by the same mechanism instead of
diverging).

What the intervals are *for* here is resource bounding, not general
optimization: :func:`trip_bound` turns the symbolic
:class:`~repro.analysis.loops.CountedLoop` pattern into a concrete
maximum trip count, and :mod:`repro.analysis.footprint` multiplies those
through ``malloc`` sites to bound the per-instance heap.  Anything the
analysis cannot see becomes ⊤ — a missing entry, never a guess.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.cfg import CFG
from repro.analysis.dataflow import env_fixpoint
from repro.analysis.loops import CountedLoop
from repro.ir.instructions import Instr, Opcode, icmp_ops, fcmp_ops
from repro.ir.module import Module
from repro.ir.types import Reg, ScalarType

#: Magnitudes beyond 2**63 are treated as unbounded: cheaper than exact
#: big-interval arithmetic and sound for any i64 interpretation.
_LIMIT = 1 << 63


def _clip(v: int | None, *, low: bool) -> int | None:
    if v is None:
        return None
    if low:
        return None if v < -_LIMIT else v
    return None if v > _LIMIT else v


@dataclass(frozen=True)
class Interval:
    """A (possibly half-open) integer interval; ``None`` = unbounded."""

    lo: int | None = None
    hi: int | None = None

    # -- constructors ---------------------------------------------------
    @staticmethod
    def const(v: int) -> "Interval":
        return Interval(v, v)

    @staticmethod
    def of(lo: int | None, hi: int | None) -> "Interval":
        return Interval(_clip(lo, low=True), _clip(hi, low=False))

    # -- predicates -----------------------------------------------------
    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def as_const(self) -> int | None:
        return self.lo if self.lo is not None and self.lo == self.hi else None

    # -- lattice --------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Keep only the bounds ``other`` did not move past."""
        lo = self.lo if (self.lo is not None and other.lo is not None and other.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and other.hi is not None and other.hi <= self.hi) else None
        return Interval(lo, hi)

    # -- arithmetic -----------------------------------------------------
    def add(self, o: "Interval") -> "Interval":
        lo = None if self.lo is None or o.lo is None else self.lo + o.lo
        hi = None if self.hi is None or o.hi is None else self.hi + o.hi
        return Interval.of(lo, hi)

    def neg(self) -> "Interval":
        return Interval.of(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def sub(self, o: "Interval") -> "Interval":
        return self.add(o.neg())

    def mul(self, o: "Interval") -> "Interval":
        if None in (self.lo, self.hi, o.lo, o.hi):
            # One open end: only the all-non-negative case keeps a bound.
            if (
                self.lo is not None
                and self.lo >= 0
                and o.lo is not None
                and o.lo >= 0
            ):
                return Interval.of(self.lo * o.lo, None)
            return TOP
        prods = [self.lo * o.lo, self.lo * o.hi, self.hi * o.lo, self.hi * o.hi]
        return Interval.of(min(prods), max(prods))

    def min_(self, o: "Interval") -> "Interval":
        lo = None if self.lo is None or o.lo is None else min(self.lo, o.lo)
        his = [h for h in (self.hi, o.hi) if h is not None]
        return Interval.of(lo, min(his) if his else None)

    def max_(self, o: "Interval") -> "Interval":
        los = [lo for lo in (self.lo, o.lo) if lo is not None]
        hi = None if self.hi is None or o.hi is None else max(self.hi, o.hi)
        return Interval.of(max(los) if los else None, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval()
BOOL = Interval(0, 1)
NON_NEG = Interval(0, None)
POSITIVE = Interval(1, None)

_CMP_OPS = icmp_ops() | fcmp_ops()

#: How many times a function summary (parameter or return interval) may be
#: refined before it is widened to break interprocedural cycles.
_SUMMARY_WIDEN_AFTER = 3


class ValueRanges:
    """Module-wide interval solution, queryable at any program point."""

    def __init__(self, module: Module, callgraph: CallGraph | None = None):
        self.module = module
        self.callgraph = callgraph or build_callgraph(module)
        self._cfgs = {name: CFG(fn) for name, fn in module.functions.items()}
        #: fn name -> {reg id -> Interval} at function entry (parameters).
        self._params: dict[str, dict[int, Interval]] = {}
        #: fn name -> joined RETVAL interval (missing = no info yet).
        self._returns: dict[str, Interval] = {}
        #: fn name -> stable block-entry environments.
        self._block_in: dict[str, dict[str, dict[int, Interval]]] = {}
        self._solve()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def at(self, fn: str, label: str, index: int) -> dict[int, Interval]:
        """Environment immediately *before* instruction ``index`` of the
        block — replayed from the stable block entry."""
        env = dict(self._block_in.get(fn, {}).get(label, {}))
        function = self.module.functions[fn]
        for instr in function.blocks[label].instrs[:index]:
            self._step(fn, instr, env)
        return env

    def interval_at(self, fn: str, label: str, index: int, reg: Reg | int) -> Interval:
        rid = reg.id if isinstance(reg, Reg) else reg
        return self.at(fn, label, index).get(rid, TOP)

    def return_interval(self, fn: str) -> Interval:
        return self._returns.get(fn, TOP)

    # ------------------------------------------------------------------
    # the solver
    # ------------------------------------------------------------------
    def _solve(self) -> None:
        updates: dict[tuple[str, object], int] = {}
        order = self.callgraph.topo_order(callees_first=False)
        for _round in range(len(order) + 3):
            new_params: dict[str, dict[int, Interval]] = {}
            new_returns: dict[str, Interval] = {}
            for name in order:
                self._analyze_function(name, new_params, new_returns)
            changed = False
            for name, env in new_params.items():
                merged = self._merge_summary(
                    self._params.get(name, {}), env, updates, ("p", name)
                )
                if merged != self._params.get(name):
                    self._params[name] = merged
                    changed = True
            for name, iv in new_returns.items():
                old = self._returns.get(name)
                # Replace rather than join: round 1 analyzes callees with
                # still-unknown (⊤) parameters, and joining would keep that
                # over-wide first impression forever.  Each round re-derives
                # the summary from scratch, the widening counter below bounds
                # oscillation, and the round loop is hard-capped, so
                # replacement converges to a consistent post-fixpoint.
                nxt = iv
                key = ("r", name)
                if old is not None and nxt != old:
                    updates[key] = updates.get(key, 0) + 1
                    if updates[key] > _SUMMARY_WIDEN_AFTER:
                        nxt = old.widen(nxt)
                if nxt != old:
                    self._returns[name] = nxt
                    changed = True
            if not changed:
                break

    def _merge_summary(self, old, new, updates, key_base) -> dict[int, Interval]:
        merged: dict[int, Interval] = {}
        for rid in old.keys() & new.keys():
            o, n = old[rid], new[rid]
            nxt = o.join(n)
            if nxt != o:
                key = (*key_base, rid)
                updates[key] = updates.get(key, 0) + 1
                if updates[key] > _SUMMARY_WIDEN_AFTER:
                    nxt = o.widen(nxt)
            if not nxt.is_top:
                merged[rid] = nxt
        if not old:
            merged = {rid: iv for rid, iv in new.items() if not iv.is_top}
        return merged

    def _analyze_function(self, name: str, new_params, new_returns) -> None:
        fn = self.module.functions[name]
        cfg = self._cfgs[name]
        has_callers = bool(self.callgraph.callers.get(name))
        entry_env = dict(self._params.get(name, {})) if has_callers else {}

        def transfer(label: str, env: dict) -> dict:
            # Summaries are recorded only on the stable replay below, so a
            # mid-fixpoint (still-narrowing) environment never leaks an
            # over-wide argument or return interval into a callee.
            for instr in fn.blocks[label].instrs:
                self._step(name, instr, env)
            return env

        self._block_in[name] = env_fixpoint(
            cfg,
            transfer,
            Interval.join,
            entry_env=entry_env,
            widen_value=Interval.widen,
            is_top=lambda v: v.is_top,
        )
        # One deterministic replay over the stable solution so call-site
        # argument and return contributions come from final environments.
        for label in cfg.rpo:
            env = dict(self._block_in[name].get(label, {}))
            for instr in fn.blocks[label].instrs:
                self._step(name, instr, env, new_params, new_returns)

    # ------------------------------------------------------------------
    # abstract semantics
    # ------------------------------------------------------------------
    def _step(
        self,
        fname: str,
        instr: Instr,
        env: dict[int, Interval],
        new_params=None,
        new_returns=None,
    ) -> None:
        op = instr.op
        if op is Opcode.CALL and new_params is not None:
            callee = self.module.functions.get(instr.callee)
            if callee is not None:
                sink = new_params.setdefault(callee.name, {})
                for preg, arg in zip(callee.param_regs, instr.args):
                    if preg.ty is not ScalarType.I64:
                        continue
                    iv = self._operand(arg, env)
                    sink[preg.id] = iv if preg.id not in sink else sink[preg.id].join(iv)
        if op is Opcode.RETVAL and new_returns is not None and instr.args:
            iv = self._operand(instr.args[0], env)
            old = new_returns.get(fname)
            new_returns[fname] = iv if old is None else old.join(iv)

        dest = instr.dest
        if dest is None:
            return
        if dest.ty is not ScalarType.I64:
            env.pop(dest.id, None)
            return
        iv = self._eval(instr, env)
        if iv.is_top:
            env.pop(dest.id, None)
        else:
            env[dest.id] = iv

    def _operand(self, arg, env: dict[int, Interval]) -> Interval:
        if isinstance(arg, Reg):
            return env.get(arg.id, TOP)
        if isinstance(arg, int):
            return Interval.const(arg)
        return TOP

    def _eval(self, instr: Instr, env: dict[int, Interval]) -> Interval:
        op = instr.op
        g = lambda i: self._operand(instr.args[i], env)  # noqa: E731

        if op is Opcode.MOVI:
            return Interval.const(int(instr.imm))
        if op is Opcode.MOV:
            return g(0)
        if op is Opcode.ADD:
            return g(0).add(g(1))
        if op is Opcode.SUB:
            return g(0).sub(g(1))
        if op is Opcode.MUL:
            return g(0).mul(g(1))
        if op is Opcode.INEG:
            return g(0).neg()
        if op is Opcode.IMIN:
            return g(0).min_(g(1))
        if op is Opcode.IMAX:
            return g(0).max_(g(1))
        if op is Opcode.SELECT:
            return g(1).join(g(2))
        if op in _CMP_OPS:
            return BOOL
        if op is Opcode.AND:
            a, b = g(0), g(1)
            for mask, other in ((a, b), (b, a)):
                c = mask.as_const
                if c is not None and c >= 0:
                    # x & c with c >= 0 keeps only c's bits: 0..c.
                    return Interval(0, c)
            if (a.lo or -1) >= 0 and (b.lo or -1) >= 0:
                his = [h for h in (a.hi, b.hi) if h is not None]
                return Interval.of(0, min(his) if his else None)
            return TOP
        if op is Opcode.SREM:
            c = g(1).as_const
            if c is not None and c != 0:
                m = abs(c) - 1
                lo = 0 if (g(0).lo or -1) >= 0 else -m
                return Interval(lo, m)
            return TOP
        if op is Opcode.SDIV:
            a, c = g(0), g(1).as_const
            if c is not None and c > 0 and a.lo is not None and a.lo >= 0:
                return Interval.of(0, None if a.hi is None else a.hi // c)
            return TOP
        if op is Opcode.SHL:
            a, s = g(0), g(1).as_const
            if s is not None and 0 <= s <= 62:
                return a.mul(Interval.const(1 << s))
            return TOP
        if op is Opcode.ASHR:
            a, s = g(0), g(1).as_const
            if s is not None and s >= 0:
                return Interval.of(
                    None if a.lo is None else a.lo >> s,
                    None if a.hi is None else a.hi >> s,
                )
            return TOP
        if op in (Opcode.TID, Opcode.LANEID, Opcode.CTAID, Opcode.INSTANCE):
            return NON_NEG
        if op in (Opcode.NTID, Opcode.NCTAID):
            return POSITIVE
        if op is Opcode.KPARAM:
            # Parameter 0 is the instance's argument count (non-negative);
            # the rest are device addresses.
            return NON_NEG if instr.imm == 0 else TOP
        if op in (Opcode.SHFL_DOWN, Opcode.SHFL_IDX):
            # Another lane's copy of the same register: the environment is
            # lane-agnostic (lane-variant sources are already intervals over
            # all lanes), so the operand's interval covers every lane.
            return g(0)
        if op is Opcode.CALL:
            if instr.callee in self.module.functions:
                return self._returns.get(instr.callee, TOP)
            return TOP
        return TOP


def trip_bound(vr: ValueRanges, fn: str, counted: CountedLoop) -> int | None:
    """Maximum trip count of a counted loop, or None when unbounded.

    Up-counting (``step > 0``): trips is at most
    ``ceil((hi(bound) - lo(init)) / step)``, plus one for a non-strict
    compare; symmetrically for down-counting.  Requires the bound's
    closing end and the init's opening end to be finite.
    """
    header = counted.loop.header
    env = vr._block_in.get(fn, {}).get(header, {})
    bound_iv = env.get(counted.bound.id, TOP)
    if isinstance(counted.init, int):
        init_iv = Interval.const(counted.init)
    elif isinstance(counted.init, Reg):
        init_iv = env.get(counted.init.id, TOP)
    else:
        init_iv = TOP

    slack = 0 if counted.strict else 1
    if counted.step > 0:
        if bound_iv.hi is None or init_iv.lo is None:
            return None
        span = bound_iv.hi - init_iv.lo + slack
        step = counted.step
    else:
        if bound_iv.lo is None or init_iv.hi is None:
            return None
        span = init_iv.hi - bound_iv.lo + slack
        step = -counted.step
    return max(0, -(-span // step))


__all__ = ["BOOL", "Interval", "NON_NEG", "POSITIVE", "TOP", "ValueRanges", "trip_bound"]
