"""Static safety certificates for lowered kernels.

An abstract interpretation over the lowered register machine
(:class:`~repro.runtime.machine.LoweredKernel`) that tries to discharge,
per memory/trap site, the checks the execution backends otherwise perform
dynamically:

* **null**: the effective address never lands in the guard page
  (``addr >= NULL_GUARD``);
* **align**: the address is a multiple of the element size;
* **bounds**: the access stays inside its allocation's static extent
  (heap blocks via the device ``malloc`` contract, globals via their
  declared size, stack blocks via the rounded ``salloc`` size, and the
  launcher's argc/argv/ret marshalling tables);
* **trap**: ``SDIV``/``SREM`` divisors are provably non-zero and
  ``FPTOSI`` operands provably finite.

The result is a :class:`SafetyCertificate` per kernel: one
:class:`SiteProof` per site with a PROVEN / UNPROVEN / DISPROVEN verdict
per check plus a witness string.  The compiled backend consults the
certificate to emit guard-free straight-line code for proven sites
(``docs/safety.md``); DISPROVEN sites surface as ``static-oob`` /
``static-trap`` lint findings and refuse to launch without
``allow_unsafe``.

Abstract domain
---------------
Integer registers hold linear expressions ``const + sum(coeff * origin)``
over *origins* — stable symbolic unknowns keyed by defining pc (loads,
``salloc``, heap ``atomic_add``), by parameter index, by global symbol,
by lane-identity opcode, or by ``(leader, reg)`` for join merges.  Each
origin carries an interval, a value alignment, and (for allocation
origins) a *space* tag with a symbolic extent.  Branch edges refine the
state with linear *facts* (``form -> interval``) consulted by a
depth-bounded linear-combination evaluator, which is what proves e.g.
``8*i + 8 <= 8*n`` from the loop guard ``i < n``.

Soundness notes (why stable per-pc origins are sound): any value that
survives a loop back edge passes the loop-header join, where differing
incoming expressions collapse into a fresh merge origin, so a register
can only claim equality with a per-pc origin inside the single iteration
that defined it.  Facts and comparisons mentioning an origin are killed
when its defining pc re-executes, and every fact mentioning a leader's
merge origins is killed at that leader's join.

Trusted platform contracts (documented in ``docs/safety.md``):

* ``DeviceAllocator`` returns 256-aligned addresses ``>= NULL_GUARD``;
* the device ``malloc`` bumps ``__heap_cursor`` by a 256-rounded size and
  traps on exhaustion, so on the non-trapping path the fetched cursor is
  a 256-aligned in-heap block of the requested extent;
* ``salloc`` rounds to 8 bytes and traps on stack overflow (the device
  rounds ``stack_bytes`` to a multiple of 8);
* the loader marshals ``Argc[NI] | ArgvPtr[NI] | Ret[NI]`` tables from a
  256-aligned base, argv vectors are NULL-terminated (``argc + 1``
  slots), and every marshalled string pointer is non-null.
"""

from __future__ import annotations

import enum
import hashlib
import math
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.ranges import Interval
from repro.gpu.memory import NULL_GUARD
from repro.ir.instructions import Opcode

#: Bump on any change to the abstract domain, the contracts, or the
#: verdict semantics: the compile cache folds this into its pipeline
#: fingerprint, so stale certificates become structurally unreachable.
ANALYZER_VERSION = 1

#: Module metadata key under which certificates are stamped
#: (``dict[kernel_name, SafetyCertificate]``).
SAFETY_META = "safety"

_MEM_KINDS = ("load", "store", "atomic")
_TRAP_KINDS = ("sdiv", "srem", "fptosi")


class Verdict(enum.IntEnum):
    """Per-check outcome of the safety analysis."""

    DISPROVEN = 0  # statically proven to violate the check
    UNPROVEN = 1  # could not be decided either way
    PROVEN = 2  # statically proven safe


@dataclass(frozen=True)
class SiteProof:
    """Verdicts for one memory or trap site (keyed by lowered pc)."""

    pc: int
    kind: str  # "load" | "store" | "atomic" | "sdiv" | "srem" | "fptosi"
    size: int  # element size for memory sites, 0 for trap sites
    null: Verdict = Verdict.UNPROVEN
    align: Verdict = Verdict.UNPROVEN
    bounds: Verdict = Verdict.UNPROVEN
    trap: Verdict = Verdict.UNPROVEN
    witness: str = ""
    loc: tuple | None = None

    @property
    def is_mem(self) -> bool:
        return self.kind in _MEM_KINDS

    @property
    def verdict(self) -> Verdict:
        """Overall verdict: DISPROVEN if any check fails statically;
        PROVEN when the dynamic guard can be elided; else UNPROVEN."""
        checks = (
            (self.null, self.align, self.bounds)
            if self.is_mem
            else (self.trap,)
        )
        if Verdict.DISPROVEN in checks:
            return Verdict.DISPROVEN
        if self.is_mem:
            if self.null is Verdict.PROVEN and self.align is Verdict.PROVEN:
                return Verdict.PROVEN
            return Verdict.UNPROVEN
        return self.trap

    @property
    def guard_free(self) -> bool:
        """The null/alignment pre-check may be elided."""
        return self.is_mem and self.verdict is Verdict.PROVEN

    @property
    def index_free(self) -> bool:
        """Additionally in-bounds: the end-of-memory check may be elided."""
        return self.guard_free and self.bounds is Verdict.PROVEN

    def to_dict(self) -> dict:
        d = {
            "pc": self.pc,
            "kind": self.kind,
            "verdict": self.verdict.name,
            "witness": self.witness,
        }
        if self.is_mem:
            d["size"] = self.size
            d["null"] = self.null.name
            d["align"] = self.align.name
            d["bounds"] = self.bounds.name
        else:
            d["trap"] = self.trap.name
        if self.loc is not None:
            d["loc"] = list(self.loc)
        return d


@dataclass
class SafetyCertificate:
    """Per-kernel safety proof: one :class:`SiteProof` per site."""

    kernel: str
    analyzer_version: int = ANALYZER_VERSION
    sites: dict[int, SiteProof] = field(default_factory=dict)

    def mem_sites(self) -> list[SiteProof]:
        return [p for p in self.sites.values() if p.is_mem]

    def trap_sites(self) -> list[SiteProof]:
        return [p for p in self.sites.values() if not p.is_mem]

    def disproven(self) -> list[SiteProof]:
        return [
            p
            for p in sorted(self.sites.values(), key=lambda p: p.pc)
            if p.verdict is Verdict.DISPROVEN
        ]

    def proof_for(self, pc: int) -> SiteProof | None:
        return self.sites.get(pc)

    def counts(self) -> dict[str, int]:
        c = {"proven": 0, "unproven": 0, "disproven": 0}
        for p in self.sites.values():
            c[p.verdict.name.lower()] += 1
        return c

    def summary(self) -> dict:
        mem = self.mem_sites()
        guard_free = sum(1 for p in mem if p.guard_free)
        index_free = sum(1 for p in mem if p.index_free)
        out = {
            "kernel": self.kernel,
            "analyzer_version": self.analyzer_version,
            "sites": len(self.sites),
            "mem_sites": len(mem),
            "trap_sites": len(self.sites) - len(mem),
            "guard_free": guard_free,
            "index_free": index_free,
            "coverage": (guard_free / len(mem)) if mem else 1.0,
        }
        out.update(self.counts())
        return out

    def to_dict(self) -> dict:
        d = self.summary()
        d["site_proofs"] = [
            self.sites[pc].to_dict() for pc in sorted(self.sites)
        ]
        return d


# ---------------------------------------------------------------------------
# linear expressions over origins
# ---------------------------------------------------------------------------


class _Expr:
    """``const + sum(coeff * origin)`` with integer coefficients."""

    __slots__ = ("const", "terms")

    def __init__(self, const: int = 0, terms: dict | None = None):
        self.const = const
        self.terms = terms or {}

    @staticmethod
    def of(key) -> "_Expr":
        return _Expr(0, {key: 1})

    def add_const(self, c: int) -> "_Expr":
        return self if not c else _Expr(self.const + c, dict(self.terms))

    def add(self, other: "_Expr") -> "_Expr":
        terms = dict(self.terms)
        for k, c in other.terms.items():
            n = terms.get(k, 0) + c
            if n:
                terms[k] = n
            else:
                terms.pop(k, None)
        return _Expr(self.const + other.const, terms)

    def sub(self, other: "_Expr") -> "_Expr":
        return self.add(other.scale(-1))

    def scale(self, k: int) -> "_Expr":
        if k == 0:
            return _Expr(0)
        return _Expr(self.const * k, {o: c * k for o, c in self.terms.items()})

    def drop(self, key) -> "_Expr":
        terms = dict(self.terms)
        terms.pop(key, None)
        return _Expr(self.const, terms)

    @property
    def is_const(self) -> bool:
        return not self.terms

    def form(self) -> tuple:
        """Canonical terms-only key (const stripped)."""
        return tuple(sorted(self.terms.items(), key=lambda kv: repr(kv[0])))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, _Expr)
            and self.const == other.const
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.const, self.form()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c}*{o}" for o, c in self.terms.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


_ZERO = _Expr(0)
_UNK_F = (None, None)  # unknown float range


@dataclass
class _Origin:
    """One symbolic unknown: interval, value alignment, allocation tag."""

    name: str
    iv: Interval
    align: int = 1
    space: tuple | None = None  # allocation tag for bounds proofs
    extent: _Expr | None = None  # symbolic byte size of the allocation
    argc_link: object = None  # argc origin key for argv vectors


def _iscale(iv: Interval, k: int) -> Interval:
    if k == 0:
        return Interval.const(0)
    if k > 0:
        return Interval.of(
            None if iv.lo is None else iv.lo * k,
            None if iv.hi is None else iv.hi * k,
        )
    return Interval.of(
        None if iv.hi is None else iv.hi * k,
        None if iv.lo is None else iv.lo * k,
    )


def _meet(a: Interval, b: Interval) -> Interval:
    lo = a.lo if b.lo is None else (b.lo if a.lo is None else max(a.lo, b.lo))
    hi = a.hi if b.hi is None else (b.hi if a.hi is None else min(a.hi, b.hi))
    return Interval(lo, hi)


class _State:
    """Abstract machine state at one program point."""

    __slots__ = ("ir", "fr", "facts", "neqz", "cmp")

    def __init__(self, ir=None, fr=None, facts=None, neqz=None, cmp=None):
        self.ir: dict = ir if ir is not None else {}
        self.fr: dict = fr if fr is not None else {}
        self.facts: dict = facts if facts is not None else {}
        self.neqz: set = neqz if neqz is not None else set()
        self.cmp: dict = cmp if cmp is not None else {}

    def copy(self) -> "_State":
        return _State(
            dict(self.ir),
            dict(self.fr),
            dict(self.facts),
            set(self.neqz),
            dict(self.cmp),
        )

    def same(self, other: "_State") -> bool:
        return (
            self.ir == other.ir
            and self.fr == other.fr
            and self.facts == other.facts
            and self.neqz == other.neqz
            and self.cmp == other.cmp
        )


def _mentions(form: tuple, key) -> bool:
    return any(k == key for k, _ in form)


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------

_CMP_OPS = frozenset(
    {
        Opcode.ICMP_EQ,
        Opcode.ICMP_NE,
        Opcode.ICMP_SLT,
        Opcode.ICMP_SLE,
        Opcode.ICMP_SGT,
        Opcode.ICMP_SGE,
    }
)

_TERMINATORS = frozenset(
    {Opcode.BR, Opcode.CBR, Opcode.RET, Opcode.RETVAL, Opcode.TRAP}
)

#: fixpoint bail-out: beyond this many full RPO sweeps the analyzer gives
#: up and reports every site UNPROVEN (sound, just unhelpful).
_MAX_SWEEPS = 48


class _KernelAnalyzer:
    def __init__(self, kern, *, globals_info: dict, wrapper: bool):
        self.kern = kern
        self.code = kern.code
        self.globals_info = globals_info
        self.wrapper = wrapper
        self.origins: dict = {}
        self.states: dict[int, _State] = {}
        self.visits: dict[int, int] = {}
        self._argc_at: dict = {}  # delta (form, const) -> argc origin key
        #: what each merge origin currently denotes: a concrete expr if
        #: the last join there collapsed the phi, absent if it is a real
        #: merge.  Incoming edge exprs are normalized through this table
        #: so one-sweep-stale echoes of a phi key resolve to its current
        #: identity instead of ping-ponging between nested headers.
        self.phi_val: dict = {}
        self._dirty = False
        self._leaders = self._find_leaders()
        self._rpo_index = {pc: i for i, pc in enumerate(self._leaders)}
        self._live_i: dict[int, int] = {}
        self._live_f: dict[int, int] = {}
        self._liveness()

    # -- cfg ------------------------------------------------------------
    def _find_leaders(self) -> list[int]:
        leaders = {0}
        for pc, li in enumerate(self.code):
            if li.op in (Opcode.BR, Opcode.CBR):
                leaders.update(li.targets)
                leaders.add(pc + 1)
            elif li.op in (Opcode.RET, Opcode.RETVAL, Opcode.TRAP):
                leaders.add(pc + 1)
        return sorted(pc for pc in leaders if pc < len(self.code))

    def _range_end(self, leader: int) -> int:
        i = self._rpo_index[leader]
        if i + 1 < len(self._leaders):
            return self._leaders[i + 1]
        return len(self.code)

    def _liveness(self) -> None:
        """Per-block live-in register bitmasks (one int per bank).

        Joins only fold registers live at the join: wrapper kernels
        write hundreds of registers but only a handful cross any given
        block boundary, so pruning dead ones shrinks every merge, copy
        and convergence comparison by an order of magnitude.
        """
        n = len(self._leaders)
        succs: list[list[int]] = []
        iuse = [0] * n
        idef = [0] * n
        fuse = [0] * n
        fdef = [0] * n
        for bi, leader in enumerate(self._leaders):
            end = self._range_end(leader)
            term = None
            for pc in range(leader, end):
                li = self.code[pc]
                for isf, idx in li.args:
                    bit = 1 << idx
                    if isf:
                        if not fdef[bi] & bit:
                            fuse[bi] |= bit
                    elif not idef[bi] & bit:
                        iuse[bi] |= bit
                if li.dest >= 0:
                    if li.dest_f:
                        fdef[bi] |= 1 << li.dest
                    else:
                        idef[bi] |= 1 << li.dest
                if li.op in _TERMINATORS:
                    term = li
                    break
            if term is None:
                succs.append([end] if end < len(self.code) else [])
            elif term.op is Opcode.BR:
                succs.append([term.targets[0]])
            elif term.op is Opcode.CBR:
                succs.append(list(term.targets))
            else:
                succs.append([])  # RET / RETVAL / TRAP
        live_i = [0] * n
        live_f = [0] * n
        idx_of = self._rpo_index
        changed = True
        while changed:
            changed = False
            for bi in range(n - 1, -1, -1):
                out_i = out_f = 0
                for s in succs[bi]:
                    si = idx_of[s]
                    out_i |= live_i[si]
                    out_f |= live_f[si]
                ni = iuse[bi] | (out_i & ~idef[bi])
                nf = fuse[bi] | (out_f & ~fdef[bi])
                if ni != live_i[bi] or nf != live_f[bi]:
                    live_i[bi], live_f[bi] = ni, nf
                    changed = True
        for bi, leader in enumerate(self._leaders):
            self._live_i[leader] = live_i[bi]
            self._live_f[leader] = live_f[bi]

    # -- origins --------------------------------------------------------
    def _ensure(self, key, **attrs) -> object:
        """Create or refresh an origin; flags the fixpoint when its
        attributes changed (extents/intervals converge with the states)."""
        org = self.origins.get(key)
        if org is None:
            self.origins[key] = _Origin(**attrs)
            self._dirty = True
        else:
            for k, v in attrs.items():
                if k == "name":
                    continue
                if getattr(org, k) != v:
                    setattr(org, k, v)
                    self._dirty = True
        return key

    def _kill_origin(self, st: _State, key) -> None:
        """Drop facts/comparisons that talk about a redefined origin."""
        st.facts = {
            f: iv for f, iv in st.facts.items() if not _mentions(f, key)
        }
        st.neqz = {fc for fc in st.neqz if not _mentions(fc[0], key)}
        st.cmp = {
            r: c
            for r, c in st.cmp.items()
            if r != key and key not in c[1].terms and key not in c[2].terms
        }

    # -- evaluation -----------------------------------------------------
    def _eval(self, e: _Expr) -> Interval:
        iv = Interval.const(e.const)
        for key, coeff in e.terms.items():
            org = self.origins.get(key)
            term = (
                _iscale(org.iv, coeff) if org is not None else Interval()
            )
            iv = iv.add(term)
        return iv

    def _eval_wf(self, e: _Expr, facts: dict, depth: int = 2) -> Interval:
        """Evaluate with fact refinement: for each fact ``form in itv``
        try integer multiples ``e = lam*form + rest``."""
        best = self._eval(e)
        if depth <= 0 or not e.terms or not facts:
            return best
        for form, fiv in facts.items():
            for key, fcoeff in form:
                c = e.terms.get(key)
                if not c or c % fcoeff:
                    continue
                lam = c // fcoeff
                rest = e.sub(_Expr(0, dict(form)).scale(lam))
                cand = _iscale(fiv, lam).add(
                    self._eval_wf(rest, facts, depth - 1)
                )
                best = _meet(best, cand)
        return best

    def _value_align(self, e: _Expr) -> int:
        """Largest known a with value = 0 (mod a)."""
        g = 0
        for key, coeff in e.terms.items():
            org = self.origins.get(key)
            a = org.align if org is not None else 1
            g = math.gcd(g, abs(coeff) * a)
        if e.terms and g == 1:
            return 1
        return math.gcd(g, abs(e.const)) or (abs(e.const) or 1)

    def _expr_of(self, st: _State, arg) -> _Expr:
        is_f, idx = arg
        if is_f:
            return _Expr.of(("f", idx))  # float-typed: opaque, no origin
        return st.ir.get(idx, _ZERO)

    def _frange_of(self, st: _State, arg):
        is_f, idx = arg
        if not is_f:
            return _UNK_F
        return st.fr.get(idx, (0.0, 0.0))

    # -- facts ----------------------------------------------------------
    def _add_fact(self, st: _State, diff: _Expr, iv: Interval) -> None:
        form = diff.form()
        if not form:
            return
        shifted = iv.sub(Interval.const(diff.const))
        prev = st.facts.get(form)
        st.facts[form] = shifted if prev is None else _meet(prev, shifted)

    def _edge_facts(self, st: _State, cond_reg: int, taken: bool) -> None:
        rec = st.cmp.get(cond_reg)
        if rec is None:
            return
        op, lhs, rhs = rec
        diff = lhs.sub(rhs)
        # dereference materialized-boolean tests: ``CBR (b != 0)`` where
        # ``b`` is itself a comparison result chains to the underlying
        # relation (the frontend emits these for every if/while)
        for _ in range(4):
            if op not in (Opcode.ICMP_EQ, Opcode.ICMP_NE):
                break
            if len(diff.terms) != 1:
                break
            ((k, coeff),) = diff.terms.items()
            inner = st.cmp.get(k)
            org = self.origins.get(k)
            if (
                inner is None
                or coeff not in (1, -1)
                or org is None
                or org.iv.lo is None
                or org.iv.lo < 0
                or org.iv.hi is None
                or org.iv.hi > 1
            ):
                break
            if coeff == -1:
                diff = diff.scale(-1)
            target = -diff.const  # the 0/1 value k is compared against
            if target not in (0, 1):
                break
            if_true = (target == 0) == (op is Opcode.ICMP_NE)
            taken = if_true if taken else not if_true
            op, lhs, rhs = inner
            diff = lhs.sub(rhs)
        if op is Opcode.ICMP_EQ:
            if taken:
                self._add_fact(st, diff, Interval.const(0))
            else:
                st.neqz.add((diff.form(), diff.const))
        elif op is Opcode.ICMP_NE:
            if taken:
                st.neqz.add((diff.form(), diff.const))
            else:
                self._add_fact(st, diff, Interval.const(0))
        elif op is Opcode.ICMP_SLT:
            self._add_fact(
                st, diff, Interval(None, -1) if taken else Interval(0, None)
            )
        elif op is Opcode.ICMP_SLE:
            self._add_fact(
                st, diff, Interval(None, 0) if taken else Interval(1, None)
            )
        elif op is Opcode.ICMP_SGT:
            self._add_fact(
                st, diff, Interval(1, None) if taken else Interval(None, 0)
            )
        elif op is Opcode.ICMP_SGE:
            self._add_fact(
                st, diff, Interval(0, None) if taken else Interval(None, -1)
            )

    # -- entry state ----------------------------------------------------
    def _entry_state(self) -> _State:
        st = _State()
        if self.wrapper:
            # launch contract of the marshalled wrapper kernels (KPARAM):
            # P0=NI (>=1), P1..P3=argc/argv/ret tables of 8*NI bytes from
            # one 256-aligned allocation, P4=total slots (>=1)
            self._ensure(("param", 0), name="NI", iv=Interval(1, None))
            for i, tag in ((1, "argc"), (2, "argv"), (3, "ret")):
                self._ensure(
                    ("param", i),
                    name=f"{tag}_table",
                    iv=Interval(NULL_GUARD, None),
                    align=256 if i == 1 else 8,
                    space=("table", tag),
                    extent=_Expr(0, {("param", 0): 8}),
                )
            self._ensure(("param", 4), name="nslots", iv=Interval(1, None))
        for i, (is_f, idx) in enumerate(self.kern.param_slots):
            if is_f:
                st.fr[idx] = _UNK_F
                continue
            key = ("arg", i)
            self._ensure(key, name=f"arg{i}", iv=Interval())
            st.ir[idx] = _Expr.of(key)
        return st

    # -- transfer -------------------------------------------------------
    def _set_ireg(self, st: _State, li, expr: _Expr) -> None:
        if li.dest >= 0 and not li.dest_f:
            st.ir[li.dest] = expr
            st.cmp.pop(li.dest, None)

    def _set_freg(self, st: _State, li, rng) -> None:
        if li.dest >= 0 and li.dest_f:
            st.fr[li.dest] = rng

    def _opaque(
        self,
        st: _State,
        li,
        pc: int,
        iv: Interval,
        align: int = 1,
        space: tuple | None = None,
        extent: _Expr | None = None,
        argc_link=None,
    ):
        key = ("pc", pc)
        self._kill_origin(st, key)
        self._ensure(
            key,
            name=f"v{pc}",
            iv=iv,
            align=align,
            space=space,
            extent=extent,
            argc_link=argc_link,
        )
        self._set_ireg(st, li, _Expr.of(key))
        return key

    def _flow(self, leader: int, st: _State, record=None):
        """Transfer a straight-line range; returns [(succ_leader, state)].

        With ``record`` (a dict) the walk also emits a SiteProof per
        memory/trap site from the converged state."""
        end = self._range_end(leader)
        pc = leader
        while pc < end:
            li = self.code[pc]
            op = li.op
            if op in _TERMINATORS:
                if op is Opcode.BR:
                    return [(li.targets[0], st)]
                if op is Opcode.CBR:
                    cond = li.args[0][1]
                    st_t, st_f = st, st.copy()
                    self._edge_facts(st_t, cond, True)
                    self._edge_facts(st_f, cond, False)
                    return [(li.targets[0], st_t), (li.targets[1], st_f)]
                return []  # RET / RETVAL / TRAP end the path
            self._step(st, pc, li, record)
            pc += 1
        return [(end, st)] if end < len(self.code) else []

    def _step(self, st: _State, pc: int, li, record) -> None:
        op = li.op

        if op is Opcode.MOVI:
            self._set_ireg(st, li, _Expr(int(li.imm)))
        elif op is Opcode.MOV:
            if li.dest_f:
                self._set_freg(st, li, self._frange_of(st, li.args[0]))
            else:
                self._set_ireg(st, li, self._expr_of(st, li.args[0]))
        elif op is Opcode.ADD:
            a = self._expr_of(st, li.args[0])
            b = self._expr_of(st, li.args[1])
            self._set_ireg(st, li, a.add(b))
        elif op is Opcode.SUB:
            a = self._expr_of(st, li.args[0])
            b = self._expr_of(st, li.args[1])
            self._set_ireg(st, li, a.sub(b))
        elif op is Opcode.MUL:
            a = self._expr_of(st, li.args[0])
            b = self._expr_of(st, li.args[1])
            if b.is_const:
                self._set_ireg(st, li, a.scale(b.const))
            elif a.is_const:
                self._set_ireg(st, li, b.scale(a.const))
            else:
                iv = self._eval_wf(a, st.facts).mul(
                    self._eval_wf(b, st.facts)
                )
                self._opaque(st, li, pc, iv)
        elif op is Opcode.INEG:
            self._set_ireg(st, li, self._expr_of(st, li.args[0]).scale(-1))
        elif op is Opcode.BNOT:
            a = self._expr_of(st, li.args[0])
            self._set_ireg(st, li, a.scale(-1).add_const(-1))
        elif op in (Opcode.SDIV, Opcode.SREM):
            self._trap_site(st, pc, li, record)
            a = self._eval_wf(self._expr_of(st, li.args[0]), st.facts)
            b = self._eval_wf(self._expr_of(st, li.args[1]), st.facts)
            iv = Interval()
            if a.lo is not None and a.lo >= 0 and b.lo is not None and b.lo >= 1:
                iv = (
                    Interval.of(0, a.hi)
                    if op is Opcode.SDIV
                    else Interval.of(
                        0,
                        None
                        if b.hi is None
                        else (b.hi - 1 if a.hi is None else min(a.hi, b.hi - 1)),
                    )
                )
            self._opaque(st, li, pc, iv)
        elif op is Opcode.SHL:
            a = self._expr_of(st, li.args[0])
            b = self._expr_of(st, li.args[1])
            if b.is_const and 0 <= b.const < 63:
                self._set_ireg(st, li, a.scale(1 << b.const))
            else:
                self._opaque(st, li, pc, Interval())
        elif op is Opcode.ASHR:
            a = self._expr_of(st, li.args[0])
            b = self._expr_of(st, li.args[1])
            if b.is_const and 0 <= b.const < 63:
                k = 1 << b.const
                av = self._eval_wf(a, st.facts)
                iv = Interval.of(
                    None if av.lo is None else av.lo // k,
                    None if av.hi is None else av.hi // k,
                )
                key = self._opaque(st, li, pc, iv)
                # floor-division invariant: a - k*dest in [0, k-1]
                self._add_fact(
                    st,
                    a.sub(_Expr.of(key).scale(k)),
                    Interval(0, k - 1),
                )
            else:
                self._opaque(st, li, pc, Interval())
        elif op is Opcode.AND:
            a = self._eval_wf(self._expr_of(st, li.args[0]), st.facts)
            b = self._eval_wf(self._expr_of(st, li.args[1]), st.facts)
            iv = Interval()
            nn_a = a.lo is not None and a.lo >= 0
            nn_b = b.lo is not None and b.lo >= 0
            if nn_a or nn_b:
                his = [
                    h
                    for h, nn in ((a.hi, nn_a), (b.hi, nn_b))
                    if nn and h is not None
                ]
                iv = Interval.of(0, min(his) if his else None)
            self._opaque(st, li, pc, iv)
        elif op in (Opcode.OR, Opcode.XOR):
            a = self._eval_wf(self._expr_of(st, li.args[0]), st.facts)
            b = self._eval_wf(self._expr_of(st, li.args[1]), st.facts)
            iv = Interval()
            if (
                a.lo is not None
                and a.lo >= 0
                and b.lo is not None
                and b.lo >= 0
            ):
                hi = None if a.hi is None or b.hi is None else a.hi + b.hi
                iv = Interval.of(0, hi)
            self._opaque(st, li, pc, iv)
        elif op in (Opcode.IMIN, Opcode.IMAX):
            a = self._expr_of(st, li.args[0])
            b = self._expr_of(st, li.args[1])
            av = self._eval_wf(a, st.facts)
            bv = self._eval_wf(b, st.facts)
            iv = av.min_(bv) if op is Opcode.IMIN else av.max_(bv)
            key = self._opaque(st, li, pc, iv)
            de = _Expr.of(key)
            bound = (
                Interval(None, 0) if op is Opcode.IMIN else Interval(0, None)
            )
            self._add_fact(st, de.sub(a), bound)
            self._add_fact(st, de.sub(b), bound)
        elif op is Opcode.SELECT:
            if li.dest_f:
                a = self._frange_of(st, li.args[1])
                b = self._frange_of(st, li.args[2])
                lo = None if a[0] is None or b[0] is None else min(a[0], b[0])
                hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
                self._set_freg(st, li, (lo, hi))
            else:
                av = self._eval_wf(
                    self._expr_of(st, li.args[1]), st.facts
                )
                bv = self._eval_wf(
                    self._expr_of(st, li.args[2]), st.facts
                )
                self._opaque(st, li, pc, av.join(bv))
        elif op in _CMP_OPS:
            a = self._expr_of(st, li.args[0])
            b = self._expr_of(st, li.args[1])
            key = self._opaque(st, li, pc, Interval(0, 1))
            if li.dest >= 0:
                # snapshot keyed by register AND by the boolean origin:
                # the frontend materializes booleans, so branches often
                # test ``cmp != 0`` and the origin key lets _edge_facts
                # chain back to the underlying relation
                st.cmp[li.dest] = (op, a, b)
                st.cmp[key] = (op, a, b)
        elif op in (
            Opcode.FCMP_EQ,
            Opcode.FCMP_NE,
            Opcode.FCMP_LT,
            Opcode.FCMP_LE,
            Opcode.FCMP_GT,
            Opcode.FCMP_GE,
        ):
            self._opaque(st, li, pc, Interval(0, 1))
        elif op is Opcode.GADDR:
            key = ("g", li.sym)
            nbytes = self.globals_info.get(li.sym)
            self._ensure(
                key,
                name=li.sym,
                iv=Interval(NULL_GUARD, None),
                align=8,
                space=("global", li.sym),
                extent=None if nbytes is None else _Expr(nbytes),
            )
            self._set_ireg(st, li, _Expr.of(key))
        elif op is Opcode.SALLOC:
            size = (int(li.imm) + 7) & ~7
            self._opaque(
                st,
                li,
                pc,
                Interval(NULL_GUARD, None),
                align=8,
                space=("stack", pc),
                extent=_Expr(size),
            )
        elif op is Opcode.KPARAM:
            # non-wrapper kernels bind raw launch parameters
            key = ("param", int(li.imm))
            if key not in self.origins:
                self._ensure(key, name=f"param{li.imm}", iv=Interval())
            self._set_ireg(st, li, _Expr.of(key))
        elif op is Opcode.LOAD:
            self._load(st, pc, li, record)
        elif op is Opcode.STORE:
            self._mem_site(st, pc, li, "store", record)
        elif op is Opcode.ATOMIC_ADD:
            self._mem_site(st, pc, li, "atomic", record)
            addr = self._expr_of(st, li.args[0])
            if (
                addr.const == 0
                and addr.terms == {("g", "__heap_cursor"): 1}
            ):
                # device malloc contract: the fetched cursor is a
                # 256-aligned in-heap block of `addend` bytes (malloc
                # traps on exhaustion before the block is ever used)
                addend = self._expr_of(st, li.args[1])
                self._opaque(
                    st,
                    li,
                    pc,
                    Interval(NULL_GUARD, None),
                    align=math.gcd(256, self._value_align(addend)),
                    space=("heap", pc),
                    extent=addend,
                )
            else:
                self._opaque(st, li, pc, Interval())
        elif op is Opcode.ATOMIC_MAX:
            self._mem_site(st, pc, li, "atomic", record)
            self._opaque(st, li, pc, Interval())
        elif op is Opcode.FPTOSI:
            self._trap_site(st, pc, li, record)
            lo, hi = self._frange_of(st, li.args[0])
            iv = Interval()
            if (
                lo is not None
                and hi is not None
                and math.isfinite(lo)
                and math.isfinite(hi)
            ):
                iv = Interval.of(math.floor(lo), math.ceil(hi))
            self._opaque(st, li, pc, iv)
        elif op is Opcode.SITOFP:
            iv = self._eval_wf(self._expr_of(st, li.args[0]), st.facts)
            self._set_freg(
                st,
                li,
                (
                    None if iv.lo is None else float(iv.lo),
                    None if iv.hi is None else float(iv.hi),
                ),
            )
        elif op is Opcode.MOVF:
            v = float(li.imm)
            self._set_freg(st, li, (v, v))
        elif op in (Opcode.FADD, Opcode.FSUB):
            a = self._frange_of(st, li.args[0])
            b = self._frange_of(st, li.args[1])
            if op is Opcode.FSUB:
                b = (
                    None if b[1] is None else -b[1],
                    None if b[0] is None else -b[0],
                )
            self._set_freg(
                st,
                li,
                (
                    None if a[0] is None or b[0] is None else a[0] + b[0],
                    None if a[1] is None or b[1] is None else a[1] + b[1],
                ),
            )
        elif op is Opcode.FMUL:
            a = self._frange_of(st, li.args[0])
            b = self._frange_of(st, li.args[1])
            if None in a or None in b:
                self._set_freg(st, li, _UNK_F)
            else:
                prods = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
                self._set_freg(st, li, (min(prods), max(prods)))
        elif op is Opcode.FNEG:
            a = self._frange_of(st, li.args[0])
            self._set_freg(
                st,
                li,
                (
                    None if a[1] is None else -a[1],
                    None if a[0] is None else -a[0],
                ),
            )
        elif op is Opcode.FABS:
            a = self._frange_of(st, li.args[0])
            if None in a:
                self._set_freg(st, li, (0.0, None))
            else:
                lo = 0.0 if a[0] <= 0.0 <= a[1] else min(abs(a[0]), abs(a[1]))
                self._set_freg(st, li, (lo, max(abs(a[0]), abs(a[1]))))
        elif op in (Opcode.FMIN, Opcode.FMAX):
            a = self._frange_of(st, li.args[0])
            b = self._frange_of(st, li.args[1])
            pick = min if op is Opcode.FMIN else max
            self._set_freg(
                st,
                li,
                (
                    None if a[0] is None or b[0] is None else pick(a[0], b[0]),
                    None if a[1] is None or b[1] is None else pick(a[1], b[1]),
                ),
            )
        elif op in (Opcode.SIN, Opcode.COS):
            a = self._frange_of(st, li.args[0])
            finite = (
                a[0] is not None
                and a[1] is not None
                and math.isfinite(a[0])
                and math.isfinite(a[1])
            )
            self._set_freg(st, li, (-1.0, 1.0) if finite else _UNK_F)
        elif op is Opcode.SQRT:
            a = self._frange_of(st, li.args[0])
            if a[0] is not None and a[0] >= 0.0:
                self._set_freg(
                    st,
                    li,
                    (
                        math.sqrt(a[0]),
                        None
                        if a[1] is None or not math.isfinite(a[1])
                        else math.sqrt(a[1]),
                    ),
                )
            else:
                self._set_freg(st, li, _UNK_F)
        elif li.dest >= 0:
            # anything else with a destination is opaque: FDIV and the
            # remaining transcendentals, RPC results, shuffles, reductions
            if li.dest_f:
                self._set_freg(st, li, _UNK_F)
            else:
                iv = Interval()
                if op in (Opcode.TID, Opcode.CTAID, Opcode.LANEID, Opcode.INSTANCE):
                    key = ("id", op.name)
                    self._ensure(key, name=op.name.lower(), iv=Interval(0, None))
                    self._set_ireg(st, li, _Expr.of(key))
                    return
                if op in (Opcode.NTID, Opcode.NCTAID):
                    key = ("id", op.name)
                    self._ensure(key, name=op.name.lower(), iv=Interval(1, None))
                    self._set_ireg(st, li, _Expr.of(key))
                    return
                self._opaque(st, li, pc, iv)
        # BARRIER / PAR_BEGIN / PAR_END / MEMCPY / MEMSET / RPC-void:
        # no register effects the domain tracks

    # -- memory / trap sites --------------------------------------------
    def _load(self, st: _State, pc: int, li, record) -> None:
        nullv, alignv, boundsv, src = self._mem_site(
            st, pc, li, "load", record
        )
        if li.dest_f:
            self._set_freg(st, li, _UNK_F)
            return
        # provenance contracts for the marshalling tables: only applied
        # to accesses with *proven* bounds (an out-of-extent read could
        # observe arbitrary memory, voiding the marshaller's guarantees)
        org = self.origins.get(src) if src is not None else None
        if boundsv is not Verdict.PROVEN:
            org = None
        addr = self._expr_of(st, li.args[0]).add_const(li.offset)
        if org is not None and org.space == ("table", "argc"):
            delta = addr.drop(src)
            key = self._opaque(st, li, pc, Interval(0, None))
            self._argc_at[(delta.form(), delta.const)] = key
            return
        if org is not None and org.space == ("table", "argv"):
            delta = addr.drop(src)
            argc_key = self._argc_at.get((delta.form(), delta.const))
            if argc_key is not None:
                # NULL-terminated vector: argc + 1 pointer slots
                self._opaque(
                    st,
                    li,
                    pc,
                    Interval(NULL_GUARD, None),
                    align=8,
                    space=("argvec", pc),
                    extent=_Expr(8, {argc_key: 8}),
                    argc_link=argc_key,
                )
                return
        if (
            org is not None
            and org.space is not None
            and org.space[0] == "argvec"
            and org.argc_link is not None
            and boundsv is Verdict.PROVEN
        ):
            # an in-range argv slot (index < argc) is a marshalled,
            # non-null string pointer
            self._opaque(
                st,
                li,
                pc,
                Interval(NULL_GUARD, None),
                space=("argstr", pc),
            )
            return
        self._opaque(st, li, pc, Interval())

    def _mem_site(self, st: _State, pc: int, li, kind: str, record):
        size = li.mty.size if li.mty is not None else 1
        addr = self._expr_of(st, li.args[0]).add_const(li.offset)
        iv = self._eval_wf(addr, st.facts)

        if iv.lo is not None and iv.lo >= NULL_GUARD:
            nullv = Verdict.PROVEN
        elif iv.hi is not None and iv.hi < NULL_GUARD:
            nullv = Verdict.DISPROVEN
        else:
            nullv = Verdict.UNPROVEN

        if size == 1:
            alignv = Verdict.PROVEN
        else:
            g = 0
            for key, coeff in addr.terms.items():
                org = self.origins.get(key)
                g = math.gcd(g, abs(coeff) * (org.align if org else 1))
            if not addr.terms or g % size == 0:
                alignv = (
                    Verdict.PROVEN
                    if addr.const % size == 0
                    else Verdict.DISPROVEN
                )
            else:
                alignv = Verdict.UNPROVEN

        boundsv = Verdict.UNPROVEN
        src = None
        spaced = [
            (k, c)
            for k, c in addr.terms.items()
            if self.origins.get(k) is not None
            and self.origins[k].space is not None
        ]
        if len(spaced) == 1 and spaced[0][1] == 1:
            src = spaced[0][0]
            ext = self.origins[src].extent
            if ext is not None:
                delta = addr.drop(src)
                dl = self._eval_wf(delta, st.facts)
                rem = self._eval_wf(
                    ext.sub(delta).add_const(-size), st.facts
                )
                if (
                    dl.lo is not None
                    and dl.lo >= 0
                    and rem.lo is not None
                    and rem.lo >= 0
                ):
                    boundsv = Verdict.PROVEN
                elif (dl.hi is not None and dl.hi < 0) or (
                    rem.hi is not None and rem.hi < 0
                ):
                    boundsv = Verdict.DISPROVEN

        if record is not None and pc not in record:
            src_org = self.origins.get(src) if src is not None else None
            witness = f"addr={iv!r}"
            if src_org is not None and src_org.space is not None:
                witness += f" base={src_org.space[0]}:{src_org.name}"
            record[pc] = SiteProof(
                pc=pc,
                kind=kind,
                size=size,
                null=nullv,
                align=alignv,
                bounds=boundsv,
                witness=witness,
                loc=li.loc,
            )
        return nullv, alignv, boundsv, src

    def _trap_site(self, st: _State, pc: int, li, record) -> None:
        op = li.op
        if op in (Opcode.SDIV, Opcode.SREM):
            kind = "sdiv" if op is Opcode.SDIV else "srem"
            d = self._expr_of(st, li.args[1])
            iv = self._eval_wf(d, st.facts)
            if (iv.lo is not None and iv.lo >= 1) or (
                iv.hi is not None and iv.hi <= -1
            ):
                trapv = Verdict.PROVEN
            elif (d.form(), d.const) in st.neqz:
                trapv = Verdict.PROVEN
            elif iv.as_const == 0:
                trapv = Verdict.DISPROVEN
            else:
                trapv = Verdict.UNPROVEN
            witness = f"divisor={iv!r}"
        else:
            kind = "fptosi"
            lo, hi = self._frange_of(st, li.args[0])
            if (
                lo is not None
                and hi is not None
                and math.isfinite(lo)
                and math.isfinite(hi)
            ):
                trapv = Verdict.PROVEN
            elif (
                lo is not None
                and hi is not None
                and lo == hi
                and not math.isfinite(lo)
            ):
                trapv = Verdict.DISPROVEN
            else:
                trapv = Verdict.UNPROVEN
            witness = f"operand=({lo}, {hi})"
        if record is not None and pc not in record:
            record[pc] = SiteProof(
                pc=pc,
                kind=kind,
                size=0,
                trap=trapv,
                witness=witness,
                loc=li.loc,
            )

    # -- joins ----------------------------------------------------------
    def _phi_norm(self, e: _Expr) -> _Expr:
        """Resolve collapsed phi keys in ``e`` to their current identity."""
        seen: set = set()
        for _ in range(4):
            sub = None
            for k in e.terms:
                if (
                    isinstance(k, tuple)
                    and k[0] == "m"
                    and k not in seen
                    and k in self.phi_val
                ):
                    pv = self.phi_val[k]
                    if k not in pv.terms:
                        sub = (k, pv)
                        break
            if sub is None:
                return e
            k, pv = sub
            seen.add(k)
            c = e.terms[k]
            e = e.drop(k).add(pv.scale(c))
        return e

    def _norm_facts(self, facts: dict) -> dict:
        """Rewrite fact forms through collapsed-phi identities.

        After a phi collapses (``phi_val``), facts established while the
        merge origin was live still spell the invariant in the stale
        vocabulary; normalising both edges' forms lets the same
        invariant intersect verbatim at the join.
        """
        if not self.phi_val:
            return facts
        out: dict = {}
        for form, iv in facts.items():
            e = self._phi_norm(_Expr(0, dict(form)))
            f2 = e.form()
            if not f2:
                continue
            iv2 = iv.sub(Interval.const(e.const)) if e.const else iv
            prev = out.get(f2)
            out[f2] = iv2 if prev is None else _meet(prev, iv2)
        return out

    def _norm_neqz(self, neqz: set) -> set:
        if not self.phi_val:
            return neqz
        out = set()
        for form, const in neqz:
            e = self._phi_norm(_Expr(const, dict(form)))
            out.add((e.form(), e.const))
        return out

    def _join_states(self, leader: int, ins: list) -> _State:
        """Fold the sweep's incoming edge states for one leader."""
        st = ins[0].copy()
        live, live_f = self._live_i.get(leader, -1), self._live_f.get(leader, -1)
        st.ir = {i: e for i, e in st.ir.items() if live >> i & 1}
        st.fr = {i: v for i, v in st.fr.items() if live_f >> i & 1}
        folded: set = set()  # regs that became real merges in this fold
        for inc in ins[1:]:
            st = self._merge_pair(leader, st, inc, folded)
        return st

    def _merge_pair(
        self, leader: int, cur: _State, inc: _State, folded: set
    ) -> _State:
        self.visits[leader] = self.visits.get(leader, 0) + 1
        widen_floats = self.visits[leader] > 3

        merged = _State()
        # edge expressions of each merge origin: mkey -> expr on that edge
        sub_cur: dict = {}
        sub_inc: dict = {}
        live = self._live_i.get(leader, -1)
        for i in set(cur.ir) | set(inc.ir):
            if not live >> i & 1:
                continue  # dead at the join: never read again on any path
            e1 = self._phi_norm(cur.ir.get(i, _ZERO))
            e2 = self._phi_norm(inc.ir.get(i, _ZERO))
            mkey = ("m", leader, i)
            # phi-self simplification: an edge carrying exactly this
            # join's own merge origin says "unchanged since the last
            # join here", so the phi collapses to the other operand
            # (loop-invariant registers keep their preheader identity
            # instead of being widened by a one-sweep-stale back edge)
            phi_self = _Expr.of(mkey)
            if e1 == phi_self and e2 != phi_self and i not in folded:
                merged.ir[i] = e2
                self.phi_val[mkey] = e2
                continue
            if e2 == phi_self and e1 != phi_self and i not in folded:
                merged.ir[i] = e1
                self.phi_val[mkey] = e1
                continue
            if e1 == e2:
                dirty_self = any(
                    k[0] == "m"
                    and k[1] == leader
                    and (k != mkey or e1.terms[k] != 1 or len(e1.terms) > 1 or e1.const != 0)
                    for k in e1.terms
                    if isinstance(k, tuple)
                )
                if not dirty_self:
                    merged.ir[i] = e1
                    if e1 != phi_self:
                        self.phi_val[mkey] = e1
                    continue
            iv_in = self._eval(e1).join(self._eval(e2))
            al_in = math.gcd(self._value_align(e1), self._value_align(e2)) or 1
            org = self.origins.get(mkey)
            if org is None:
                self._ensure(
                    mkey, name=f"phi{leader}.{i}", iv=iv_in, align=al_in
                )
            else:
                niv = org.iv.widen(org.iv.join(iv_in))
                nal = math.gcd(org.align, al_in) or 1
                if niv != org.iv or nal != org.align:
                    org.iv, org.align = niv, nal
                    self._dirty = True
            merged.ir[i] = _Expr.of(mkey)
            self.phi_val.pop(mkey, None)  # a real merge: phi denotes itself
            folded.add(i)
            sub_cur[mkey] = e1
            sub_inc[mkey] = e2

        live_f = self._live_f.get(leader, -1)
        for i in set(cur.fr) | set(inc.fr):
            if not live_f >> i & 1:
                continue
            v1 = cur.fr.get(i, (0.0, 0.0))
            v2 = inc.fr.get(i, (0.0, 0.0))
            if v1 == v2:
                merged.fr[i] = v1
            elif widen_floats:
                merged.fr[i] = _UNK_F
            else:
                merged.fr[i] = (
                    None if v1[0] is None or v2[0] is None else min(v1[0], v2[0]),
                    None if v1[1] is None or v2[1] is None else max(v1[1], v2[1]),
                )

        merged.facts = self._join_facts(
            leader, cur, inc, sub_cur, sub_inc
        )

        def clean_of_leader(form) -> bool:
            return not any(
                isinstance(k, tuple) and k[0] == "m" and k[1] == leader
                for k, _ in form
            )

        merged.neqz = {
            fc
            for fc in self._norm_neqz(cur.neqz) & self._norm_neqz(inc.neqz)
            if clean_of_leader(fc[0])
        }
        for r in set(cur.cmp) & set(inc.cmp):
            o1, c1e, c1r = cur.cmp[r]
            o2, c2e, c2r = inc.cmp[r]
            c1 = (o1, self._phi_norm(c1e), self._phi_norm(c1r))
            c2 = (o2, self._phi_norm(c2e), self._phi_norm(c2r))
            if c1 == c2 and clean_of_leader(
                tuple((k, 1) for k in (*c1[1].terms, *c1[2].terms))
            ):
                merged.cmp[r] = c1

        return merged

    def _join_facts(
        self, leader: int, cur: _State, inc: _State, sub_cur, sub_inc
    ) -> dict:
        """Fact join that survives loop rotation.

        The loop invariant arrives in a different linear form on each
        edge (``INSTANCE - NI`` from the preheader, ``i + step - NI``
        from the latch), so key intersection would lose it.  Instead,
        candidate forms from both edges are rewritten into the post-join
        vocabulary (merge origins standing for the joined registers) and
        each candidate is then *validated semantically on both edges*:
        its merge origins are resolved to that edge's incoming
        expression and evaluated against that edge's own facts.  The
        resulting interval join is sound no matter how the candidate
        form was produced.
        """
        out: dict[tuple, Interval] = {}
        cfacts = self._norm_facts(cur.facts)
        ifacts = self._norm_facts(inc.facts)
        # fast path: forms present on both edges verbatim
        for form in set(cfacts) & set(ifacts):
            if not any(
                isinstance(k, tuple) and k[0] == "m" and k[1] == leader
                for k, _ in form
            ):
                j = cfacts[form].join(ifacts[form])
                if not j.is_top:
                    out[form] = j

        if not sub_cur and not sub_inc:
            return out

        # slow path: only *rewritten* forms (the rotated-loop invariant
        # arriving in a different shape per edge) are validated
        candidates: set[tuple] = set()

        def rewrite(facts: dict, subs: dict) -> None:
            for form in facts:
                expr = _Expr(0, dict(form))
                # best-effort translation: for every merged register,
                # eliminate one +-1 pivot shared with its edge expression
                # (the difference (edge_expr - mkey) is zero on the edge)
                changed = False
                for mkey, e in subs.items():
                    for k0, c0 in e.terms.items():
                        if c0 in (1, -1) and expr.terms.get(k0):
                            lam = expr.terms[k0] * c0
                            expr = expr.sub(
                                e.sub(_Expr.of(mkey)).scale(lam)
                            )
                            changed = True
                            break
                form2 = expr.form()
                if changed and form2 and form2 not in out:
                    candidates.add(form2)

        rewrite(cfacts, sub_cur)
        rewrite(ifacts, sub_inc)

        def resolve(form: tuple, subs: dict) -> _Expr | None:
            out_e = _Expr(0)
            for k, c in form:
                if isinstance(k, tuple) and k[0] == "m" and k[1] == leader:
                    e = subs.get(k)
                    if e is None:
                        # a merge origin this join did not touch: on this
                        # edge we cannot say what it denotes; be safe
                        return None
                    out_e = out_e.add(e.scale(c))
                else:
                    out_e = out_e.add(_Expr(0, {k: c}))
            return out_e

        for form in sorted(candidates, key=repr)[:24]:
            r1 = resolve(form, sub_cur)
            r2 = resolve(form, sub_inc)
            if r1 is None or r2 is None:
                continue
            v1 = self._eval_wf(r1, cfacts, depth=1)
            v2 = self._eval_wf(r2, ifacts, depth=1)
            joined = v1.join(v2)
            if not joined.is_top:
                out[form] = joined
        return out

    # -- driver ---------------------------------------------------------
    def run(self) -> SafetyCertificate:
        cert = SafetyCertificate(kernel=self.kern.name)
        entry = self._entry_state()
        pos = {L: i for i, L in enumerate(self._leaders)}
        # round-robin Kleene iteration: every sweep recomputes each
        # leader FRESH from this sweep's forward-edge contributions plus
        # the previous sweep's back-edge contributions.  (Joining new
        # input against the previous sweep's own state would manufacture
        # spurious merges at single-predecessor leaders the moment an
        # upstream expression changes shape, destroying relational
        # facts.)  Merge-origin attributes widen monotonically across
        # sweeps via ``_ensure``, so the iteration terminates.
        back_in: dict[int, list] = {}
        converged = False
        for _ in range(_MAX_SWEEPS):
            self._dirty = False
            fwd_in: dict[int, list] = {self._leaders[0]: [entry.copy()]}
            new_back: dict[int, list] = {}
            new_states: dict[int, _State] = {}
            for leader in self._leaders:
                ins = fwd_in.get(leader, []) + back_in.get(leader, [])
                if not ins:
                    continue
                st = self._join_states(leader, ins)
                new_states[leader] = st
                for succ, out in self._flow(leader, st.copy()):
                    if pos.get(succ, 0) <= pos[leader]:
                        new_back.setdefault(succ, []).append(out)
                    else:
                        fwd_in.setdefault(succ, []).append(out)
            changed = set(new_states) != set(self.states) or any(
                not new_states[L].same(self.states[L]) for L in new_states
            )
            self.states = new_states
            back_in = new_back
            if not changed and not self._dirty:
                converged = True
                break
        if not converged:
            # analysis did not converge: sound fallback, nothing proven
            self._scan_unproven(cert, "analysis budget exhausted")
            return cert

        record: dict[int, SiteProof] = {}
        for leader in self._leaders:
            st = self.states.get(leader)
            if st is None:
                continue
            self._flow(leader, st.copy(), record=record)
        cert.sites = record
        self._scan_unproven(cert, "unreachable")
        return cert

    def _scan_unproven(self, cert: SafetyCertificate, why: str) -> None:
        """Ensure every site has a proof entry (UNPROVEN by default)."""
        kinds = {
            Opcode.LOAD: "load",
            Opcode.STORE: "store",
            Opcode.ATOMIC_ADD: "atomic",
            Opcode.ATOMIC_MAX: "atomic",
            Opcode.SDIV: "sdiv",
            Opcode.SREM: "srem",
            Opcode.FPTOSI: "fptosi",
        }
        for pc, li in enumerate(self.code):
            kind = kinds.get(li.op)
            if kind is None or pc in cert.sites:
                continue
            size = li.mty.size if kind in _MEM_KINDS and li.mty else 0
            cert.sites[pc] = SiteProof(
                pc=pc, kind=kind, size=size, witness=why, loc=li.loc
            )


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


#: Process-wide memo of finished certificates keyed by lowered-code
#: content.  Builds recompile byte-identical modules constantly (cold/warm
#: differential twins, one build per backend/opt level); the abstract
#: interpretation is deterministic in its inputs, so identical kernels may
#: share one proof.  Keys embed :data:`ANALYZER_VERSION`, making every
#: memoized proof unreachable after an analyzer bump.
_CERT_MEMO: dict[str, SafetyCertificate] = {}
_CERT_MEMO_MAX = 256


def _kernel_digest(kern, globals_info: dict, wrapper: bool) -> str:
    h = hashlib.sha256()
    h.update(f"v{ANALYZER_VERSION}|w{int(wrapper)}|{kern.name}|".encode())
    for name in sorted(globals_info):
        h.update(f"g{name}={globals_info[name]};".encode())
    for li in kern.code:
        h.update(
            f"{li.op.name}|{li.dest}|{li.dest_f}|{li.args}|{li.imm!r}|"
            f"{li.mty}|{li.offset}|{li.sym}|{li.service}|{li.targets}|"
            f"{li.loc}\n".encode()
        )
    return h.hexdigest()


def analyze_kernel(kern, *, globals_info: dict, wrapper: bool) -> SafetyCertificate:
    """Run the safety analysis over one lowered kernel (memoized on the
    lowered code, the referenced global extents and the analyzer
    version)."""
    key = _kernel_digest(kern, globals_info, wrapper)
    cert = _CERT_MEMO.get(key)
    if cert is not None and cert.analyzer_version != ANALYZER_VERSION:
        # Certificates are shared objects; one whose version field was
        # clobbered (a tampered holder) must never be served again.
        cert = None
    if cert is None:
        cert = _KernelAnalyzer(
            kern, globals_info=globals_info, wrapper=wrapper
        ).run()
        if len(_CERT_MEMO) >= _CERT_MEMO_MAX:
            _CERT_MEMO.pop(next(iter(_CERT_MEMO)))
        _CERT_MEMO[key] = cert
    return cert


def certify_module(module) -> dict:
    """Compute a :class:`SafetyCertificate` for every lowerable kernel.

    Kernels that cannot be lowered yet (calls not inlined — i.e. the
    module has not been finalized) are skipped, so the checkers degrade
    gracefully at earlier pipeline stages.
    """
    from repro.errors import DeviceError, IRError
    from repro.runtime.kernel import ENSEMBLE_KERNEL, SINGLE_KERNEL
    from repro.runtime.machine import lower_kernel

    globals_info = {g.name: g.nbytes for g in module.globals.values()}
    certs: dict = {}
    for fn in module.kernels():
        try:
            kern = lower_kernel(fn)
        except (DeviceError, IRError):
            continue
        certs[fn.name] = analyze_kernel(
            kern,
            globals_info=globals_info,
            wrapper=fn.name in (ENSEMBLE_KERNEL, SINGLE_KERNEL),
        )
    return certs


def certificates_for(module) -> dict:
    """Cached certificates: reuse the stamped metadata when current."""
    cached = module.metadata.get(SAFETY_META)
    if isinstance(cached, dict) and all(
        getattr(c, "analyzer_version", None) == ANALYZER_VERSION
        for c in cached.values()
    ):
        return cached
    return certify_module(module)


def stamp_certificates(module, *, metrics=None) -> dict:
    """Compute certificates, stamp them into module metadata, and publish
    build-time ``safety.*`` counters."""
    certs = certify_module(module)
    module.metadata[SAFETY_META] = certs
    if metrics is not None:
        for cert in certs.values():
            for proof in cert.sites.values():
                metrics.counter(
                    "safety.sites",
                    kind=proof.kind,
                    verdict=proof.verdict.name.lower(),
                ).inc()
    return certs


def _site_diagnostics(module, kinds: tuple, checker: str) -> list:
    out = []
    for name, cert in certificates_for(module).items():
        for proof in cert.disproven():
            if proof.kind not in kinds:
                continue
            if proof.is_mem:
                failed = [
                    c
                    for c in ("null", "align", "bounds")
                    if getattr(proof, c) is Verdict.DISPROVEN
                ]
                what = "/".join(failed)
                msg = (
                    f"{proof.kind} of {proof.size} bytes fails the static "
                    f"{what} check on every execution ({proof.witness})"
                )
                hint = (
                    "the access is statically out of its allocation; fix "
                    "the index computation or launch with allow_unsafe to "
                    "keep the dynamic guard"
                )
            else:
                what = {
                    "sdiv": "integer division by zero",
                    "srem": "integer remainder by zero",
                    "fptosi": "float-to-int conversion of a non-finite value",
                }[proof.kind]
                msg = f"{what} on every execution ({proof.witness})"
                hint = "guard the operation or fix the operand computation"
            out.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    checker=checker,
                    function=name,
                    block=None,
                    index=proof.pc,
                    message=msg,
                    hint=hint,
                    loc=proof.loc,
                )
            )
    return out


def check_static_oob(module) -> list:
    """Lint checker: memory sites statically proven unsafe."""
    return _site_diagnostics(module, _MEM_KINDS, "static-oob")


def check_static_trap(module) -> list:
    """Lint checker: arithmetic trap sites statically proven to fire."""
    return _site_diagnostics(module, _TRAP_KINDS, "static-trap")


__all__ = [
    "ANALYZER_VERSION",
    "SAFETY_META",
    "Verdict",
    "SiteProof",
    "SafetyCertificate",
    "analyze_kernel",
    "certify_module",
    "certificates_for",
    "stamp_certificates",
    "check_static_oob",
    "check_static_trap",
]
