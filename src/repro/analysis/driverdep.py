"""Static loop-carried dependence analysis over Python *driver* loops.

Everything else in :mod:`repro.analysis` analyzes the device IR.  This
module applies the same discipline one level up, to the *host* script
that launches instances::

    def campaign(run):
        total = 0.0
        for cfg in CONFIGS:           # the driver loop
            total += run(cfg).exit_code
        return total

The paper's claim is that N independent app instances should execute as
one ensemble kernel; the gap is proving the "independent" part for an
ordinary Python loop instead of trusting an expert-written argument
file.  The recipe (SNIPPETS.md, XCS/ember snippets 1-2) is the JAX one:
lift the loop into a small SSA/def-use form, classify every name and
attribute the body touches, and only parallelize when each iteration is
provably independent of every other.

The lift (:func:`lift_driver` / :func:`lift_source`) parses the driver
function with :mod:`ast` and versions every name flow-sensitively
through the loop body (branch merges keep the *definitely-defined*
intersection, so a use that may see version 0 — the value left by the
previous iteration — is never misclassified as loop-local).

The classification (:func:`classify_loop`) buckets each name as

* ``induction`` — the loop target(s); fresh each iteration by construction,
* ``loop-local`` — definitely defined in the same iteration before
  every use,
* ``read-only`` — outer state that is only ever read,
* ``reduction`` — a provable accumulator (``acc += e``, ``acc = acc op e``,
  ``acc = min/max(acc, e)``, ``seq.append(e)``) that is never otherwise
  observed inside the loop; these commute with instance execution and are
  replayed in iteration order by the auto-ensemble engine,
* ``loop-carried`` — a flow / anti / output dependence on outer state,
* ``io-order`` — order-dependent I/O (``print``, ``open``, file writes),
* ``aliased-write`` — a store through a name that may alias outer state
  (subscript/attribute stores, mutating container methods), decided by a
  small Andersen-style inclusion solver over the body reusing
  :class:`~repro.analysis.pointsto.MemObject` as the abstract-object
  representation.

Dependent loops yield error-severity
:class:`~repro.analysis.diagnostics.Diagnostic` records naming the
variable, the dependence kind, and the source line — the same structured
finding the IR-level ensemble-safety checkers emit, surfaced by
``repro.tools.lint --driver`` and by
:func:`repro.frontend.autoensemble.auto_launch`.
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
from dataclasses import dataclass, field

from repro.frontend import astsafe
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.pointsto import MemObject, UNKNOWN_OBJ
from repro.errors import AnalysisError

#: Default name of the injected launcher when a driver has no parameters.
DEFAULT_RUN_NAME = "run"

#: Binary/aug ops accepted in scalar reductions (commutative-ish; the
#: engine replays them in iteration order so even float ``+`` is exact).
REDUCTION_OPS = (ast.Add, ast.Mult, ast.BitOr, ast.BitAnd, ast.BitXor)

#: ``acc = f(acc, e)`` callees accepted as reductions.
REDUCTION_CALLS = frozenset({"min", "max"})

#: Container method treated as an *ordered-append* reduction.
APPEND_METHODS = frozenset({"append", "extend"})

#: Mutating container/object methods → aliased write when the receiver
#: may be outer state.
MUTATOR_METHODS = frozenset(
    {
        "insert",
        "pop",
        "remove",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "add",
        "discard",
        "popitem",
        "appendleft",
        "extendleft",
    }
)

#: Calls that perform order-dependent I/O.
IO_CALLS = frozenset({"print", "input", "open", "breakpoint"})

#: Methods that perform order-dependent I/O on any receiver.
IO_METHODS = frozenset({"write", "writelines", "flush", "readline", "read"})

#: Constructors whose result is a *fresh* object (safe to mutate).
FRESH_CALLS = frozenset(
    {"list", "dict", "set", "tuple", "sorted", "reversed", "enumerate",
     "zip", "range", "str", "int", "float", "bool", "repr", "len", "abs",
     "sum", "format"}
)


class NameKind(enum.Enum):
    """Classification of one name touched by the loop body."""

    INDUCTION = "induction"
    LOOP_LOCAL = "loop-local"
    READ_ONLY = "read-only"
    REDUCTION = "reduction"
    LOOP_CARRIED = "loop-carried"
    IO_ORDER = "io-order"
    ALIASED_WRITE = "aliased-write"


class DepKind(enum.Enum):
    """Kind of loop-carried dependence blocking parallel execution."""

    FLOW = "flow"  #: iteration i+1 reads what iteration i wrote
    ANTI = "anti"  #: iteration i reads what iteration i+1 overwrites
    OUTPUT = "output"  #: two iterations write the same location
    IO = "io"  #: externally ordered side effect
    ALIAS = "alias"  #: write through a may-alias of outer state
    CONTROL = "control"  #: control flow / run args depend on a run result


@dataclass(frozen=True)
class SSAVersion:
    """One SSA version of a name inside the loop body.

    Version 0 is the value live on loop entry — i.e. whatever the
    *previous* iteration (or the prologue) left there; versions >= 1 are
    same-iteration definitions.
    """

    name: str
    version: int
    line: int | None = None


@dataclass
class Access:
    """One read/write/mutation of a name, in body order."""

    name: str
    kind: str  # "read" | "write" | "mutate"
    line: int
    col: int
    version: int  # version read, or version created by the write
    definite: bool = True  # write reaches the end of the body on all paths


@dataclass
class NameInfo:
    """Final classification of one name."""

    name: str
    kind: NameKind
    dep: DepKind | None = None
    line: int | None = None
    detail: str = ""


@dataclass
class RunCall:
    """One call to the launcher inside the body."""

    line: int
    col: int
    nargs: int


@dataclass
class Reduction:
    """One provable accumulator rewritten by the replay engine."""

    name: str
    op: str  # "+", "*", "|", "&", "^", "min", "max", "append", "extend"
    line: int
    #: True when the accumulator is defined in the driver function itself
    #: (prologue); module-level accumulators would be polluted by the
    #: trace pass and are rejected.
    local_to_fn: bool = True


@dataclass
class DriverLoop:
    """One lifted driver loop: the AST plus its surrounding function."""

    fn_name: str
    filename: str
    run_name: str
    node: ast.For
    targets: frozenset[str]
    prologue_defs: frozenset[str]
    fn_params: frozenset[str]
    #: first line of the driver function in ``filename`` (for reports).
    fn_line: int = 0


@dataclass
class LoopClassification:
    """The analyzer's verdict over one driver loop."""

    loop: DriverLoop
    names: dict[str, NameInfo] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    run_calls: list[RunCall] = field(default_factory=list)
    reductions: list[Reduction] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        """True when no error-severity dependence was found."""
        return not any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def summary(self) -> dict[str, int]:
        """``{kind: count}`` over the classified names."""
        out: dict[str, int] = {}
        for info in self.names.values():
            out[info.kind.value] = out.get(info.kind.value, 0) + 1
        return out


# ---------------------------------------------------------------------------
# Lifting: source -> DriverLoop
# ---------------------------------------------------------------------------


def _assigned_names(stmts: list[ast.stmt]) -> set[str]:
    """Every plain name bound anywhere in ``stmts`` (no nested functions)."""
    out: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                out.add(node.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                tgt = node.target if isinstance(node, ast.For) else node.target
                for n in ast.walk(tgt):
                    if isinstance(n, ast.Name):
                        out.add(n.id)
    return out


def _target_names(target: ast.expr) -> set[str]:
    return {
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    }


def lift_function(
    fn_node: ast.FunctionDef, filename: str
) -> list[DriverLoop]:
    """Lift every top-level ``for`` loop of one function definition."""
    params = [a.arg for a in fn_node.args.args]
    run_name = params[0] if params else DEFAULT_RUN_NAME
    loops: list[DriverLoop] = []
    prologue: list[ast.stmt] = []
    for stmt in fn_node.body:
        if isinstance(stmt, ast.For):
            loops.append(
                DriverLoop(
                    fn_name=fn_node.name,
                    filename=filename,
                    run_name=run_name,
                    node=stmt,
                    targets=frozenset(_target_names(stmt.target)),
                    prologue_defs=frozenset(_assigned_names(prologue)),
                    fn_params=frozenset(params),
                    fn_line=fn_node.lineno,
                )
            )
        else:
            prologue.append(stmt)
    return loops


def lift_source(
    source: str,
    filename: str = "<driver>",
    func_name: str | None = None,
    *,
    line_offset: int = 0,
) -> list[DriverLoop]:
    """Lift driver loops from script/function source text.

    With ``func_name`` only that function is lifted; otherwise every
    top-level function containing a ``for`` loop contributes its loops.
    ``line_offset`` shifts reported line numbers (used by
    :func:`lift_driver` so an extracted function snippet reports real
    file lines).
    """
    try:
        tree = astsafe.parse(textwrap.dedent(source), filename=filename)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse driver source: {exc}") from exc
    if line_offset:
        ast.increment_lineno(tree, line_offset)
    loops: list[DriverLoop] = []
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if func_name is not None and node.name != func_name:
            continue
        loops.extend(lift_function(node, filename))
    if func_name is not None and not loops:
        raise AnalysisError(
            f"function {func_name!r} in {filename} contains no for loop"
        )
    return loops


def lift_driver(fn) -> list[DriverLoop]:
    """Lift the driver loops of a live Python function object."""
    fn = inspect.unwrap(fn)
    try:
        lines, first_line = inspect.getsourcelines(fn)
    except (OSError, TypeError) as exc:
        raise AnalysisError(
            f"cannot retrieve source of driver {fn!r}: {exc}"
        ) from exc
    filename = inspect.getsourcefile(fn) or "<driver>"
    return lift_source(
        "".join(lines),
        filename=filename,
        func_name=fn.__name__,
        line_offset=first_line - 1,
    )


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


class _BodyWalker:
    """Flow-sensitive walk of the loop body building def-use + points-to.

    Single pass in program order; ``defined`` carries the set of names
    *definitely* defined so far this iteration (branch join =
    intersection), ``versions`` the SSA version counters, ``tainted`` the
    names whose value derives from a run result this iteration, and
    ``pts`` a small Andersen-style points-to map from names to abstract
    :class:`MemObject` sets.
    """

    def __init__(self, loop: DriverLoop):
        self.loop = loop
        self.accesses: list[Access] = []
        self.run_calls: list[RunCall] = []
        self.reduction_stmts: dict[int, Reduction] = {}  # id(stmt) -> info
        self.diagnostics: list[Diagnostic] = []
        self.versions: dict[str, int] = {}
        self.defined: set[str] = set(loop.targets)
        self.tainted: set[str] = set()
        self.pts: dict[str, set[MemObject]] = {}
        #: names whose only outer accesses are reduction updates
        self.reduction_names: dict[str, Reduction] = {}
        #: per-name lines of non-reduction reads of version 0
        self.outer_reads: dict[str, int] = {}
        #: per-name lines of non-reduction writes
        self.outer_writes: dict[str, int] = {}
        for t in loop.targets:
            self.pts[t] = {MemObject("induction", t)}

    # -- helpers ----------------------------------------------------------

    def _diag(
        self,
        severity: Severity,
        message: str,
        node: ast.AST,
        *,
        sym: str | None = None,
        hint: str | None = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                severity=severity,
                checker="driverdep",
                function=self.loop.fn_name,
                block=None,
                index=None,
                message=message,
                hint=hint,
                sym=sym,
                loc=(getattr(node, "lineno", 0), getattr(node, "col_offset", 0)),
            )
        )

    def _is_outer(self, name: str) -> bool:
        """Could ``name`` denote state that outlives one iteration?"""
        return name not in self.defined

    def _obj_of(self, name: str) -> set[MemObject]:
        if name in self.pts:
            return self.pts[name]
        if name in self.loop.targets:
            return {MemObject("induction", name)}
        if self._is_outer(name):
            return {MemObject("outer", name)}
        return {UNKNOWN_OBJ}

    def _expr_objects(self, node: ast.expr) -> set[MemObject]:
        """Abstract objects an expression's value may denote."""
        if isinstance(node, ast.Name):
            return self._obj_of(node.id)
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                             ast.ListComp, ast.DictComp, ast.SetComp,
                             ast.GeneratorExp)):
            return {MemObject("fresh", f"{node.lineno}:{node.col_offset}")}
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in FRESH_CALLS:
                return {MemObject("fresh", f"{node.lineno}:{node.col_offset}")}
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in ("copy", "deepcopy", "keys", "values", "items")
            ):
                return {MemObject("fresh", f"{node.lineno}:{node.col_offset}")}
            return {UNKNOWN_OBJ}
        if isinstance(node, (ast.Subscript, ast.Attribute)):
            # An element/attribute of X aliases X's contents: mutating it
            # mutates state reachable from X.
            base = self._expr_objects(node.value)
            out: set[MemObject] = set()
            for obj in base:
                if obj.kind in ("outer", "unknown"):
                    out.add(obj)
                elif obj.kind == "induction":
                    out.add(obj)
                else:
                    out.add(MemObject(obj.kind, obj.key + ".elem"))
            return out or {UNKNOWN_OBJ}
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.BoolOp,
                             ast.IfExp, ast.JoinedStr, ast.FormattedValue)):
            return set()  # arithmetic/comparison results are fresh scalars
        return {UNKNOWN_OBJ}

    def _is_tainted(self, node: ast.expr) -> bool:
        """Does this expression (transitively) consume a run result?"""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.tainted:
                return True
            if self._is_run_call(sub):
                return True
        return False

    def _is_run_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == self.loop.run_name
        )

    # -- reads ------------------------------------------------------------

    def _record_reads(self, node: ast.expr, *, skip: set[str] = frozenset()) -> None:
        """Record every Name read inside an expression (body order).

        Receivers of ``X.append(...)`` / ``X.extend(...)`` calls are not
        reads: they are accumulator *updates*, accounted separately so a
        pure append reduction is not misclassified as "also read".
        """
        skip_receivers: set[int] = set()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr in APPEND_METHODS
                and isinstance(sub.func.value, ast.Name)
            ):
                skip_receivers.add(id(sub.func.value))
            elif isinstance(sub.func, ast.Name):
                # function-position names are calls, not value reads;
                # _scan_calls owns their classification
                skip_receivers.add(id(sub.func))
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                name = sub.id
                if (
                    name in skip
                    or name == self.loop.run_name
                    or id(sub) in skip_receivers
                ):
                    continue
                version = self.versions.get(name, 0) if name in self.defined else 0
                self.accesses.append(
                    Access(name, "read", sub.lineno, sub.col_offset, version)
                )
                if name not in self.defined and name not in self.loop.targets:
                    self.outer_reads.setdefault(name, sub.lineno)

    # -- run / IO calls ---------------------------------------------------

    def _scan_calls(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            callee = sub.func
            if self._is_run_call(sub):
                self.run_calls.append(
                    RunCall(sub.lineno, sub.col_offset, len(sub.args))
                )
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    if self._has_nested_run(arg) or self._is_tainted(arg):
                        self._diag(
                            Severity.ERROR,
                            "instance arguments depend on a run result: the "
                            "batch of instances cannot be derived before "
                            "launching",
                            sub,
                            sym=self.loop.run_name,
                            hint="derive every instance's arguments from the "
                            "loop iterable only",
                        )
                continue
            if isinstance(callee, ast.Name) and callee.id in IO_CALLS:
                self._diag(
                    Severity.ERROR,
                    f"order-dependent I/O: call to {callee.id}() inside the "
                    "driver loop makes iteration order observable",
                    sub,
                    sym=callee.id,
                    hint="move I/O after the loop; per-instance stdout is "
                    "captured on the run result",
                )
            elif isinstance(callee, ast.Attribute):
                self._scan_method_call(sub, callee)

    def _has_nested_run(self, node: ast.expr) -> bool:
        return any(self._is_run_call(s) for s in ast.walk(node))

    def _scan_method_call(self, call: ast.Call, callee: ast.Attribute) -> None:
        method = callee.attr
        recv_objs = self._expr_objects(callee.value)
        outer_recv = sorted(
            o.key for o in recv_objs if o.kind == "outer"
        ) + (["<unknown>"] if UNKNOWN_OBJ in recv_objs else [])
        if method in IO_METHODS:
            self._diag(
                Severity.ERROR,
                f"order-dependent I/O: .{method}() inside the driver loop "
                "makes iteration order observable",
                call,
                sym=method,
                hint="move I/O after the loop",
            )
            return
        if method in APPEND_METHODS:
            recv = callee.value
            if isinstance(recv, ast.Name) and self._is_outer(recv.id):
                name = recv.id
                red = Reduction(
                    name=name,
                    op=method,
                    line=call.lineno,
                    local_to_fn=name in self.loop.prologue_defs,
                )
                self.reduction_names.setdefault(name, red)
                self.accesses.append(
                    Access(name, "mutate", call.lineno, call.col_offset, 0)
                )
                if not red.local_to_fn:
                    self._diag(
                        Severity.ERROR,
                        f"reduction target '{name}' is not defined in the "
                        f"driver function: appending to module-level state "
                        "is an aliased write",
                        call,
                        sym=name,
                        hint="initialize the accumulator inside the driver "
                        "function, before the loop",
                    )
                return
            # append through a non-name receiver: fall through to alias logic
        if method in MUTATOR_METHODS or method in APPEND_METHODS:
            if outer_recv:
                tgt = outer_recv[0]
                self._diag(
                    Severity.ERROR,
                    f"aliased container write: .{method}() mutates "
                    f"'{tgt}', state shared across iterations",
                    call,
                    sym=tgt if tgt != "<unknown>" else None,
                    hint="build per-iteration containers inside the loop, or "
                    "collect results with list.append",
                )
            elif any(o.kind == "induction" for o in recv_objs):
                self._diag(
                    Severity.ERROR,
                    f"aliased container write: .{method}() mutates the loop "
                    "element itself; iterations are only independent if the "
                    "iterable has no repeated elements, which is not provable "
                    "statically",
                    call,
                    sym=next(iter(self.loop.targets), None),
                )

    # -- statements -------------------------------------------------------

    def walk_body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:  # noqa: C901
        if isinstance(stmt, ast.Assign):
            self._walk_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._walk_augassign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._walk_assign_like(stmt.target, stmt.value, stmt)
        elif isinstance(stmt, ast.Expr):
            self._record_reads(stmt.value)
            self._scan_calls(stmt.value)
        elif isinstance(stmt, ast.If):
            self._walk_if(stmt)
        elif isinstance(stmt, (ast.For, ast.While)):
            self._walk_nested_loop(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            pass
        elif isinstance(stmt, ast.Return):
            self._diag(
                Severity.ERROR,
                "return inside the driver loop: only the final iteration's "
                "value is meaningful, so iteration order is observable",
                stmt,
                hint="collect results and return after the loop",
            )
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                self._diag(
                    Severity.ERROR,
                    f"'{stmt.__class__.__name__.lower()} {name}' inside the "
                    "driver loop writes state shared across iterations",
                    stmt,
                    sym=name,
                )
        elif isinstance(stmt, (ast.With, ast.Try, ast.Raise, ast.Assert,
                               ast.Delete)):
            self._diag(
                Severity.ERROR,
                f"unsupported statement in driver loop: "
                f"{stmt.__class__.__name__.lower()} is not analyzable for "
                "iteration independence",
                stmt,
                hint="keep the loop body to argument derivation, run() calls "
                "and reductions",
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            self._diag(
                Severity.ERROR,
                "definitions inside the driver loop are not supported",
                stmt,
            )
        else:
            self._diag(
                Severity.ERROR,
                f"unsupported statement in driver loop: "
                f"{stmt.__class__.__name__}",
                stmt,
            )

    def _walk_assign(self, stmt: ast.Assign) -> None:
        # Detect `x = x op e` / `x = min(x, e)` scalar reductions first.
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            red = self._match_scalar_reduction(name, stmt.value, stmt)
            if red is not None and self._is_outer(name):
                self._note_reduction(red, stmt)
                self._record_reads(stmt.value, skip={name})
                self._scan_calls(stmt.value)
                return
        self._record_reads(stmt.value)
        self._scan_calls(stmt.value)
        value_objs = self._expr_objects(stmt.value)
        tainted = self._is_tainted(stmt.value)
        for target in stmt.targets:
            self._assign_target(target, value_objs, tainted, stmt)

    def _walk_assign_like(
        self, target: ast.expr, value: ast.expr, stmt: ast.stmt
    ) -> None:
        self._record_reads(value)
        self._scan_calls(value)
        self._assign_target(
            target, self._expr_objects(value), self._is_tainted(value), stmt
        )

    def _assign_target(
        self,
        target: ast.expr,
        value_objs: set[MemObject],
        tainted: bool,
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            self._define(target.id, stmt, value_objs, tainted)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # elements of the unpacked value may alias its contents
            elem_objs = {
                o for o in value_objs if o.kind in ("outer", "unknown")
            } or {UNKNOWN_OBJ}
            for elt in target.elts:
                self._assign_target(elt, elem_objs, tainted, stmt)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._store_through(target, stmt)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, value_objs, tainted, stmt)

    def _store_through(self, target: ast.expr, stmt: ast.stmt) -> None:
        """Subscript/attribute store: aliased write unless provably fresh."""
        assert isinstance(target, (ast.Subscript, ast.Attribute))
        base = target.value
        # The base name itself is an address computation, not a value read;
        # recording it as a read would shadow the alias finding with a
        # spurious flow dependence.
        if not isinstance(base, ast.Name):
            self._record_reads(base)
        if isinstance(target, ast.Subscript):
            self._record_reads(target.slice)
        objs = self._expr_objects(base)
        what = (
            f"[{ast.unparse(target.slice)}]"
            if isinstance(target, ast.Subscript)
            else f".{target.attr}"
        )
        outer = sorted(o.key for o in objs if o.kind == "outer")
        if outer or UNKNOWN_OBJ in objs:
            tgt = outer[0] if outer else None
            shown = tgt or ast.unparse(base)
            self._diag(
                Severity.ERROR,
                f"aliased container write: '{shown}{what} = ...' stores "
                "through state shared across iterations (anti/output "
                "dependence between iterations)",
                stmt,
                sym=tgt,
                hint="write to a per-iteration container, or collect results "
                "with list.append and combine after the loop",
            )
        elif any(o.kind == "induction" for o in objs):
            self._diag(
                Severity.ERROR,
                f"aliased container write: storing through loop element "
                f"'{ast.unparse(base)}{what}' is only independent if the "
                "iterable never repeats an element, which is not provable "
                "statically",
                stmt,
                sym=next(iter(self.loop.targets), None),
            )
        # stores into fresh per-iteration objects are safe

    def _walk_augassign(self, stmt: ast.AugAssign) -> None:
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if self._is_outer(name):
                if isinstance(stmt.op, REDUCTION_OPS) and not self._reads_name(
                    stmt.value, name
                ):
                    op = {
                        ast.Add: "+", ast.Mult: "*", ast.BitOr: "|",
                        ast.BitAnd: "&", ast.BitXor: "^",
                    }[type(stmt.op)]
                    self._note_reduction(
                        Reduction(
                            name=name,
                            op=op,
                            line=stmt.lineno,
                            local_to_fn=name in self.loop.prologue_defs
                            or name in self.loop.fn_params,
                        ),
                        stmt,
                    )
                    self._record_reads(stmt.value, skip={name})
                    self._scan_calls(stmt.value)
                    return
                # non-reducible update of outer state
                self.accesses.append(
                    Access(name, "read", stmt.lineno, stmt.col_offset, 0)
                )
                self.outer_reads.setdefault(name, stmt.lineno)
                self._record_reads(stmt.value)
                self._scan_calls(stmt.value)
                self._define(
                    name, stmt, self._expr_objects(stmt.value),
                    self._is_tainted(stmt.value),
                )
                self.outer_writes.setdefault(name, stmt.lineno)
                return
            # loop-local augassign: read + write of the local version
            self.accesses.append(
                Access(
                    name, "read", stmt.lineno, stmt.col_offset,
                    self.versions.get(name, 0),
                )
            )
            self._record_reads(stmt.value)
            self._scan_calls(stmt.value)
            self._define(
                name, stmt, self._expr_objects(stmt.value),
                self._is_tainted(stmt.value) or name in self.tainted,
            )
        else:
            self._record_reads(stmt.value)
            self._scan_calls(stmt.value)
            if isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
                self._store_through(stmt.target, stmt)

    def _reads_name(self, node: ast.expr, name: str) -> bool:
        return any(
            isinstance(s, ast.Name) and s.id == name and isinstance(s.ctx, ast.Load)
            for s in ast.walk(node)
        )

    def _match_scalar_reduction(
        self, name: str, value: ast.expr, stmt: ast.stmt
    ) -> Reduction | None:
        """Match ``x = x op e`` / ``x = e op x`` / ``x = min|max(x, e)``."""
        local = (
            name in self.loop.prologue_defs or name in self.loop.fn_params
        )
        if isinstance(value, ast.BinOp) and isinstance(value.op, REDUCTION_OPS):
            op = {
                ast.Add: "+", ast.Mult: "*", ast.BitOr: "|",
                ast.BitAnd: "&", ast.BitXor: "^",
            }[type(value.op)]
            for side, other in ((value.left, value.right),
                                (value.right, value.left)):
                if (
                    isinstance(side, ast.Name)
                    and side.id == name
                    and not self._reads_name(other, name)
                ):
                    return Reduction(name, op, stmt.lineno, local)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in REDUCTION_CALLS
            and len(value.args) == 2
        ):
            for side, other in ((value.args[0], value.args[1]),
                                (value.args[1], value.args[0])):
                if (
                    isinstance(side, ast.Name)
                    and side.id == name
                    and not self._reads_name(other, name)
                ):
                    return Reduction(name, value.func.id, stmt.lineno, local)
        return None

    def _note_reduction(self, red: Reduction, stmt: ast.stmt) -> None:
        self.reduction_names.setdefault(red.name, red)
        self.reduction_stmts[id(stmt)] = red
        self.accesses.append(
            Access(red.name, "mutate", stmt.lineno, stmt.col_offset, 0)
        )
        if not red.local_to_fn:
            self._diag(
                Severity.ERROR,
                f"reduction target '{red.name}' is not defined in the driver "
                "function: accumulating into module-level state is a "
                "loop-carried output dependence the engine cannot isolate",
                stmt,
                sym=red.name,
                hint="initialize the accumulator inside the driver function, "
                "before the loop",
            )

    def _define(
        self,
        name: str,
        stmt: ast.stmt,
        objs: set[MemObject],
        tainted: bool,
    ) -> None:
        self.versions[name] = self.versions.get(name, 0) + 1
        self.accesses.append(
            Access(
                name, "write", stmt.lineno, stmt.col_offset,
                self.versions[name],
            )
        )
        was_outer = name not in self.defined
        self.defined.add(name)
        self.pts[name] = set(objs) or {UNKNOWN_OBJ}
        if tainted:
            self.tainted.add(name)
        elif name in self.tainted:
            self.tainted.discard(name)
        if (
            was_outer
            and name not in self.loop.targets
            and (
                name in self.loop.prologue_defs
                or name in self.loop.fn_params
            )
            and name not in self.reduction_names
        ):
            # overwrites state that outlives the loop
            self.outer_writes.setdefault(name, stmt.lineno)

    def _walk_if(self, stmt: ast.If) -> None:
        self._record_reads(stmt.test)
        self._scan_calls(stmt.test)
        if self._is_tainted(stmt.test):
            self._diag(
                Severity.ERROR,
                "result-dependent control flow: this branch condition "
                "depends on a run result, so instances cannot be derived "
                "before launching",
                stmt,
                hint="branch on the loop iterable only; inspect run results "
                "after the loop",
            )
        saved_defined = set(self.defined)
        saved_versions = dict(self.versions)
        saved_pts = {k: set(v) for k, v in self.pts.items()}
        self.walk_body(stmt.body)
        then_defined = set(self.defined)
        then_pts = {k: set(v) for k, v in self.pts.items()}
        self.defined = set(saved_defined)
        self.pts = {k: set(v) for k, v in saved_pts.items()}
        self.walk_body(stmt.orelse)
        # join: definitely-defined = intersection; points-to = union
        self.defined &= then_defined
        self.defined |= saved_defined
        for k, v in then_pts.items():
            self.pts.setdefault(k, set()).update(v)
        # versions monotonically increase already (shared counter)
        del saved_versions

    def _walk_nested_loop(self, stmt: ast.For | ast.While) -> None:
        if isinstance(stmt, ast.For):
            self._record_reads(stmt.iter)
            self._scan_calls(stmt.iter)
            if self._is_tainted(stmt.iter):
                self._diag(
                    Severity.ERROR,
                    "result-dependent control flow: this nested loop "
                    "iterates over a run result",
                    stmt,
                )
            for n in _target_names(stmt.target):
                self._define(n, stmt, {MemObject("induction", n)}, False)
        else:
            self._record_reads(stmt.test)
            self._scan_calls(stmt.test)
            if self._is_tainted(stmt.test):
                self._diag(
                    Severity.ERROR,
                    "result-dependent control flow: this while condition "
                    "depends on a run result",
                    stmt,
                )
        # Names first assigned inside a nested loop may be read before the
        # assignment on iteration one of the nested loop: treat them as
        # *maybe* defined (drop from `defined` up front so reads classify
        # as outer when the name also exists outside).
        inner_assigned = _assigned_names(stmt.body)
        outer_like = {
            n
            for n in inner_assigned
            if n not in self.defined
            and (
                n in self.loop.prologue_defs or n in self.loop.fn_params
            )
        }
        self.walk_body(stmt.body)
        self.walk_body(stmt.orelse)
        for n in outer_like:
            # assigned inside the nested loop but live across it: flag as
            # loop-carried via the normal outer read/write bookkeeping
            self.outer_writes.setdefault(n, stmt.lineno)


def classify_loop(loop: DriverLoop) -> LoopClassification:
    """Classify every name the loop body touches; see the module doc."""
    walker = _BodyWalker(loop)
    walker.walk_body(loop.node.body)
    if loop.node.orelse:
        walker.walk_body(loop.node.orelse)

    result = LoopClassification(loop=loop)
    result.diagnostics.extend(walker.diagnostics)
    result.run_calls = walker.run_calls

    # Iterable expression: reads only (already outer); tainted impossible
    # (evaluated once, before iteration one).

    names: dict[str, NameInfo] = {}
    for t in sorted(loop.targets):
        names[t] = NameInfo(t, NameKind.INDUCTION, line=loop.node.lineno)

    read0: dict[str, int] = dict(walker.outer_reads)
    written: dict[str, int] = dict(walker.outer_writes)
    written.pop("<io>", None)

    for name, red in sorted(walker.reduction_names.items()):
        # A reduction accumulator observed by any *other* access is a
        # loop-carried flow dependence, not a reduction.
        other_reads = [
            a
            for a in walker.accesses
            if a.name == name and a.kind == "read"
        ]
        if other_reads:
            line = other_reads[0].line
            names[name] = NameInfo(
                name, NameKind.LOOP_CARRIED, DepKind.FLOW, line,
                detail="accumulator is also read in the loop body",
            )
            result.diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    checker="driverdep",
                    function=loop.fn_name,
                    block=None,
                    index=None,
                    message=(
                        f"loop-carried flow dependence on '{name}': the "
                        f"accumulator updated at line {red.line} is also "
                        f"read at line {line}, so iteration order is "
                        "observable"
                    ),
                    hint="only fold into the accumulator inside the loop; "
                    "read it after the loop",
                    sym=name,
                    loc=(line, 0),
                )
            )
            read0.pop(name, None)
            written.pop(name, None)
            continue
        if red.local_to_fn:
            names[name] = NameInfo(
                name, NameKind.REDUCTION, line=red.line, detail=red.op
            )
            result.reductions.append(red)
        else:
            names[name] = NameInfo(
                name, NameKind.ALIASED_WRITE, DepKind.ALIAS, red.line,
                detail="module-level accumulator",
            )
        read0.pop(name, None)
        written.pop(name, None)

    # Loop-carried scalars: combine outer reads/writes of the same name.
    for name in sorted(set(read0) | set(written)):
        if name in names:
            continue
        r, w = read0.get(name), written.get(name)
        if r is not None and w is not None:
            dep, line = DepKind.FLOW, r
            msg = (
                f"loop-carried flow dependence on '{name}': iteration i+1 "
                f"reads (line {r}) the value iteration i wrote (line {w})"
            )
        elif w is not None:
            dep, line = DepKind.OUTPUT, w
            msg = (
                f"loop-carried output dependence on '{name}': every "
                f"iteration overwrites it (line {w}), so only the final "
                "iteration's value survives"
            )
        else:
            # pure outer read; may still be anti-dependent via aliases
            aliased = [
                d for d in walker.diagnostics if d.sym == name
            ]
            if not aliased:
                names[name] = NameInfo(
                    name, NameKind.READ_ONLY, line=r
                )
                continue
            dep, line = DepKind.ANTI, r
            msg = (
                f"loop-carried anti dependence on '{name}': read at line "
                f"{r} while an aliased write mutates it"
            )
        names[name] = NameInfo(name, NameKind.LOOP_CARRIED, dep, line)
        result.diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                checker="driverdep",
                function=loop.fn_name,
                block=None,
                index=None,
                message=msg,
                hint=(
                    "make it a loop-local (define before use inside the "
                    "loop), a reduction (acc += ...), or hoist it out of "
                    "the loop"
                ),
                sym=name,
                loc=(line, 0),
            )
        )

    # Aliased writes / IO already produced diagnostics; classify the names.
    for diag in walker.diagnostics:
        if diag.sym and diag.sym not in names:
            kind = (
                NameKind.IO_ORDER
                if "I/O" in diag.message
                else NameKind.ALIASED_WRITE
            )
            dep = DepKind.IO if kind is NameKind.IO_ORDER else DepKind.ALIAS
            names[diag.sym] = NameInfo(
                diag.sym, kind, dep,
                None if diag.loc is None else diag.loc[0],
            )

    # The iterable expression is evaluated once, before iteration one:
    # names it reads are read-only outer state (function-position names
    # like `range` are calls, not value reads).
    callees = {
        id(n.func)
        for n in ast.walk(loop.node.iter)
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
    }
    for n in ast.walk(loop.node.iter):
        if (
            isinstance(n, ast.Name)
            and isinstance(n.ctx, ast.Load)
            and id(n) not in callees
            and n.id not in names
            and n.id != loop.run_name
        ):
            names[n.id] = NameInfo(n.id, NameKind.READ_ONLY, line=n.lineno)

    # Everything else written in the body is loop-local; reads of
    # untouched outer names are read-only.
    for access in walker.accesses:
        if access.name in names or access.name == loop.run_name:
            continue
        if access.kind == "write":
            names[access.name] = NameInfo(
                access.name, NameKind.LOOP_LOCAL, line=access.line
            )
        else:
            names[access.name] = NameInfo(
                access.name, NameKind.READ_ONLY, line=access.line
            )

    result.names = names
    result.diagnostics.sort(
        key=lambda d: (
            (0, 0) if d.loc is None else d.loc,
            d.message,
        )
    )
    return result


def analyze_driver(fn_or_source, func_name: str | None = None) -> list[LoopClassification]:
    """Analyze every driver loop of a function object or source text."""
    if isinstance(fn_or_source, str):
        loops = lift_source(fn_or_source, func_name=func_name)
    else:
        loops = lift_driver(fn_or_source)
    return [classify_loop(loop) for loop in loops]


__all__ = [
    "Access",
    "DepKind",
    "DriverLoop",
    "LoopClassification",
    "NameInfo",
    "NameKind",
    "Reduction",
    "RunCall",
    "analyze_driver",
    "classify_loop",
    "lift_driver",
    "lift_function",
    "lift_source",
]
