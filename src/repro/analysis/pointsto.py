"""Flow-insensitive, Andersen-style points-to / alias analysis.

Every pointer in the register IR is an i64 byte address, so "what can
this register address" is a set of abstract *memory objects*:

* ``global:<sym>`` — one object per module global (further classified by
  its flags: constant, ``team_local``, runtime-owned ``__`` prefix),
* ``stack:<fn>:<site>`` — one object per ``salloc`` site (per-thread
  private by construction),
* ``heap:<fn>:<site>`` — one object per heap allocation site: a ``call``
  to a ``malloc*`` symbol, or — after libc inlining — an ``atomic_add``
  whose address operand is the ``__heap_cursor`` runtime global,
* ``kparam`` — the launch-parameter block (argc/argv/ret arrays and the
  argument strings the loader marshals); shared by every instance of a
  launch and visible to the host,
* ``unknown`` — ⊤: anything else (escaped addresses, host-returned
  values, arithmetic on loaded integers).

The solver is a classic inclusion-based fixpoint over two maps —
``pts(reg)`` and ``contents(object)`` — with interprocedural flow along
the :mod:`~repro.analysis.callgraph` edges (arguments into parameters,
returned sets into call destinations).  It is deliberately
field-insensitive and flow-insensitive: sound, fast at our module sizes,
and precise enough to distinguish the four memory spaces the ensemble
optimizations care about.

Consumers:

* :mod:`repro.passes.barrier_elim` asks "can any thread-shared object be
  written on one side of this barrier and touched on the other",
* the alias-sharpened DCE/LICM ask "is this store provably private" /
  "is this load from provably read-only memory",
* :mod:`repro.analysis.footprint` classifies allocation sites,
* ``repro.tools.lint --interproc`` reports the facts as diagnostics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.ir.instructions import Instr, Opcode, int_binops
from repro.ir.module import Module
from repro.ir.types import Reg, ScalarType

#: Heap allocator entry points recognized as allocation sites.
MALLOC_SYMBOLS = frozenset({"malloc", "malloc_i64", "malloc_f64", "calloc"})

#: The runtime global holding the bump-allocator cursor (see runtime.libc).
HEAP_CURSOR_SYM = "__heap_cursor"


class MemSpace(enum.Enum):
    """Visibility class of an abstract memory object."""

    STACK = "stack"  #: per-thread private (salloc)
    HEAP = "heap"  #: per-instance heap; shared by the instance's threads
    TEAM_SHARED = "team-shared"  #: globals relocated per team
    GLOBAL = "global"  #: module globals shared across all instances
    RUNTIME = "runtime"  #: ``__``-prefixed runtime state (shared by design)
    PARAM_BLOCK = "param-block"  #: launch argc/argv/ret block (host-visible)
    UNKNOWN = "unknown"  #: ⊤


@dataclass(frozen=True)
class MemObject:
    """One abstract memory object; ``key`` disambiguates per-site objects."""

    kind: str  # "global" | "stack" | "heap" | "kparam" | "unknown"
    key: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind}{':' + self.key if self.key else ''}>"


#: The ⊤ object and the launch-parameter block object (singletons).
UNKNOWN_OBJ = MemObject("unknown")
KPARAM_OBJ = MemObject("kparam")

#: Opcodes through which an address may flow register-to-register.
_FLOW_OPS = frozenset(int_binops()) | {
    Opcode.MOV,
    Opcode.SELECT,
    Opcode.SHFL_DOWN,
    Opcode.SHFL_IDX,
    Opcode.RED_ADD,
    Opcode.RED_MAX,
    Opcode.RED_MIN,
}

#: opcode -> index of the written address operand in ``args``.
WRITE_ADDR_POS = {
    Opcode.STORE: 0,
    Opcode.ATOMIC_ADD: 0,
    Opcode.ATOMIC_MAX: 0,
    Opcode.MEMCPY: 0,
    Opcode.MEMSET: 0,
}

#: opcode -> index of the read address operand in ``args`` (memcpy reads
#: through its source; loads and atomics read what they address too).
READ_ADDR_POS = {
    Opcode.LOAD: 0,
    Opcode.ATOMIC_ADD: 0,
    Opcode.ATOMIC_MAX: 0,
    Opcode.MEMCPY: 1,
}

_RegKey = tuple[str, int]


class PointsTo:
    """Module-wide Andersen-style points-to solution (solved eagerly)."""

    def __init__(self, module: Module, callgraph: CallGraph | None = None):
        self.module = module
        self.callgraph = callgraph or build_callgraph(module)
        self._pts: dict[_RegKey, set[MemObject]] = {}
        self._contents: dict[MemObject, set[MemObject]] = {
            UNKNOWN_OBJ: {UNKNOWN_OBJ},
            KPARAM_OBJ: {KPARAM_OBJ},
        }
        #: objects whose address was handed to the host through an RPC (or
        #: a pre-lowering extern call), transitively through their contents.
        self.rpc_visible: set[MemObject] = set()
        self._solve()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pts(self, fn: str, reg: Reg | int) -> frozenset[MemObject]:
        """Objects register ``reg`` of function ``fn`` may address."""
        rid = reg.id if isinstance(reg, Reg) else reg
        return frozenset(self._pts.get((fn, rid), ()))

    def addr_objects(self, fn: str, instr: Instr, *, written: bool) -> frozenset[MemObject]:
        """Objects a memory instruction may write (or read) through.

        An empty points-to set for the address register means the address
        was derived from something the analysis cannot track, so the
        result degrades to ``{unknown}`` — never silently "nothing".
        """
        pos = (WRITE_ADDR_POS if written else READ_ADDR_POS).get(instr.op)
        if pos is None:
            return frozenset()
        regs = [a for a in instr.args if isinstance(a, Reg)]
        if pos >= len(regs):
            return frozenset({UNKNOWN_OBJ})
        objs = self.pts(fn, regs[pos])
        return objs if objs else frozenset({UNKNOWN_OBJ})

    def may_alias(self, objs_a, objs_b) -> bool:
        """May two object sets address overlapping memory?"""
        a, b = set(objs_a), set(objs_b)
        if not a or not b:
            return False
        if UNKNOWN_OBJ in a or UNKNOWN_OBJ in b:
            return True
        return bool(a & b)

    def space(self, obj: MemObject) -> MemSpace:
        """Visibility classification of one object."""
        if obj.kind == "stack":
            return MemSpace.STACK
        if obj.kind == "heap":
            return MemSpace.HEAP
        if obj.kind == "kparam":
            return MemSpace.PARAM_BLOCK
        if obj.kind == "global":
            g = self.module.globals.get(obj.key)
            if obj.key.startswith("__"):
                return MemSpace.RUNTIME
            if g is not None and g.team_local:
                return MemSpace.TEAM_SHARED
            return MemSpace.GLOBAL
        return MemSpace.UNKNOWN

    def thread_shared(self, objs) -> bool:
        """Is any object visible to more than one thread?

        Only per-thread stack allocations are thread-private; the
        per-instance heap is shared by every thread of the instance's
        team, and everything else is wider still.
        """
        return any(self.space(o) is not MemSpace.STACK for o in objs)

    def address_taken(self) -> frozenset[MemObject]:
        """Objects whose address was stored *into memory* somewhere.

        Such an object can be re-loaded through another pointer, so
        "no direct load from it" does not mean "never read".  The two
        singleton identity entries (⊤ contains ⊤, the kparam block
        contains itself) are not address-taking.
        """
        objs: set[MemObject] = set()
        for holder, cont in self._contents.items():
            objs |= cont - {holder}
        return frozenset(objs)

    def instance_shared(self, objs) -> bool:
        """Is any object visible across *ensemble instances*?"""
        return any(
            self.space(o)
            in (
                MemSpace.GLOBAL,
                MemSpace.RUNTIME,
                MemSpace.PARAM_BLOCK,
                MemSpace.UNKNOWN,
            )
            for o in objs
        )

    # ------------------------------------------------------------------
    # the solver
    # ------------------------------------------------------------------
    def _get(self, key: _RegKey) -> set[MemObject]:
        got = self._pts.get(key)
        if got is None:
            got = set()
            self._pts[key] = got
        return got

    def _cont(self, obj: MemObject) -> set[MemObject]:
        got = self._contents.get(obj)
        if got is None:
            got = set()
            self._contents[obj] = got
        return got

    def _add(self, key: _RegKey, objs) -> bool:
        tgt = self._get(key)
        before = len(tgt)
        tgt.update(objs)
        return len(tgt) != before

    def _solve(self) -> None:
        module = self.module
        returns: dict[str, set[MemObject]] = {
            name: set() for name in module.functions
        }
        changed = True
        while changed:
            changed = False
            for fn in module.functions.values():
                for block in fn.iter_blocks():
                    for index, instr in enumerate(block.instrs):
                        site = f"{fn.name}:{block.label}:{index}"
                        changed |= self._transfer(fn.name, site, instr, returns)
        self._close_rpc_visible()

    def _transfer(self, fname: str, site: str, instr: Instr, returns) -> bool:
        op = instr.op
        changed = False
        dest = instr.dest
        dkey = (fname, dest.id) if dest is not None else None

        if op is Opcode.GADDR and dkey is not None:
            return self._add(dkey, {MemObject("global", instr.sym)})
        if op is Opcode.SALLOC and dkey is not None:
            return self._add(dkey, {MemObject("stack", site)})
        if op is Opcode.KPARAM and dkey is not None:
            # Parameters 1..4 are device addresses into the marshalled
            # launch block; parameter 0 is a count.  Flow-insensitively we
            # cannot tell them apart, so all kparams get the block object —
            # an over-approximation in exactly the safe direction.
            return self._add(dkey, {KPARAM_OBJ})

        if op in _FLOW_OPS and dest is not None and dest.ty is ScalarType.I64:
            srcs: set[MemObject] = set()
            for r in instr.regs_read():
                srcs |= self._get((fname, r.id))
            if srcs:
                changed |= self._add(dkey, srcs)
            return changed

        if op is Opcode.LOAD and dest is not None and dest.ty is ScalarType.I64:
            for obj in self.addr_objects(fname, instr, written=False):
                changed |= self._add(dkey, self._cont(obj))
            return changed

        if op is Opcode.STORE:
            regs = [a for a in instr.args if isinstance(a, Reg)]
            if len(regs) >= 2 and regs[1].ty is ScalarType.I64:
                val = self._get((fname, regs[1].id))
                if val:
                    for obj in self.addr_objects(fname, instr, written=True):
                        cont = self._cont(obj)
                        before = len(cont)
                        cont.update(val)
                        changed |= len(cont) != before
            return changed

        if op in (Opcode.ATOMIC_ADD, Opcode.ATOMIC_MAX) and dest is not None:
            addr_objs = self.addr_objects(fname, instr, written=True)
            heap_cursor = MemObject("global", HEAP_CURSOR_SYM)
            if instr.op is Opcode.ATOMIC_ADD and heap_cursor in addr_objs:
                # The inlined libc allocator: the fetched cursor IS a fresh
                # per-instance heap allocation.
                changed |= self._add(dkey, {MemObject("heap", site)})
            for obj in addr_objs:
                changed |= self._add(dkey, self._cont(obj))
            return changed

        if op is Opcode.MEMCPY:
            regs = [a for a in instr.args if isinstance(a, Reg)]
            if len(regs) >= 2:
                payload: set[MemObject] = set()
                for src_obj in self.pts(fname, regs[1]) or {UNKNOWN_OBJ}:
                    payload |= self._cont(src_obj)
                if payload:
                    for dst_obj in self.pts(fname, regs[0]) or {UNKNOWN_OBJ}:
                        cont = self._cont(dst_obj)
                        before = len(cont)
                        cont.update(payload)
                        changed |= len(cont) != before
            return changed

        if op is Opcode.CALL:
            if instr.callee in MALLOC_SYMBOLS and dkey is not None:
                # Heap cloning at the allocator boundary: every call to a
                # known allocator wrapper gets its *own* heap object, even
                # when the wrapper body is linked into the module — without
                # this, all allocations would collapse into the one
                # cursor-bump site inside ``malloc`` and alias each other.
                return self._add(dkey, {MemObject("heap", site)})
            callee = self.module.functions.get(instr.callee)
            if callee is None:
                # Host extern (pre-RPC-lowering) or undefined: arguments
                # escape to the host, results are unknown.
                for r in instr.regs_read():
                    self.rpc_visible |= self._get((fname, r.id))
                if dkey is not None and dest.ty is ScalarType.I64:
                    return self._add(dkey, {UNKNOWN_OBJ})
                return changed
            for param_reg, arg in zip(callee.param_regs, instr.args):
                if isinstance(arg, Reg):
                    src = self._get((fname, arg.id))
                    if src:
                        changed |= self._add((callee.name, param_reg.id), src)
            ret = returns.setdefault(callee.name, set())
            for block in callee.iter_blocks():
                term = block.terminator
                if term is not None and term.op is Opcode.RETVAL:
                    for r in term.regs_read():
                        ret |= self._get((callee.name, r.id))
            if dkey is not None and dest.ty is ScalarType.I64 and ret:
                changed |= self._add(dkey, ret)
            return changed

        if op is Opcode.RPC:
            for r in instr.regs_read():
                self.rpc_visible |= self._get((fname, r.id))
            if dkey is not None and dest.ty is ScalarType.I64:
                changed |= self._add(dkey, {UNKNOWN_OBJ})
            return changed

        return False

    def _close_rpc_visible(self) -> None:
        """Anything reachable from an RPC-visible object is RPC-visible."""
        self.rpc_visible.add(KPARAM_OBJ)
        work = list(self.rpc_visible)
        while work:
            obj = work.pop()
            for nxt in self._contents.get(obj, ()):
                if nxt not in self.rpc_visible:
                    self.rpc_visible.add(nxt)
                    work.append(nxt)


__all__ = [
    "KPARAM_OBJ",
    "MALLOC_SYMBOLS",
    "MemObject",
    "MemSpace",
    "PointsTo",
    "READ_ADDR_POS",
    "UNKNOWN_OBJ",
    "WRITE_ADDR_POS",
]
