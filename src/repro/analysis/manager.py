"""Cached analysis results with pass-driven invalidation.

Optimization passes want interprocedural facts (points-to sets, value
ranges, the call graph), but those facts are expensive enough that
recomputing them before every pass would dominate compile time — and
*not* recomputing them after a pass mutates the IR is a miscompile
waiting to happen.  :class:`AnalysisManager` resolves the tension the
way production compilers do:

* analyses are looked up by name through :meth:`get` and cached —
  module-scoped (``callgraph``, ``pointsto``, ``ranges``) or
  function-scoped (``cfg``, ``loops``);
* every cache entry remembers a structural **fingerprint** of the IR it
  was computed from (opcode/operand identity, not object identity, and
  deliberately excluding ``meta`` so provenance stamping never
  invalidates anything);
* :meth:`refresh` compares fingerprints and drops exactly the entries
  whose IR changed: function-scoped entries for mutated functions, and
  every module-scoped entry as soon as *any* function or the global/
  symbol tables changed.

The :class:`~repro.passes.pass_manager.PassManager` calls
:meth:`snapshot`/:meth:`refresh` around every pass, and additionally
treats the fingerprint diff as a lie detector: a pass that *declared*
itself non-mutating (``preserves_ir``) but changed a function raises
:class:`~repro.errors.PassError` instead of silently serving stale
analyses to the next pass.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.callgraph import build_callgraph
from repro.analysis.cfg import CFG
from repro.analysis.loops import natural_loops
from repro.analysis.pointsto import PointsTo
from repro.analysis.ranges import ValueRanges
from repro.errors import AnalysisError
from repro.ir.module import Function, Module

#: Scope of each registered analysis: "module" results depend on the whole
#: module; "function" results depend on one function's body only.
ANALYSIS_SCOPES: dict[str, str] = {
    "callgraph": "module",
    "pointsto": "module",
    "ranges": "module",
    "cfg": "function",
    "loops": "function",
}

_MODULE_FACTORIES: dict[str, Callable[["AnalysisManager"], Any]] = {
    "callgraph": lambda am: build_callgraph(am.module),
    "pointsto": lambda am: PointsTo(am.module, am.get("callgraph")),
    "ranges": lambda am: ValueRanges(am.module, am.get("callgraph")),
}

_FUNCTION_FACTORIES: dict[str, Callable[[Function], Any]] = {
    "cfg": lambda fn: CFG(fn),
    "loops": lambda fn: natural_loops(fn),
}


def fingerprint_function(fn: Function) -> int:
    """Structural hash of a function body (ignores ``meta``/provenance)."""
    acc: list = [fn.name, tuple(fn.block_order), tuple(fn.param_regs), fn.ret_ty]
    for block in fn.iter_blocks():
        acc.append(block.label)
        for i in block.instrs:
            acc.append(
                (
                    i.op,
                    i.dest,
                    i.args,
                    i.mty,
                    i.offset,
                    repr(i.imm),
                    i.sym,
                    i.targets,
                    i.callee,
                    i.service,
                )
            )
    return hash(tuple(acc))


def fingerprint_module_shape(module: Module) -> int:
    """Hash of everything module-scoped analyses depend on *besides* the
    function bodies: the symbol tables and global flags."""
    return hash(
        (
            tuple(sorted(module.functions)),
            tuple(sorted(module.extern_host)),
            tuple(
                (g.name, g.mty, g.count, g.team_local, g.constant, g.scalar)
                for g in module.globals.values()
            ),
        )
    )


class AnalysisManager:
    """Per-module analysis cache (see module docstring)."""

    def __init__(self, module: Module):
        self.module = module
        #: (analysis, fn name or None) -> result
        self._cache: dict[tuple[str, str | None], Any] = {}
        #: fingerprints the cached entries were computed from
        self._prints: dict[str, int] = {}
        self._shape_print: int | None = None
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str, fn: str | Function | None = None) -> Any:
        """Return the (cached) result of analysis ``name``.

        Module-scoped analyses take no ``fn``; function-scoped ones
        require it (a name or the :class:`Function` itself).
        """
        scope = ANALYSIS_SCOPES.get(name)
        if scope is None:
            raise AnalysisError(f"unknown analysis {name!r}")
        fname = fn.name if isinstance(fn, Function) else fn
        if (scope == "module") != (fname is None):
            raise AnalysisError(
                f"analysis {name!r} is {scope}-scoped; "
                + ("it takes no function" if scope == "module" else "pass a function")
            )
        key = (name, fname)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        if scope == "module":
            result = _MODULE_FACTORIES[name](self)
        else:
            function = self.module.get_function(fname)
            result = _FUNCTION_FACTORIES[name](function)
        self._cache[key] = result
        return result

    def cached(self, name: str, fn: str | None = None) -> bool:
        return (name, fn) in self._cache

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Fingerprint every function (plus the module shape under the
        reserved key ``""``), for :meth:`refresh` to diff against."""
        snap = {name: fingerprint_function(f) for name, f in self.module.functions.items()}
        snap[""] = fingerprint_module_shape(self.module)
        return snap

    def changed_since(self, snap: dict[str, int]) -> set[str]:
        """Function names whose body changed since ``snap`` (``""`` marks a
        module-shape change; added and removed functions count as changed)."""
        now = self.snapshot()
        return {name for name in snap.keys() | now.keys() if snap.get(name) != now.get(name)}

    def refresh(self, changed: set[str]) -> None:
        """Drop cache entries invalidated by the ``changed`` functions."""
        if not changed:
            return
        self._cache = {
            (name, fname): result
            for (name, fname), result in self._cache.items()
            if ANALYSIS_SCOPES[name] == "function" and fname not in changed
        }

    def invalidate_all(self) -> None:
        self._cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AnalysisManager {len(self._cache)} cached, "
            f"{self.hits} hits / {self.misses} misses>"
        )


__all__ = [
    "ANALYSIS_SCOPES",
    "AnalysisManager",
    "fingerprint_function",
    "fingerprint_module_shape",
]
