"""Iterative dataflow framework over the register IR, plus the stock
analyses every checker builds on.

The framework is deliberately small: lattice elements are Python
``frozenset``s, a problem is (direction, meet, gen/kill per block), and
:func:`solve` iterates to the fixpoint in reverse postorder (or its
reverse, for backward problems).  On top of it live:

* :func:`liveness` — backward may-analysis over registers,
* :func:`reaching_defs` — forward may-analysis over definition sites,
  including per-register *undefined* pseudo-sites at the entry, which
  makes use-before-def a trivial query,
* :func:`uninitialized_uses` — the query: reads a pseudo-undefined
  definition may reach,
* :func:`par_depths` — forward propagation of the ``par_begin`` /
  ``par_end`` nesting depth, with structural problems reported instead of
  raised (the verifier turns them into :class:`~repro.errors.VerifierError`,
  the lint checkers just consume the depths).

Definition sites are ``(reg, block_label, index)`` tuples; the two pseudo
labels :data:`PARAM_DEF` and :data:`UNDEF` mark parameter registers
(defined at function entry) and the "no definition yet" state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.cfg import CFG
from repro.ir.instructions import Opcode
from repro.ir.module import Function
from repro.ir.types import Reg

#: Pseudo block label for parameter registers, defined at function entry.
PARAM_DEF = "<param>"
#: Pseudo block label for the "never defined" state of a register.
UNDEF = "<undef>"

#: One definition site: (register, block label, instruction index).
DefSite = tuple[Reg, str, int]


@dataclass
class DataflowResult:
    """Per-block fixpoint of a dataflow problem (entry and exit sets)."""

    block_in: dict[str, frozenset]
    block_out: dict[str, frozenset]


def solve(
    cfg: CFG,
    gen: dict[str, frozenset],
    kill: dict[str, frozenset],
    *,
    forward: bool = True,
    may: bool = True,
    boundary: frozenset = frozenset(),
    universe: frozenset | None = None,
) -> DataflowResult:
    """Solve a gen/kill dataflow problem to its fixpoint.

    ``may=True`` meets with union (initial value: empty set); ``may=False``
    meets with intersection (initial value: ``universe``, which is then
    required).  ``boundary`` seeds the entry block (forward) or the exit
    blocks (backward).
    """
    if not may and universe is None:
        raise ValueError("must-analyses need an explicit universe")
    blocks = cfg.rpo if forward else list(reversed(cfg.rpo))
    edges_in = cfg.preds if forward else cfg.succs
    init = frozenset() if may else universe
    assert init is not None
    state_in: dict[str, frozenset] = {b: init for b in blocks}
    state_out: dict[str, frozenset] = {b: init for b in blocks}
    if forward:
        starts = {cfg.entry}
    else:
        starts = set(cfg.return_blocks | cfg.trap_blocks)
        # A function whose reachable blocks never exit (infinite loop)
        # still needs *some* seed for the backward traversal.
        if not starts:
            starts = {blocks[0]} if blocks else set()

    changed = True
    while changed:
        changed = False
        for b in blocks:
            preds = [p for p in edges_in[b] if p in cfg.reachable]
            if b in starts and not preds:
                acc = boundary
            elif not preds:
                acc = init
            else:
                sets = [state_out[p] for p in preds]
                if b in starts:
                    sets.append(boundary)
                acc = sets[0]
                for s in sets[1:]:
                    acc = acc | s if may else acc & s
            out = gen[b] | (acc - kill[b])
            if acc != state_in[b] or out != state_out[b]:
                state_in[b], state_out[b] = acc, out
                changed = True
    return DataflowResult(block_in=state_in, block_out=state_out)


# ---------------------------------------------------------------------------
# environment fixpoint (non-set lattices: intervals, constants, ...)
# ---------------------------------------------------------------------------


def env_fixpoint(
    cfg: CFG,
    transfer: Callable[[str, dict], dict],
    join_value: Callable[[object, object], object],
    *,
    entry_env: dict | None = None,
    widen_value: Callable[[object, object], object] | None = None,
    widen_after: int = 2,
    is_top: Callable[[object], bool] = lambda v: v is None,
) -> dict[str, dict]:
    """Forward fixpoint over per-block *environments* (key -> lattice value).

    :func:`solve` handles set lattices; this handles everything else — an
    environment is a plain dict whose **missing keys mean ⊤** (unknown), so
    join intersects key sets and joins values pointwise, dropping any that
    reach ⊤ (``is_top``).  ``transfer(label, env_in)`` returns the block's
    exit environment.  After a block has been re-entered ``widen_after``
    times, ``widen_value(old, new)`` replaces the join on its entry values
    so infinite ascending chains (interval bounds growing around a loop)
    terminate.

    Returns the stable ``block_in`` environments for every reachable block.
    """

    def join_env(a: dict, b: dict) -> dict:
        out = {}
        for k in a.keys() & b.keys():
            v = join_value(a[k], b[k])
            if not is_top(v):
                out[k] = v
        return out

    state_in: dict[str, dict] = {}
    state_out: dict[str, dict] = {}
    visits: dict[str, int] = {}
    changed = True
    while changed:
        changed = False
        for label in cfg.rpo:
            preds = [
                p for p in cfg.preds[label] if p in cfg.reachable and p in state_out
            ]
            acc: dict | None = dict(entry_env or {}) if label == cfg.entry else None
            for p in preds:
                acc = state_out[p] if acc is None else join_env(acc, state_out[p])
            if acc is None:
                if label != cfg.entry:
                    continue  # no reachable input yet
                acc = {}
            old = state_in.get(label)
            if old is not None:
                visits[label] = visits.get(label, 0) + 1
                if widen_value is not None and visits[label] > widen_after:
                    widened = {}
                    for k in old.keys() & acc.keys():
                        v = widen_value(old[k], acc[k])
                        if not is_top(v):
                            widened[k] = v
                    acc = widened
            if acc != old:
                state_in[label] = acc
                state_out[label] = transfer(label, dict(acc))
                changed = True
    return state_in


# ---------------------------------------------------------------------------
# liveness
# ---------------------------------------------------------------------------


def liveness(fn: Function, cfg: CFG | None = None) -> DataflowResult:
    """Backward liveness over registers.

    ``block_in[L]`` holds the registers live on entry to block ``L``;
    a register live into the entry block is read before it is ever
    written (modulo parameters).
    """
    cfg = cfg or CFG(fn)
    gen: dict[str, frozenset] = {}
    kill: dict[str, frozenset] = {}
    for label in cfg.rpo:
        used: set[Reg] = set()
        defined: set[Reg] = set()
        for instr in fn.blocks[label].instrs:
            for r in instr.regs_read():
                if r not in defined:
                    used.add(r)
            if instr.dest is not None:
                defined.add(instr.dest)
        gen[label] = frozenset(used)
        kill[label] = frozenset(defined)
    res = solve(cfg, gen, kill, forward=False, may=True)
    # The solver is direction-relative: for a backward problem its "in" is
    # the meet over successors (the block's *exit* set) and its "out" is
    # after gen/kill (the block's *entry* set).  Swap so block_in really
    # is live-in.
    return DataflowResult(block_in=res.block_out, block_out=res.block_in)


# ---------------------------------------------------------------------------
# reaching definitions
# ---------------------------------------------------------------------------


def reaching_defs(fn: Function, cfg: CFG | None = None) -> DataflowResult:
    """Forward reaching definitions over :data:`DefSite` tuples.

    Every register starts with an :data:`UNDEF` pseudo-site (parameters
    with a :data:`PARAM_DEF` site instead), so "may this read see an
    uninitialized register" is simply "does the UNDEF site reach it".
    """
    cfg = cfg or CFG(fn)
    sites_of: dict[Reg, set[DefSite]] = {}

    def _site(reg: Reg, label: str, index: int) -> DefSite:
        s = (reg, label, index)
        sites_of.setdefault(reg, set()).add(s)
        return s

    params = set(fn.param_regs)
    boundary: set[DefSite] = set()
    referenced: set[Reg] = set(params)
    for label in cfg.rpo:
        for instr in fn.blocks[label].instrs:
            referenced.update(instr.regs_read())
            if instr.dest is not None:
                referenced.add(instr.dest)
    for reg in referenced:
        label = PARAM_DEF if reg in params else UNDEF
        boundary.add(_site(reg, label, -1))

    gen: dict[str, frozenset] = {}
    kill: dict[str, frozenset] = {}
    for label in cfg.rpo:
        block_defs: dict[Reg, DefSite] = {}
        for i, instr in enumerate(fn.blocks[label].instrs):
            if instr.dest is not None:
                block_defs[instr.dest] = _site(instr.dest, label, i)
        gen[label] = frozenset(block_defs.values())
        killed: set[DefSite] = set()
        for reg, last in block_defs.items():
            killed.update(s for s in sites_of[reg] if s != last)
        kill[label] = frozenset(killed)
    return solve(cfg, gen, kill, forward=True, may=True, boundary=frozenset(boundary))


@dataclass(frozen=True)
class UninitUse:
    """A register read that an UNDEF pseudo-definition may reach."""

    reg: Reg
    block: str
    index: int


def uninitialized_uses(fn: Function, cfg: CFG | None = None) -> list[UninitUse]:
    """All register reads reachable (on some path) before any definition."""
    cfg = cfg or CFG(fn)
    rd = reaching_defs(fn, cfg)
    uses: list[UninitUse] = []
    for label in cfg.rpo:
        maybe_undef: set[Reg] = {
            reg for reg, def_label, _ in rd.block_in[label] if def_label == UNDEF
        }
        for i, instr in enumerate(fn.blocks[label].instrs):
            for r in instr.regs_read():
                if r in maybe_undef:
                    uses.append(UninitUse(reg=r, block=label, index=i))
            if instr.dest is not None:
                maybe_undef.discard(instr.dest)
    return uses


# ---------------------------------------------------------------------------
# parallel-region depth
# ---------------------------------------------------------------------------


@dataclass
class ParDepthInfo:
    """Parallel-region nesting depth per reachable block, plus any
    structural problems found while propagating it."""

    depth_in: dict[str, int]
    depth_out: dict[str, int]
    problems: list[str]

    def depth_before(self, label: str, index: int, fn: Function) -> int:
        """Depth immediately before instruction ``index`` of block ``label``."""
        d = self.depth_in.get(label, 0)
        for instr in fn.blocks[label].instrs[:index]:
            if instr.op is Opcode.PAR_BEGIN:
                d += 1
            elif instr.op is Opcode.PAR_END:
                d = max(0, d - 1)
        return d


def par_depths(fn: Function, cfg: CFG | None = None) -> ParDepthInfo:
    """Propagate ``par_begin``/``par_end`` nesting depth along every path.

    Unlike a function-wide balance count this is per-path: it catches a
    ``par_end`` that only some predecessors matched, a return inside an
    open region, joins whose incoming depths disagree, and nesting.
    """
    cfg = cfg or CFG(fn)
    depth_in: dict[str, int] = {cfg.entry: 0}
    depth_out: dict[str, int] = {}
    problems: list[str] = []
    worklist = [cfg.entry]
    seen_join_problem: set[str] = set()
    while worklist:
        label = worklist.pop()
        d = depth_in[label]
        block = fn.blocks[label]
        for instr in block.instrs:
            if instr.op is Opcode.PAR_BEGIN:
                if d > 0:
                    problems.append(
                        f"nested par_begin in block {label!r} (depth {d})"
                    )
                d += 1
            elif instr.op is Opcode.PAR_END:
                if d == 0:
                    problems.append(
                        f"par_end without a matching par_begin on a path "
                        f"through block {label!r}"
                    )
                else:
                    d -= 1
        term = block.terminator
        if term is not None and term.op in (Opcode.RET, Opcode.RETVAL) and d != 0:
            problems.append(
                f"unbalanced par_begin/par_end: block {label!r} returns with "
                f"{d} parallel region(s) still open"
            )
        depth_out[label] = d
        for s in cfg.succs[label]:
            if s not in depth_in:
                depth_in[s] = d
                worklist.append(s)
            elif depth_in[s] != d and s not in seen_join_problem:
                seen_join_problem.add(s)
                problems.append(
                    f"unbalanced par_begin/par_end: block {s!r} is entered at "
                    f"parallel depth {depth_in[s]} on one path and {d} on another"
                )
    return ParDepthInfo(depth_in=depth_in, depth_out=depth_out, problems=problems)


# ---------------------------------------------------------------------------
# taint-style register propagation (used by the divergence checkers)
# ---------------------------------------------------------------------------


def propagate_regs(
    fn: Function,
    seed: Callable[[object], Iterable[Reg]],
    propagate: Callable[[object, set[Reg]], Iterable[Reg]],
) -> set[Reg]:
    """Generic register-taint fixpoint over a (non-SSA) function.

    ``seed(instr)`` yields registers tainted by the instruction itself;
    ``propagate(instr, tainted)`` yields registers tainted because of
    already-tainted inputs.  Because home registers are mutable, taint is
    the union over all definitions of a register, so we iterate the whole
    instruction list to a fixpoint.
    """
    tainted: set[Reg] = set()
    changed = True
    while changed:
        changed = False
        for instr in fn.iter_instrs():
            for r in seed(instr):
                if r not in tainted:
                    tainted.add(r)
                    changed = True
            for r in propagate(instr, tainted):
                if r not in tainted:
                    tainted.add(r)
                    changed = True
    return tainted
