"""Static analysis over the device IR: a reusable dataflow framework and
the ensemble-safety lint built on top of it.

The framework layer (usable by passes and tools alike):

* :class:`~repro.analysis.cfg.CFG` — explicit control-flow graph,
* :func:`~repro.analysis.dominators.dominators` /
  :func:`~repro.analysis.dominators.postdominators`,
* :mod:`~repro.analysis.dataflow` — generic gen/kill solver plus liveness,
  reaching definitions, use-before-def, parallel-region depths, and
  register-taint propagation.

The interprocedural layer (``-O2`` and static packing are built on it):

* :mod:`~repro.analysis.callgraph` — direct/indirect call graph with SCC
  condensation,
* :mod:`~repro.analysis.pointsto` — flow-insensitive Andersen-style
  points-to/alias analysis over IR memory ops,
* :mod:`~repro.analysis.loops` + :mod:`~repro.analysis.ranges` — natural
  loops, counted-loop matching, and interval abstract interpretation
  propagated across calls,
* :mod:`~repro.analysis.footprint` — static per-instance heap bounds for
  ensemble packing,
* :mod:`~repro.analysis.manager` — the cached
  :class:`~repro.analysis.manager.AnalysisManager` with pass-driven
  invalidation.

The checker layer emits structured
:class:`~repro.analysis.diagnostics.Diagnostic` records:

* ``races`` — mutable globals shared (and written) across ensemble
  instances (§3.3 of the paper),
* ``barrier-divergence`` — team synchronization reachable under
  thread-divergent branches (deadlock on real hardware),
* ``rpc`` — host-only calls that escaped RPC lowering; RPCs issued in
  parallel or divergent regions,
* ``uninit`` — registers read before any definition on some path,
* ``static-oob`` / ``static-trap`` — memory and arithmetic sites the
  :mod:`~repro.analysis.safety` certificates prove unsafe on every
  execution (DISPROVEN verdicts with line/col provenance).

Entry points: :func:`analyze_module` runs a set of checkers over a module;
``repro.tools.lint`` is the CLI; ``passes.pipeline`` exposes an opt-in
analyze stage; and the ensemble loader refuses multi-instance launches of
racy modules unless overridden.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.analysis.callgraph import CallGraph, CallSite, build_callgraph
from repro.analysis.cfg import CFG
from repro.analysis.dataflow import (
    DataflowResult,
    ParDepthInfo,
    UninitUse,
    env_fixpoint,
    liveness,
    par_depths,
    propagate_regs,
    reaching_defs,
    uninitialized_uses,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    errors,
)
from repro.analysis.divergence import check_divergence, thread_dependent_regs
from repro.analysis.dominators import dominators, postdominators
from repro.analysis.footprint import AllocSite, StaticFootprint, compute_footprint
from repro.analysis.loops import (
    CountedLoop,
    Loop,
    match_counted_loop,
    natural_loops,
)
from repro.analysis.manager import AnalysisManager
from repro.analysis.pointsto import MemObject, MemSpace, PointsTo
from repro.analysis.races import check_races, summarize_global_accesses
from repro.analysis.ranges import Interval, ValueRanges, trip_bound
from repro.analysis.rpc_legality import check_rpc_legality
from repro.analysis.safety import (
    SafetyCertificate,
    SiteProof,
    Verdict,
    analyze_kernel,
    certificates_for,
    certify_module,
    check_static_oob,
    check_static_trap,
    stamp_certificates,
)
from repro.analysis.uninit import check_uninitialized
from repro.ir.module import Module

#: Registry of all ensemble-safety checkers, by CLI name.
CHECKERS: dict[str, Callable[[Module], list[Diagnostic]]] = {
    "races": check_races,
    "barrier-divergence": check_divergence,
    "rpc": check_rpc_legality,
    "uninit": check_uninitialized,
    "static-oob": check_static_oob,
    "static-trap": check_static_trap,
}


def analyze_module(
    module: Module, checkers: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Run the named checkers (default: all) and return their findings,
    most severe first, in a stable order."""
    names = list(checkers) if checkers is not None else list(CHECKERS)
    unknown = [n for n in names if n not in CHECKERS]
    if unknown:
        raise KeyError(
            f"unknown checker(s) {unknown}; available: {sorted(CHECKERS)}"
        )
    diags: list[Diagnostic] = []
    for name in names:
        diags.extend(CHECKERS[name](module))
    diags.sort(
        key=lambda d: (
            -int(d.severity),
            d.checker,
            d.function,
            d.block or "",
            -1 if d.index is None else d.index,
        )
    )
    return diags


__all__ = [
    "AllocSite",
    "AnalysisManager",
    "CFG",
    "CHECKERS",
    "CallGraph",
    "CallSite",
    "CountedLoop",
    "DataflowResult",
    "Diagnostic",
    "Interval",
    "Loop",
    "MemObject",
    "MemSpace",
    "ParDepthInfo",
    "PointsTo",
    "SafetyCertificate",
    "Severity",
    "SiteProof",
    "StaticFootprint",
    "UninitUse",
    "ValueRanges",
    "Verdict",
    "analyze_kernel",
    "analyze_module",
    "build_callgraph",
    "certificates_for",
    "certify_module",
    "compute_footprint",
    "check_divergence",
    "check_races",
    "check_rpc_legality",
    "check_static_oob",
    "check_static_trap",
    "check_uninitialized",
    "stamp_certificates",
    "count_by_severity",
    "dominators",
    "env_fixpoint",
    "errors",
    "liveness",
    "match_counted_loop",
    "natural_loops",
    "par_depths",
    "postdominators",
    "propagate_regs",
    "reaching_defs",
    "summarize_global_accesses",
    "thread_dependent_regs",
    "trip_bound",
    "uninitialized_uses",
]
