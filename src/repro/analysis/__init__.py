"""Static analysis over the device IR: a reusable dataflow framework and
the ensemble-safety lint built on top of it.

The framework layer (usable by passes and tools alike):

* :class:`~repro.analysis.cfg.CFG` — explicit control-flow graph,
* :func:`~repro.analysis.dominators.dominators` /
  :func:`~repro.analysis.dominators.postdominators`,
* :mod:`~repro.analysis.dataflow` — generic gen/kill solver plus liveness,
  reaching definitions, use-before-def, parallel-region depths, and
  register-taint propagation.

The checker layer emits structured
:class:`~repro.analysis.diagnostics.Diagnostic` records:

* ``races`` — mutable globals shared (and written) across ensemble
  instances (§3.3 of the paper),
* ``barrier-divergence`` — team synchronization reachable under
  thread-divergent branches (deadlock on real hardware),
* ``rpc`` — host-only calls that escaped RPC lowering; RPCs issued in
  parallel or divergent regions,
* ``uninit`` — registers read before any definition on some path.

Entry points: :func:`analyze_module` runs a set of checkers over a module;
``repro.tools.lint`` is the CLI; ``passes.pipeline`` exposes an opt-in
analyze stage; and the ensemble loader refuses multi-instance launches of
racy modules unless overridden.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import (
    DataflowResult,
    ParDepthInfo,
    UninitUse,
    liveness,
    par_depths,
    propagate_regs,
    reaching_defs,
    uninitialized_uses,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    errors,
)
from repro.analysis.divergence import check_divergence, thread_dependent_regs
from repro.analysis.dominators import dominators, postdominators
from repro.analysis.races import check_races, summarize_global_accesses
from repro.analysis.rpc_legality import check_rpc_legality
from repro.analysis.uninit import check_uninitialized
from repro.ir.module import Module

#: Registry of all ensemble-safety checkers, by CLI name.
CHECKERS: dict[str, Callable[[Module], list[Diagnostic]]] = {
    "races": check_races,
    "barrier-divergence": check_divergence,
    "rpc": check_rpc_legality,
    "uninit": check_uninitialized,
}


def analyze_module(
    module: Module, checkers: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Run the named checkers (default: all) and return their findings,
    most severe first, in a stable order."""
    names = list(checkers) if checkers is not None else list(CHECKERS)
    unknown = [n for n in names if n not in CHECKERS]
    if unknown:
        raise KeyError(
            f"unknown checker(s) {unknown}; available: {sorted(CHECKERS)}"
        )
    diags: list[Diagnostic] = []
    for name in names:
        diags.extend(CHECKERS[name](module))
    diags.sort(
        key=lambda d: (
            -int(d.severity),
            d.checker,
            d.function,
            d.block or "",
            -1 if d.index is None else d.index,
        )
    )
    return diags


__all__ = [
    "CFG",
    "CHECKERS",
    "DataflowResult",
    "Diagnostic",
    "ParDepthInfo",
    "Severity",
    "UninitUse",
    "analyze_module",
    "check_divergence",
    "check_races",
    "check_rpc_legality",
    "check_uninitialized",
    "count_by_severity",
    "dominators",
    "errors",
    "liveness",
    "par_depths",
    "postdominators",
    "propagate_regs",
    "reaching_defs",
    "summarize_global_accesses",
    "thread_dependent_regs",
    "uninitialized_uses",
]
