"""Structured diagnostics emitted by the ensemble-safety checkers.

A :class:`Diagnostic` pins a finding to (function, block, instruction
index) — and, when the frontend recorded source locations, to the user's
DSL source line — with a severity, a human message, and an optional fix-it
hint.  Checkers return lists of these; the lint CLI renders them as text
or JSON, the pipeline's analyze stage and the ensemble loader's launch
gate act on their severities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.instructions import Instr


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is meaningful (ERROR > WARNING > NOTE)."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static checker.

    ``checker`` is the registry name of the pass that produced it;
    ``sym`` optionally names the symbol at fault (a global, a service);
    ``loc`` is the ``(line, col)`` the frontend recorded, when available.
    """

    severity: Severity
    checker: str
    function: str
    block: str | None
    index: int | None
    message: str
    hint: str | None = None
    sym: str | None = None
    loc: tuple[int, int] | None = field(default=None)

    def format(self) -> str:
        """Render as one (or two, with a hint) human-readable lines."""
        where = self.function
        if self.block is not None:
            where += f":{self.block}"
        if self.index is not None:
            where += f":{self.index}"
        if self.loc is not None:
            where += f" (line {self.loc[0]})"
        text = f"{self.severity.label}[{self.checker}] {where}: {self.message}"
        if self.hint:
            text += f"\n  hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        """JSON-ready representation (used by ``repro.tools.lint --json``)."""
        return {
            "severity": self.severity.label,
            "checker": self.checker,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "line": None if self.loc is None else self.loc[0],
            "col": None if self.loc is None else self.loc[1],
            "sym": self.sym,
            "message": self.message,
            "hint": self.hint,
        }


def instr_loc(instr: Instr) -> tuple[int, int] | None:
    """The frontend-recorded ``(line, col)`` of an instruction, if any."""
    loc = instr.meta.get("loc")
    if (
        isinstance(loc, tuple)
        and len(loc) == 2
        and all(isinstance(v, int) for v in loc)
    ):
        return loc
    return None


def count_by_severity(diagnostics: list[Diagnostic]) -> dict[str, int]:
    """``{"error": n, "warning": n, "note": n}`` summary of a finding list."""
    counts = {sev.label: 0 for sev in Severity}
    for d in diagnostics:
        counts[d.severity.label] += 1
    return counts


def errors(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Only the ERROR-severity findings."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]
