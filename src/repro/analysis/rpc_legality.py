"""RPC-legality checker.

Host-only functions (``printf``, file I/O, ...) must never execute as
plain device calls: the RPC lowering pass rewrites every ``call`` to a
declared host extern into an ``rpc`` instruction serviced by the host.
This checker enforces the contract and audits how the surviving RPC sites
are used:

* a ``call`` whose callee is a declared host extern — **error**: RPC
  lowering has not run (or new code was linked in after it);
* a ``call`` to a symbol defined nowhere — **error**: it can neither be
  inlined nor serviced (the verifier also rejects this, but the lint
  surface reports it with a fix-it instead of raising);
* an ``rpc`` issued inside a parallel region — **warning**: every active
  thread traps to the host individually, serializing the team on the RPC
  channel (the portable-runtime experience report, arXiv:2106.03219,
  measures exactly this cost);
* an ``rpc`` issued under a thread-divergent branch inside a parallel
  region — **warning**: legal in this runtime, but the host sees a
  data-dependent subset of threads, which makes output nondeterministic
  across ensemble runs.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import par_depths
from repro.analysis.diagnostics import Diagnostic, Severity, instr_loc
from repro.analysis.divergence import thread_dependent_regs
from repro.analysis.dominators import postdominators
from repro.ir.instructions import Opcode
from repro.ir.module import Module

CHECKER = "rpc"


def check_rpc_legality(module: Module) -> list[Diagnostic]:
    """Verify host-extern calls were lowered and audit RPC call sites."""
    diags: list[Diagnostic] = []
    for fn in module.functions.values():
        if not fn.block_order:
            continue
        has_rpc = any(i.op is Opcode.RPC for i in fn.iter_instrs())
        cfg = CFG(fn) if has_rpc else None
        depths = par_depths(fn, cfg) if cfg is not None else None
        divergent_rpc_blocks: set[str] = set()
        if cfg is not None and depths is not None:
            tainted = thread_dependent_regs(fn)
            pdom = postdominators(cfg)
            for label in cfg.rpo:
                term = fn.blocks[label].terminator
                if (
                    term is None
                    or term.op is not Opcode.CBR
                    or depths.depth_out.get(label, 0) < 1
                    or not any(r in tainted for r in term.regs_read())
                ):
                    continue
                stop = pdom[label] - {label}
                stack = [s for s in cfg.succs[label] if s not in stop]
                while stack:
                    b = stack.pop()
                    if b in divergent_rpc_blocks:
                        continue
                    divergent_rpc_blocks.add(b)
                    stack.extend(
                        s for s in cfg.succs[b] if s not in stop
                    )

        for block in fn.iter_blocks():
            for idx, instr in enumerate(block.instrs):
                if instr.op is Opcode.CALL:
                    callee = instr.callee
                    if callee in module.functions:
                        continue
                    if callee in module.extern_host:
                        diags.append(
                            Diagnostic(
                                severity=Severity.ERROR,
                                checker=CHECKER,
                                function=fn.name,
                                block=block.label,
                                index=idx,
                                sym=callee,
                                loc=instr_loc(instr),
                                message=(
                                    f"call to host-only function @{callee} was "
                                    "not lowered to an RPC"
                                ),
                                hint="run the rpc_lowering pass (compile_for_device)",
                            )
                        )
                    else:
                        diags.append(
                            Diagnostic(
                                severity=Severity.ERROR,
                                checker=CHECKER,
                                function=fn.name,
                                block=block.label,
                                index=idx,
                                sym=callee,
                                loc=instr_loc(instr),
                                message=(
                                    f"call to @{callee}, which is neither a "
                                    "device function nor a declared host extern"
                                ),
                                hint=(
                                    "declare it with Program.extern_host() or "
                                    "link the module that defines it"
                                ),
                            )
                        )
                elif instr.op is Opcode.RPC and depths is not None:
                    depth = depths.depth_before(block.label, idx, fn)
                    if block.label in divergent_rpc_blocks:
                        diags.append(
                            Diagnostic(
                                severity=Severity.WARNING,
                                checker=CHECKER,
                                function=fn.name,
                                block=block.label,
                                index=idx,
                                sym=instr.service,
                                loc=instr_loc(instr),
                                message=(
                                    f"rpc ${instr.service} issued under a "
                                    "thread-divergent branch: a data-dependent "
                                    "subset of threads calls the host"
                                ),
                                hint=(
                                    "guard the RPC with a uniform condition "
                                    "(e.g. thread_id() == 0) or hoist it out of "
                                    "the divergent region"
                                ),
                            )
                        )
                    elif depth >= 1:
                        diags.append(
                            Diagnostic(
                                severity=Severity.WARNING,
                                checker=CHECKER,
                                function=fn.name,
                                block=block.label,
                                index=idx,
                                sym=instr.service,
                                loc=instr_loc(instr),
                                message=(
                                    f"rpc ${instr.service} issued inside a "
                                    "parallel region: every active thread "
                                    "performs the host round-trip"
                                ),
                                hint=(
                                    "move the RPC outside parallel_range, or "
                                    "restrict it to one thread"
                                ),
                            )
                        )
    return diags
