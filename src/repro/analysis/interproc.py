"""Interprocedural facts rendered as diagnostics (``lint --interproc``).

The optimization passes consume the interprocedural analyses silently;
this module makes the same facts *visible*: what the call graph looks
like, which allocation sites the footprint estimator could (and could
not) bound, which globals escape to the host through RPC, and the
bottom line — the per-instance heap interval static packing would use.

Everything here is a fact, not a safety finding, so the default severity
is NOTE; the exceptions are WARNINGs for the situations that silently
disable the optimizations built on top (recursive call cycles, unbounded
allocation sites) — exactly the things a user porting a benchmark wants
pointed at when static packing falls back to runtime bisection.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.diagnostics import Diagnostic, Severity, instr_loc
from repro.analysis.footprint import DEFAULT_ENTRY, compute_footprint
from repro.analysis.pointsto import PointsTo
from repro.ir.module import Module

CHECKER = "interproc"


def _site_instr(module: Module, function: str, block: str, index: int):
    fn = module.functions.get(function)
    if fn is None or block not in fn.blocks:
        return None
    instrs = fn.blocks[block].instrs
    return instrs[index] if 0 <= index < len(instrs) else None


def _interval(lo, hi) -> str:
    left = "-inf" if lo is None else str(lo)
    right = "+inf" if hi is None else str(hi)
    return f"[{left}, {right}]"


def interproc_facts(module: Module, *, entry: str = DEFAULT_ENTRY) -> list[Diagnostic]:
    """Run the interprocedural analyses and report their facts."""
    cg: CallGraph = build_callgraph(module)
    pt = PointsTo(module, cg)
    fp = compute_footprint(module, entry=entry, callgraph=cg)
    diags: list[Diagnostic] = []

    for scc in cg.sccs:
        if len(scc) > 1 or cg.is_recursive(scc[0]):
            diags.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    checker=CHECKER,
                    function=scc[0],
                    block=None,
                    index=None,
                    message=(
                        "recursive call cycle "
                        + " -> ".join(scc)
                        + ": invocation and trip bounds degrade to unbounded"
                    ),
                    hint="unroll or bound the recursion to re-enable static packing",
                )
            )

    for site in fp.sites:
        instr = _site_instr(module, site.function, site.block, site.index)
        loc = instr_loc(instr) if instr is not None else None
        total = site.total_hi
        if total is None:
            diags.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    checker=CHECKER,
                    function=site.function,
                    block=site.block,
                    index=site.index,
                    message=(
                        f"unbounded allocation: {site.callee} with size "
                        f"{_interval(site.size.lo, site.size.hi)} x count "
                        f"{_interval(site.count.lo, site.count.hi)}"
                    ),
                    hint=(
                        "a runtime-dependent size or an uncounted loop hides "
                        "the bound; static packing falls back to OOM bisection"
                    ),
                    loc=loc,
                )
            )
        else:
            diags.append(
                Diagnostic(
                    severity=Severity.NOTE,
                    checker=CHECKER,
                    function=site.function,
                    block=site.block,
                    index=site.index,
                    message=(
                        f"allocation bound: {site.callee} contributes at most "
                        f"{total} B per instance (size "
                        f"{_interval(site.size.lo, site.size.hi)}, count "
                        f"{_interval(site.count.lo, site.count.hi)})"
                    ),
                    loc=loc,
                )
            )

    for obj in sorted(pt.rpc_visible, key=repr):
        if getattr(obj, "kind", None) == "global":
            diags.append(
                Diagnostic(
                    severity=Severity.NOTE,
                    checker=CHECKER,
                    function=entry,
                    block=None,
                    index=None,
                    message=f"global @{obj.key} escapes to the host via RPC",
                    sym=obj.key,
                )
            )

    if entry in module.functions:
        hi = "unbounded" if fp.heap_hi is None else f"{fp.heap_hi} B"
        diags.append(
            Diagnostic(
                severity=Severity.NOTE,
                checker=CHECKER,
                function=entry,
                block=None,
                index=None,
                message=(
                    f"static footprint: per-instance heap in "
                    f"[{fp.heap_lo} B, {hi}]; globals {fp.globals_bytes} B; "
                    f"{len(fp.sites)} allocation site(s)"
                ),
            )
        )
    return diags


__all__ = ["CHECKER", "interproc_facts"]
