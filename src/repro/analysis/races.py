"""Cross-instance race checker (§3.3 of the paper, made enforceable).

Ensemble execution runs N application instances inside one kernel launch,
so module globals that a normal process would own privately become shared
device memory.  Any *written* mutable global is therefore a cross-instance
race: two instances increment the same counter, read each other's state,
or worse.  The paper's proof-of-concept leaves spotting this to the user;
this checker finds it statically.

Classification per global:

* ``constant`` or ``team_local`` (already relocated by
  :func:`~repro.passes.globals_to_shared.globals_to_shared_pass`) — safe,
  no diagnostic.
* runtime-owned (``__``-prefixed: heap cursor, interned strings) — skipped;
  the runtime shares them *by design* (the heap cursor is an atomic bump
  allocator, which is exactly how instances get disjoint heaps).
* mutable and stored to — **error**: recommend ``globals_to_shared``.
* mutable, only ever updated atomically — **warning**: data-race-free, but
  instances still observe each other's updates (per-instance totals mix).
* mutable but never written — **note**: suggest declaring it constant.

Address derivation is tracked intraprocedurally: a register holding
``gaddr @g`` taints every register derived from it through moves, selects
and pointer arithmetic, and any store/atomic/memcpy/memset whose address
operand is tainted counts as a write to ``g``.
"""

from __future__ import annotations

from repro.analysis.dataflow import propagate_regs
from repro.analysis.diagnostics import Diagnostic, Severity, instr_loc
from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Function, Module
from repro.ir.types import Reg

CHECKER = "races"

#: Opcodes through which a global's address may flow into another register.
_ADDR_FLOW = frozenset(
    {Opcode.MOV, Opcode.SELECT, Opcode.ADD, Opcode.SUB, Opcode.IMIN, Opcode.IMAX}
)

#: (opcode, index of the *written* address operand in ``args``)
_WRITE_ADDR = {
    Opcode.STORE: 0,
    Opcode.ATOMIC_ADD: 0,
    Opcode.ATOMIC_MAX: 0,
    Opcode.MEMCPY: 0,
    Opcode.MEMSET: 0,
}

_ATOMICS = frozenset({Opcode.ATOMIC_ADD, Opcode.ATOMIC_MAX})


def _derived_regs(fn: Function, sym: str) -> set[Reg]:
    """Registers that may hold an address derived from global ``sym``."""

    def seed(instr: Instr):
        if instr.op is Opcode.GADDR and instr.sym == sym and instr.dest is not None:
            yield instr.dest

    def propagate(instr: Instr, tainted: set[Reg]):
        if (
            instr.op in _ADDR_FLOW
            and instr.dest is not None
            and any(r in tainted for r in instr.regs_read())
        ):
            yield instr.dest

    return propagate_regs(fn, seed, propagate)


class GlobalAccessSummary:
    """Where one global is read and written, across all functions."""

    def __init__(self, sym: str):
        self.sym = sym
        #: (function, block, index, instr) of stores/memcpy/memset writes
        self.plain_writes: list[tuple[str, str, int, Instr]] = []
        #: (function, block, index, instr) of atomic updates
        self.atomic_writes: list[tuple[str, str, int, Instr]] = []
        self.read_anywhere = False


def summarize_global_accesses(module: Module) -> dict[str, GlobalAccessSummary]:
    """Classify every access to every module global, per function."""
    summaries: dict[str, GlobalAccessSummary] = {}
    for sym in module.globals:
        summary = GlobalAccessSummary(sym)
        summaries[sym] = summary
        for fn in module.functions.values():
            if not any(
                i.op is Opcode.GADDR and i.sym == sym for i in fn.iter_instrs()
            ):
                continue
            derived = _derived_regs(fn, sym)
            for block in fn.iter_blocks():
                for idx, instr in enumerate(block.instrs):
                    addr_pos = _WRITE_ADDR.get(instr.op)
                    regs = [a for a in instr.args if isinstance(a, Reg)]
                    if addr_pos is not None and regs and regs[addr_pos] in derived:
                        kind = (
                            summary.atomic_writes
                            if instr.op in _ATOMICS
                            else summary.plain_writes
                        )
                        kind.append((fn.name, block.label, idx, instr))
                        # memcpy also reads through its source operand
                        if instr.op is Opcode.MEMCPY and regs[1] in derived:
                            summary.read_anywhere = True
                        continue
                    if instr.op is Opcode.LOAD and regs and regs[0] in derived:
                        summary.read_anywhere = True
                    elif instr.op is Opcode.MEMCPY and len(regs) > 1 and regs[1] in derived:
                        summary.read_anywhere = True
    return summaries


def check_races(module: Module) -> list[Diagnostic]:
    """Flag mutable globals shared (and raced on) across ensemble instances."""
    diags: list[Diagnostic] = []
    summaries = summarize_global_accesses(module)
    for sym, g in module.globals.items():
        if g.constant or g.team_local or sym.startswith("__"):
            continue
        summary = summaries[sym]
        if summary.plain_writes:
            fn_name, block, idx, instr = summary.plain_writes[0]
            nsites = len(summary.plain_writes) + len(summary.atomic_writes)
            diags.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    checker=CHECKER,
                    function=fn_name,
                    block=block,
                    index=idx,
                    sym=sym,
                    loc=instr_loc(instr),
                    message=(
                        f"mutable global @{sym} is written ({nsites} site(s)); "
                        "ensemble instances share it and will race"
                    ),
                    hint=(
                        "relocate it per-team with the globals_to_shared pass "
                        "(Loader(team_local_globals=True)), or launch a single "
                        "instance"
                    ),
                )
            )
        elif summary.atomic_writes:
            fn_name, block, idx, instr = summary.atomic_writes[0]
            diags.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    checker=CHECKER,
                    function=fn_name,
                    block=block,
                    index=idx,
                    sym=sym,
                    loc=instr_loc(instr),
                    message=(
                        f"mutable global @{sym} is updated atomically; "
                        "instances are data-race-free but still share its value"
                    ),
                    hint=(
                        "if per-instance totals must stay separate, relocate it "
                        "with globals_to_shared"
                    ),
                )
            )
        else:
            diags.append(
                Diagnostic(
                    severity=Severity.NOTE,
                    checker=CHECKER,
                    function="<module>",
                    block=None,
                    index=None,
                    sym=sym,
                    message=(
                        f"mutable global @{sym} is never written"
                        + ("" if summary.read_anywhere else " (nor read)")
                    ),
                    hint="declare it constant=True to document read-only sharing",
                )
            )
    return diags
