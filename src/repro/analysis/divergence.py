"""Barrier-divergence checker.

A team-wide synchronization point (``barrier``, the implicit barrier of
``par_end``, a team reduction) deadlocks on real hardware when it executes
under *non-uniform* control flow: some threads of the team take the branch
that reaches the barrier and wait there forever for the threads that did
not (GPU First, arXiv:2306.11686, hit exactly this porting whole CPU
programs to device).

The check combines three analyses from the framework:

1. **Thread-dependence taint** — registers whose value may differ between
   threads of one instance: seeded by ``tid``/``laneid`` (and per-thread
   sources: stack allocations, atomic fetch results, shuffles), propagated
   through ALU/moves/selects/conversions and loads from thread-dependent
   addresses.  Team-level reductions produce *uniform* results and stop
   the taint.
2. **Parallel-region depth** — divergence only matters where more than one
   thread executes, i.e. inside ``par_begin``/``par_end``; the sequential
   initial-thread mode cannot diverge.
3. **Post-dominance** (ignoring aborting ``trap`` paths) — a sync point S
   is safe with respect to a conditional branch B iff S post-dominates B:
   whichever way the branch goes, every surviving thread still reaches S.

A diagnostic fires for each sync instruction that is reachable from a
thread-dependent conditional branch inside a parallel region without
post-dominating it.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import par_depths, propagate_regs
from repro.analysis.diagnostics import Diagnostic, Severity, instr_loc
from repro.analysis.dominators import postdominators
from repro.ir.instructions import Instr, Opcode, SYNC_OPS
from repro.ir.module import Function, Module
from repro.ir.types import Reg

CHECKER = "barrier-divergence"

#: Opcodes whose result is inherently per-thread.
_THREAD_SOURCES = frozenset(
    {
        Opcode.TID,
        Opcode.LANEID,
        Opcode.SALLOC,  # per-thread stack slot: the address itself differs
        Opcode.ATOMIC_ADD,  # fetch result orders threads against each other
        Opcode.ATOMIC_MAX,
        Opcode.SHFL_DOWN,  # another lane's value still varies per lane
        Opcode.SHFL_IDX,
    }
)

#: Opcodes whose result is uniform across the team even with tainted
#: operands (reductions broadcast one value to every thread).
_UNIFORM_RESULTS = frozenset({Opcode.RED_ADD, Opcode.RED_MAX, Opcode.RED_MIN})

#: Opcodes that never taint their destination: calls and RPCs execute in
#: whatever mode is active (this analysis is intraprocedural; the final,
#: fully inlined module has no calls left), launch parameters and team
#: coordinates are uniform per team.
_NEVER_TAINT = frozenset(
    {Opcode.CALL, Opcode.RPC, Opcode.KPARAM, Opcode.CTAID, Opcode.NCTAID, Opcode.INSTANCE}
) | _UNIFORM_RESULTS


def thread_dependent_regs(fn: Function) -> set[Reg]:
    """Registers whose value may differ across threads of one instance."""

    def seed(instr: Instr):
        if instr.op in _THREAD_SOURCES and instr.dest is not None:
            yield instr.dest

    def propagate(instr: Instr, tainted: set[Reg]):
        if instr.dest is None or instr.op in _NEVER_TAINT:
            return
        if instr.op in _THREAD_SOURCES:
            return
        if any(r in tainted for r in instr.regs_read()):
            yield instr.dest

    return propagate_regs(fn, seed, propagate)


def _sync_sites(fn: Function) -> list[tuple[str, int, Instr]]:
    sites = []
    for block in fn.iter_blocks():
        for idx, instr in enumerate(block.instrs):
            if instr.op in SYNC_OPS or instr.op is Opcode.BARRIER:
                sites.append((block.label, idx, instr))
    return sites


def check_divergence(module: Module) -> list[Diagnostic]:
    """Flag sync points reachable under divergent (thread-dependent) branches."""
    diags: list[Diagnostic] = []
    for fn in module.functions.values():
        if not fn.block_order:
            continue
        sites = _sync_sites(fn)
        if not sites:
            continue
        cfg = CFG(fn)
        depths = par_depths(fn, cfg)
        tainted = thread_dependent_regs(fn)
        pdom = postdominators(cfg)

        divergent_branches: list[tuple[str, Instr]] = []
        for label in cfg.rpo:
            term = fn.blocks[label].terminator
            if (
                term is not None
                and term.op is Opcode.CBR
                and depths.depth_out.get(label, 0) >= 1
                and any(r in tainted for r in term.regs_read())
            ):
                divergent_branches.append((label, term))
        if not divergent_branches:
            continue

        reach_cache: dict[str, set[str]] = {}
        flagged: set[tuple[str, int]] = set()
        for branch_label, branch in divergent_branches:
            if branch_label not in reach_cache:
                # Divergence introduced by the branch is resolved at its
                # post-dominators (every thread funnels through them), so
                # only blocks reachable *before* one count as divergent.
                stop = pdom[branch_label] - {branch_label}
                reached: set[str] = set()
                stack = [s for s in cfg.succs[branch_label] if s not in stop]
                while stack:
                    b = stack.pop()
                    if b in reached:
                        continue
                    reached.add(b)
                    stack.extend(
                        s
                        for s in cfg.succs[b]
                        if s not in stop and s not in reached
                    )
                reach_cache[branch_label] = reached
            reached = reach_cache[branch_label]
            for label, idx, instr in sites:
                if (label, idx) in flagged:
                    continue
                if label not in reached:
                    continue
                flagged.add((label, idx))
                what = instr.op.name.lower()
                diags.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        checker=CHECKER,
                        function=fn.name,
                        block=label,
                        index=idx,
                        loc=instr_loc(instr),
                        message=(
                            f"{what} may execute under a thread-divergent branch "
                            f"(block {branch_label!r}): threads that skip it will "
                            "deadlock the team on real hardware"
                        ),
                        hint=(
                            "hoist the synchronization out of the divergent "
                            "region so every thread of the team reaches it"
                        ),
                    )
                )
    return diags
