"""Interprocedural call graph over a linked module.

The IR only has direct calls (``call`` instructions carrying a callee
symbol), but a useful call graph still has to answer three questions the
intraprocedural analyses cannot:

* *who calls whom* — edges per call site, with the site's location, so
  facts (argument ranges, points-to sets) can be propagated across calls;
* *what is recursive* — Tarjan SCC condensation groups mutually recursive
  functions; analyses widen to ⊤ inside a cycle instead of diverging;
* *what order to visit* — a (reverse) topological order over the
  condensation, so bottom-up summaries (returns, footprints) and top-down
  facts (parameter ranges) each converge in one sweep on acyclic graphs.

Calls to symbols defined nowhere in the module (host externs before RPC
lowering, unresolved references) are collected as *external* edges rather
than dropped: the points-to analysis must treat their arguments as
escaping, and the range analysis must treat their results as unknown.
``rpc`` instructions are likewise surfaced as external edges to their
service name, because the host can observe (and mutate) anything
reachable from an RPC argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Module

#: Synthetic callee name for edges whose target is outside the module.
EXTERNAL = "<extern>"


@dataclass(frozen=True)
class CallSite:
    """One ``call`` (or ``rpc``) instruction, located in its caller."""

    caller: str
    block: str
    index: int
    callee: str
    is_rpc: bool = False
    is_extern: bool = False

    @property
    def external(self) -> bool:
        return self.is_rpc or self.is_extern or self.callee == EXTERNAL


@dataclass
class CallGraph:
    """Direct-call graph of one module, with SCC condensation.

    Attributes
    ----------
    callees / callers:
        Adjacency over *defined* function names (external edges excluded).
    sites:
        Every call site, including external and RPC edges.
    sccs:
        Strongly connected components, in **reverse topological order**
        (callees before callers); each SCC is a tuple of function names.
    scc_of:
        Function name -> index into :attr:`sccs`.
    """

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    sites: list[CallSite] = field(default_factory=list)
    sccs: list[tuple[str, ...]] = field(default_factory=list)
    scc_of: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def sites_in(self, caller: str) -> list[CallSite]:
        """Call sites textually inside ``caller``."""
        return [s for s in self.sites if s.caller == caller]

    def sites_of(self, callee: str) -> list[CallSite]:
        """Call sites whose target is ``callee``."""
        return [s for s in self.sites if s.callee == callee]

    def is_recursive(self, name: str) -> bool:
        """True when ``name`` sits on a call cycle (including self-calls)."""
        idx = self.scc_of.get(name)
        if idx is None:
            return False
        scc = self.sccs[idx]
        return len(scc) > 1 or name in self.callees.get(name, ())

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Defined functions reachable from ``roots`` along call edges."""
        seen = set(r for r in roots if r in self.callees)
        stack = list(seen)
        while stack:
            for callee in self.callees.get(stack.pop(), ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def topo_order(self, *, callees_first: bool = True) -> list[str]:
        """Functions flattened from the SCC condensation.

        ``callees_first=True`` yields a bottom-up order (summaries);
        ``False`` yields top-down (callers before callees), which is what
        parameter-fact propagation wants.
        """
        order = [name for scc in self.sccs for name in scc]
        return order if callees_first else list(reversed(order))


def build_callgraph(module: Module) -> CallGraph:
    """Construct the :class:`CallGraph` of ``module``."""
    cg = CallGraph()
    for name in module.functions:
        cg.callees[name] = set()
        cg.callers[name] = set()
    for fn in module.functions.values():
        for block in fn.iter_blocks():
            for index, instr in enumerate(block.instrs):
                _record(cg, module, fn.name, block.label, index, instr)
    cg.sccs = _tarjan_sccs(cg.callees)
    cg.scc_of = {
        name: i for i, scc in enumerate(cg.sccs) for name in scc
    }
    return cg


def _record(
    cg: CallGraph, module: Module, caller: str, block: str, index: int, instr: Instr
) -> None:
    if instr.op is Opcode.CALL:
        callee = instr.callee
        if callee in module.functions:
            cg.callees[caller].add(callee)
            cg.callers[callee].add(caller)
            cg.sites.append(CallSite(caller, block, index, callee))
        else:
            # Keep the unresolved symbol name (diagnostics want it); the
            # ``is_extern`` flag is what marks the edge as external.
            cg.sites.append(
                CallSite(caller, block, index, callee or EXTERNAL, is_extern=True)
            )
    elif instr.op is Opcode.RPC:
        cg.sites.append(
            CallSite(caller, block, index, instr.service or EXTERNAL, is_rpc=True)
        )


def _tarjan_sccs(edges: dict[str, set[str]]) -> list[tuple[str, ...]]:
    """Tarjan's algorithm, iterative; SCCs emitted in reverse topological
    order (every SCC before any of its callers)."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[tuple[str, ...]] = []
    counter = 0

    for root in sorted(edges):
        if root in index_of:
            continue
        # Explicit DFS stack of (node, iterator position over successors).
        work: list[tuple[str, list[str], int]] = [(root, sorted(edges[root]), 0)]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs, pos = work.pop()
            advanced = False
            while pos < len(succs):
                nxt = succs[pos]
                pos += 1
                if nxt not in index_of:
                    work.append((node, succs, pos))
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(edges[nxt]), 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                scc: list[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                sccs.append(tuple(sorted(scc)))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


__all__ = ["CallGraph", "CallSite", "EXTERNAL", "build_callgraph"]
