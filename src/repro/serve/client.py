"""The blessed programmatic entry to a running campaign server.

:class:`Client` is the remote mirror of
:meth:`repro.sched.Scheduler.submit`: the same keywords, but ``app`` is a
registry name instead of a live program object, and the return value is a
:class:`RemoteJob` whose :meth:`~RemoteJob.result` /
:meth:`~RemoteJob.stream` are the wire-side twins of
``JobFuture.result()`` and job events.  Everything crossing the socket is
a versioned :mod:`repro.wire` document; failures surface as
:class:`~repro.errors.ServeError` carrying a stable error code.

The client is deliberately synchronous — plain blocking sockets, no
asyncio — so it drops into scripts, tests, and the ``repro submit`` CLI
without an event loop.  One connection serves any number of jobs::

    from repro.host import LaunchSpec
    from repro.serve.client import Client

    with Client(("127.0.0.1", 7421)) as client:
        job = client.submit("pagerank", LaunchSpec("campaign.args"))
        result = job.result()          # JobResult, bitwise the CLI's
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Any, Iterator

from repro import wire
from repro.errors import ServeError
from repro.host.launch import LaunchSpec
from repro.sched.jobs import JobResult, JobState, JobTicket
from repro.serve import protocol
from repro.serve.protocol import Submission


class RemoteJob:
    """Client-side handle to one submitted campaign.

    Holds the serializable :class:`~repro.sched.jobs.JobTicket` minted by
    the server (``job.ticket``); all plumbing routes through the ticket's
    ``job_id``, mirroring the ``JobFuture``/``JobTicket`` split on the
    scheduler side.
    """

    def __init__(self, client: "Client", ticket: JobTicket):
        self.client = client
        self.ticket = ticket
        self._terminal: dict | None = None

    @property
    def job_id(self) -> int:
        return self.ticket.job_id

    @property
    def state(self) -> JobState:
        """Server-refreshed state (one ``status`` round trip)."""
        if self._terminal is None:
            self.ticket = self.client.status(self.ticket)
        return self.ticket.state

    def done(self) -> bool:
        return self.state.terminal

    def cancel(self) -> bool:
        return self.client.cancel(self.ticket)

    def stream(self) -> Iterator[dict]:
        """Yield this job's events (``state`` transitions, then exactly
        one terminal ``result`` / ``failed`` / ``cancelled``) in order,
        returning after the terminal event."""
        if self._terminal is not None:
            yield self._terminal
            return
        for event in self.client._events_for(self.job_id):
            if event["event"] in ("result", "failed", "cancelled"):
                self._terminal = event
                self.ticket.state = _TERMINAL_STATE[event["event"]]
                yield event
                return
            if event["event"] == "state":
                self.ticket.state = JobState(event["state"])
            yield event

    def result(self) -> JobResult:
        """Block until the job resolves; return its
        :class:`~repro.sched.jobs.JobResult` or raise
        :class:`~repro.errors.ServeError` — the remote twin of
        ``JobFuture.result()``."""
        terminal = self._terminal
        if terminal is None:
            for event in self.stream():
                terminal = event
            assert terminal is not None, "stream ended without terminal event"
        if terminal["event"] == "result":
            return JobResult.from_wire(terminal["result"])
        if terminal["event"] == "cancelled":
            raise ServeError(
                f"job {self.job_id} was cancelled",
                code=wire.E_JOB_FAILED,
            )
        err = terminal.get("error") or {}
        raise ServeError(
            f"job {self.job_id} failed "
            f"({terminal.get('error_type', 'error')}): "
            f"{err.get('message', 'unknown failure')}",
            code=str(err.get("code", wire.E_JOB_FAILED)),
        )


_TERMINAL_STATE = {
    "result": JobState.COMPLETED,
    "failed": JobState.FAILED,
    "cancelled": JobState.CANCELLED,
}


class Client:
    """Synchronous connection to a :class:`~repro.serve.CampaignServer`.

    ``address`` is a ``(host, port)`` tuple for TCP or a filesystem path
    string for a unix socket.  Usable as a context manager.
    """

    def __init__(self, address, *, timeout: float | None = 60.0):
        if isinstance(address, (tuple, list)):
            sock = socket.create_connection(tuple(address), timeout=timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(str(address))
        self._sock = sock
        self._file = sock.makefile("rb")
        self._seq = 0
        #: Events that arrived while waiting for something else, per job.
        self._buffers: dict[int, deque] = {}
        self.greeting = self._read_msg()
        server_protocol = self.greeting.get("protocol")
        if server_protocol != protocol.PROTOCOL_VERSION:
            raise ServeError(
                f"server speaks protocol {server_protocol!r}, this client "
                f"speaks {protocol.PROTOCOL_VERSION}",
                code=wire.E_VERSION,
            )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _read_msg(self) -> dict:
        line = self._file.readline(protocol.MAX_LINE_BYTES + 1)
        if not line:
            raise ServeError(
                "connection closed by server", code=wire.E_INTERNAL
            )
        if len(line) > protocol.MAX_LINE_BYTES:
            raise ServeError(
                f"server sent a line over {protocol.MAX_LINE_BYTES} bytes",
                code=wire.E_BAD_REQUEST,
            )
        return protocol.decode(line)

    def _request(self, op: str, **fields) -> dict:
        """Send one request; buffer events until the matching reply."""
        self._seq += 1
        seq = self._seq
        msg = {"op": op, "seq": seq}
        msg.update(fields)
        self._sock.sendall(protocol.encode(msg))
        while True:
            reply = self._read_msg()
            if "event" in reply:
                self._buffer_event(reply)
                continue
            error = protocol.reply_error(reply)
            if error is not None:
                code, message = error
                raise ServeError(message, code=code)
            if reply.get("seq") not in (None, seq):
                raise ServeError(
                    f"out-of-order reply (seq {reply.get('seq')!r}, "
                    f"expected {seq})",
                    code=wire.E_INTERNAL,
                )
            return reply

    def _buffer_event(self, event: dict) -> None:
        job_id = event.get("job_id")
        if isinstance(job_id, int):
            self._buffers.setdefault(job_id, deque()).append(event)

    def _events_for(self, job_id: int) -> Iterator[dict]:
        """Yield events for ``job_id``, reading the socket as needed."""
        while True:
            buf = self._buffers.get(job_id)
            if buf:
                yield buf.popleft()
                continue
            msg = self._read_msg()
            if "event" not in msg:
                raise ServeError(
                    "unexpected non-event message while streaming",
                    code=wire.E_INTERNAL,
                )
            if msg.get("job_id") == job_id:
                yield msg
            else:
                self._buffer_event(msg)

    # ------------------------------------------------------------------
    # the API surface (mirrors Scheduler.submit and friends)
    # ------------------------------------------------------------------
    def submit(
        self,
        app: str | Submission,
        spec: LaunchSpec | None = None,
        *,
        tenant: str = "anonymous",
        priority: int = 0,
        retries: int | None = None,
        step_budget: int | None = None,
        loader_opts: dict[str, Any] | None = None,
    ) -> RemoteJob:
        """Submit a campaign; returns a :class:`RemoteJob`.

        Mirrors :meth:`repro.sched.Scheduler.submit` keyword-for-keyword;
        ``app`` names a program in the server's registry (or pass a
        prebuilt :class:`~repro.serve.protocol.Submission` alone).
        """
        if isinstance(app, Submission):
            sub = app
        else:
            if spec is None:
                raise ServeError(
                    "submit needs a LaunchSpec", code=wire.E_BAD_REQUEST
                )
            sub = Submission(
                app=app,
                spec=spec,
                tenant=tenant,
                priority=priority,
                retries=retries,
                step_budget=step_budget,
                loader_opts=dict(loader_opts or {}),
            )
        reply = self._request("submit", submission=sub.to_wire())
        ticket = JobTicket.from_wire(reply["ticket"])
        return RemoteJob(self, ticket)

    def status(self, ticket_or_id) -> JobTicket:
        """Fresh :class:`~repro.sched.jobs.JobTicket` snapshot."""
        job_id = getattr(ticket_or_id, "job_id", ticket_or_id)
        reply = self._request("status", job_id=job_id)
        return JobTicket.from_wire(reply["ticket"])

    def watch(self, ticket_or_id) -> RemoteJob:
        """Subscribe to a job submitted elsewhere (or earlier)."""
        job_id = getattr(ticket_or_id, "job_id", ticket_or_id)
        self._request("watch", job_id=job_id)
        ticket = (
            ticket_or_id
            if isinstance(ticket_or_id, JobTicket)
            else JobTicket(job_id=job_id)
        )
        return RemoteJob(self, ticket)

    def cancel(self, ticket_or_id) -> bool:
        job_id = getattr(ticket_or_id, "job_id", ticket_or_id)
        reply = self._request("cancel", job_id=job_id)
        return bool(reply.get("cancelled", False))

    def metrics(self, format: str = "json") -> dict:
        """The server's metrics snapshot (``json`` or ``prom``)."""
        return self._request("metrics", format=format)

    def drain(self) -> int:
        """Ask the server to drain; blocks until in-flight work finishes.

        Returns the number of jobs the server completed over its
        lifetime.  Submissions after this point fail with
        :data:`repro.wire.E_DRAINING`.
        """
        reply = self._request("drain")
        return int(reply.get("completed", 0))

    def ping(self) -> dict:
        return self._request("ping")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["Client", "RemoteJob"]
