"""Wire-corpus validator: ``python -m repro.serve.check [DIR ...]``.

The serialization contract in :mod:`repro.wire` is only as stable as the
documents that exercise it.  ``tests/serve/fixtures/`` holds a committed
corpus of wire documents — one JSON file each — and this checker replays
the whole corpus against the current decoders:

* A file containing a bare wire document (an object with ``kind``) must
  decode via :func:`repro.wire.from_wire_any`, re-encode via
  ``to_wire()``, and decode *again* to the identical canonical JSON —
  the round trip must be idempotent, or persisted campaigns would drift
  across versions.
* A file of the form ``{"doc": {...}, "expect_error": "E_..."}`` must be
  *rejected* with exactly that stable error code — the corpus pins the
  failure contract as firmly as the success contract.

Exit status: 0 all good, 1 contract violations, 2 usage / unreadable
corpus.  CI runs this on every push (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro import wire

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path("tests/serve/fixtures")


def check_document(data: object, source: str) -> list[str]:
    """Validate one corpus entry; returns found problems."""
    problems: list[str] = []
    if isinstance(data, dict) and "expect_error" in data:
        expected = data["expect_error"]
        if expected not in wire.ERROR_CODES:
            return [
                f"{source}: expect_error {expected!r} is not a stable "
                f"error code"
            ]
        try:
            wire.from_wire_any(data.get("doc"))
        except wire.WireError as exc:
            if exc.code != expected:
                problems.append(
                    f"{source}: rejected with {exc.code}, expected "
                    f"{expected} ({exc})"
                )
        else:
            problems.append(
                f"{source}: decoded successfully, expected rejection "
                f"with {expected}"
            )
        return problems

    try:
        value = wire.from_wire_any(data)
    except wire.WireError as exc:
        return [f"{source}: failed to decode: [{exc.code}] {exc}"]

    # Idempotence: decode -> encode -> decode -> encode is a fixpoint.
    try:
        once = value.to_wire()
        twice = wire.from_wire_any(once).to_wire()
    except wire.WireError as exc:
        return [f"{source}: re-decode of own output failed: {exc}"]
    if wire.canonical_json(once) != wire.canonical_json(twice):
        problems.append(
            f"{source}: to_wire/from_wire round trip is not idempotent"
        )
    return problems


def check_corpus(root: Path) -> tuple[int, list[str]]:
    """Validate every ``*.json`` under ``root``; returns (count, problems)."""
    files = sorted(root.rglob("*.json"))
    problems: list[str] = []
    for path in files:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{path}: unreadable corpus file: {exc}")
            continue
        problems.extend(check_document(data, str(path)))
    return len(files), problems


def main(argv: list[str] | None = None) -> int:
    """Validate every ``*.json`` under the given roots; exit 0 when the
    corpus is clean, 1 on contract violations, 2 on usage errors."""
    argv = sys.argv[1:] if argv is None else argv
    roots = [Path(a) for a in argv] or [DEFAULT_CORPUS]
    total = 0
    problems: list[str] = []
    for root in roots:
        if not root.is_dir():
            print(f"repro.serve.check: no such corpus directory: {root}")
            return 2
        count, found = check_corpus(root)
        total += count
        problems.extend(found)
    if total == 0:
        print("repro.serve.check: corpus is empty")
        return 2
    for problem in problems:
        print(f"FAIL {problem}")
    status = 1 if problems else 0
    print(
        f"repro.serve.check: {total} documents, "
        f"{len(problems)} problems"
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
