"""The ensemble-as-a-service front door: an asyncio campaign server.

One-shot CLI runs waste the ensemble machinery between invocations: every
campaign re-compiles its application, re-warms a private
:class:`~repro.sched.DevicePool`, and tears it all down again.
:class:`CampaignServer` keeps one pool and one
:class:`~repro.sched.Scheduler` alive across *many* concurrent clients —
the paper's "keep the GPU saturated" argument applied to the service
boundary — and adds the layers a shared device needs:

* **Admission control** — per-tenant and global queue-depth limits;
  refusals carry the stable :data:`~repro.wire.E_ADMISSION` code.
* **Fair share with priorities** — a deterministic stride scheduler
  picks which tenant's submission is admitted next; a submission's
  ``priority`` raises its tenant's share (see docs/serve.md §Fair
  share).  Given the same arrival order the admission order is
  bit-for-bit reproducible.
* **Tenant-scoped chaos** — the scheduler runs in
  ``job_scoped_faults`` mode, so a fault plan carried by one tenant's
  spec can never observe another tenant's launches.  The scheduler's
  quarantine/retry/deadline machinery is the server's SLO layer: an
  injected fault degrades the one campaign, never the service.
* **Streaming results** — submitting connections receive ``state``
  events and exactly one terminal ``result`` / ``failed`` /
  ``cancelled`` event per job; ``watch`` subscribes other connections.
* **Graceful drain** — a ``drain`` request (or :meth:`drain`) stops
  admissions (new submits fail with :data:`~repro.wire.E_DRAINING`),
  completes everything already accepted, then resolves.
* **Metrics** — the ``metrics`` op exposes the shared
  :class:`~repro.obs.MetricsRegistry` (scheduler, devices, faults, and
  ``serve.*`` series) as JSON or Prometheus text.

The server interleaves exactly one scheduler step (one dispatched shard)
with socket I/O, so the deterministic simulated-time core is untouched:
ensembling stays single-threaded and reproducible while the asyncio edge
multiplexes clients.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro import wire
from repro.errors import ReproError, SchedulerError
from repro.obs import Observability
from repro.obs.export import metrics_json, metrics_prometheus
from repro.sched import DevicePool, JobState, JobTicket, Scheduler
from repro.serve import protocol
from repro.serve.protocol import Submission

#: How many terminal jobs keep their full result payload for late
#: ``watch``/``status`` calls before being evicted oldest-first.
RESULT_HISTORY = 256


@dataclass
class ServeConfig:
    """Admission-control knobs; scheduling knobs live on the Scheduler."""

    #: Submissions queued (accepted, not yet admitted) across all tenants.
    max_pending: int = 64
    #: Queued submissions any single tenant may hold.
    max_pending_per_tenant: int = 16
    #: Jobs admitted into the shared scheduler at once.  Fair-share order
    #: decides *admission*; once admitted, the scheduler interleaves
    #: shards in deterministic simulated time.
    max_active: int = 4


class _Tenant:
    """One fair-share stream: a priority-ordered queue plus stride state."""

    __slots__ = ("name", "queue", "passes")

    def __init__(self, name: str):
        self.name = name
        #: Entries ordered by (-priority, seq): higher priority first,
        #: FIFO within a priority level.
        self.queue: list["_Entry"] = []
        #: Stride pass value; the tenant with the smallest pass is
        #: admitted next, then advances by 1/(1+priority) — higher
        #: priority means smaller strides, hence more admissions.
        self.passes = 0.0

    def push(self, entry: "_Entry") -> None:
        self.queue.append(entry)
        self.queue.sort(key=lambda e: (-e.submission.priority, e.seq))


class _Entry:
    """Server-side lifecycle record of one submission."""

    __slots__ = (
        "seq",
        "submission",
        "ticket",
        "phase",  # queued -> active -> done
        "future",
        "subscribers",
        "terminal_event",
        "last_state",
    )

    def __init__(self, seq: int, submission: Submission, ticket: JobTicket):
        self.seq = seq
        self.submission = submission
        self.ticket = ticket
        self.phase = "queued"
        self.future = None
        self.subscribers: set = set()
        self.terminal_event: dict | None = None
        self.last_state = JobState.PENDING


class CampaignServer:
    """Long-running campaign service over one shared scheduler."""

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        *,
        devices: int = 2,
        device_config=None,
        apps=None,
        config: ServeConfig | None = None,
        obs: Observability | None = None,
        max_batch: int | None = None,
        default_retries: int = 2,
        static_packing: bool = True,
        cache=None,
        cache_dir: str | None = None,
    ):
        self.obs = obs if obs is not None else Observability()
        #: Cross-tenant compile-once cache: identical specs from any
        #: tenant share one executable, keyed by content (never by
        #: tenant).  ``cache=None`` builds the default in-memory cache
        #: (plus a disk tier when ``cache_dir`` is given, which is what
        #: lets warm state survive drain/restart); ``cache=False``
        #: disables caching; an :class:`~repro.compilecache.
        #: ExecutableCache` instance is used as-is.
        if cache is False:
            self.cache = None
        elif cache is None or cache is True:
            from repro.compilecache import ExecutableCache

            self.cache = ExecutableCache(cache_dir)
        else:
            self.cache = cache
        if self.cache is not None:
            self.cache.attach_metrics(self.obs.metrics)
        if scheduler is None:
            from repro.config import DEFAULT_DEVICE

            pool = DevicePool(
                devices, config=device_config or DEFAULT_DEVICE
            )
            scheduler = Scheduler(
                pool,
                max_batch=max_batch,
                default_retries=default_retries,
                static_packing=static_packing,
                obs=self.obs,
                job_scoped_faults=True,
            )
        if not scheduler.job_scoped_faults:
            raise SchedulerError(
                "CampaignServer needs a Scheduler(job_scoped_faults=True): "
                "tenant fault plans must not leak across campaigns"
            )
        if self.cache is not None:
            scheduler.pool.attach_cache(self.cache)
        self.scheduler = scheduler
        self.config = config or ServeConfig()
        if apps is None:
            from repro.apps.registry import APPS

            apps = APPS
        self._apps = apps
        self._programs: dict[str, object] = {}

        self._tenants: dict[str, _Tenant] = {}
        self._entries: dict[int, _Entry] = {}
        self._active: list[int] = []
        self._done: deque[int] = deque()
        self._next_id = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._wake = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._writers: set = set()
        self.address: object = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        path: str | None = None,
    ):
        """Bind (TCP ``host:port`` or unix-socket ``path``) and start the
        pump; returns the bound address (``(host, port)`` or the path)."""
        if self._server is not None:
            raise SchedulerError("server already started")
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=path, limit=protocol.MAX_LINE_BYTES
            )
            self.address = path
        else:
            self._server = await asyncio.start_server(
                self._handle, host, port, limit=protocol.MAX_LINE_BYTES
            )
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        self._pump_task = asyncio.create_task(self._pump())
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def drain(self) -> int:
        """Refuse new submissions, finish everything accepted, return the
        number of jobs completed over the server's lifetime."""
        self._draining = True
        self._wake.set()
        await self._drained.wait()
        return len(self._done)

    async def close(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self.scheduler.pool.close()

    # ------------------------------------------------------------------
    # the pump: fair-share admission + one scheduler step at a time
    # ------------------------------------------------------------------
    def _pending_total(self) -> int:
        return sum(len(t.queue) for t in self._tenants.values())

    def _admit(self) -> None:
        while len(self._active) < self.config.max_active:
            candidates = [t for t in self._tenants.values() if t.queue]
            if not candidates:
                return
            # Deterministic stride pick: smallest pass, tenant name as
            # the total tie-break.
            tenant = min(candidates, key=lambda t: (t.passes, t.name))
            entry = tenant.queue.pop(0)
            tenant.passes += 1.0 / (1.0 + entry.submission.priority)
            self._activate(entry)

    def _activate(self, entry: _Entry) -> None:
        sub = entry.submission
        try:
            program = self._executable(sub)
            entry.future = self.scheduler.submit(
                program,
                sub.spec,
                retries=sub.retries,
                step_budget=sub.step_budget,
                loader_opts=sub.scheduler_loader_opts(),
                tenant=sub.tenant,
            )
        except ReproError as exc:
            entry.phase = "done"
            entry.ticket.state = JobState.FAILED
            entry.terminal_event = protocol.event_msg(
                "failed",
                entry.ticket.job_id,
                error={"code": wire.E_JOB_FAILED, "message": str(exc)},
                error_type=type(exc).__name__,
            )
            self._finish(entry)
            return
        entry.phase = "active"
        self._active.append(entry.ticket.job_id)
        self._count("admitted", tenant=sub.tenant)

    def _reap(self) -> None:
        """Publish state transitions; retire terminal jobs."""
        for job_id in list(self._active):
            entry = self._entries[job_id]
            state = entry.future.state
            if state is JobState.RUNNING and entry.last_state is not state:
                entry.last_state = state
                entry.ticket.state = state
                self._emit(
                    entry,
                    protocol.event_msg("state", job_id, state=state.value),
                )
            if not state.terminal:
                continue
            entry.ticket.state = state
            if state is JobState.COMPLETED:
                result = entry.future.result()
                payload = result.to_wire()
                # The scheduler numbers jobs internally; the server's id
                # is the one the client holds.
                payload["job_id"] = job_id
                entry.terminal_event = protocol.event_msg(
                    "result", job_id, result=payload
                )
                self._count("completed", tenant=entry.submission.tenant)
            elif state is JobState.CANCELLED:
                entry.terminal_event = protocol.event_msg(
                    "cancelled", job_id
                )
                self._count("cancelled", tenant=entry.submission.tenant)
            else:
                error = entry.future.exception()
                entry.terminal_event = protocol.event_msg(
                    "failed",
                    job_id,
                    error={
                        "code": wire.E_JOB_FAILED,
                        "message": str(error),
                    },
                    error_type=type(error).__name__,
                )
                self._count("failed", tenant=entry.submission.tenant)
            self.scheduler.release(entry.future.ticket)
            entry.future = None
            entry.phase = "done"
            self._active.remove(job_id)
            self._finish(entry)

    def _finish(self, entry: _Entry) -> None:
        """Record a terminal entry and bound the retained history."""
        self._done.append(entry.ticket.job_id)
        self._emit(entry, entry.terminal_event)
        while len(self._done) > RESULT_HISTORY:
            old = self._done.popleft()
            self._entries.pop(old, None)

    async def _pump(self) -> None:
        while True:
            self._admit()
            self._publish_gauges()
            if self._active:
                stepped = self.scheduler.step()
                self._reap()
                await self._flush_events()
                if stepped or self._active:
                    # Yield to the event loop between shards so client
                    # I/O interleaves with the simulation.
                    await asyncio.sleep(0)
                continue
            await self._flush_events()
            if self._draining and not self._pending_total():
                self._drained.set()
            self._wake.clear()
            await self._wake.wait()

    def _publish_gauges(self) -> None:
        metrics = self.obs.metrics
        metrics.gauge("serve.pending").set(float(self._pending_total()))
        metrics.gauge("serve.active").set(float(len(self._active)))
        metrics.gauge("serve.draining").set(1.0 if self._draining else 0.0)

    def _count(self, name: str, **labels) -> None:
        self.obs.metrics.counter(f"serve.{name}", **labels).inc()

    # ------------------------------------------------------------------
    # event fan-out
    # ------------------------------------------------------------------
    def _emit(self, entry: _Entry, msg: dict) -> None:
        for writer in list(entry.subscribers):
            self._outbox(writer).append(msg)

    def _outbox(self, writer) -> list:
        box = getattr(writer, "_serve_outbox", None)
        if box is None:
            box = []
            writer._serve_outbox = box
        return box

    async def _flush_events(self) -> None:
        for writer in list(self._writers):
            box = getattr(writer, "_serve_outbox", None)
            if not box:
                continue
            try:
                for msg in box:
                    writer.write(protocol.encode(msg))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                self._forget_writer(writer)
            box.clear()

    def _forget_writer(self, writer) -> None:
        self._writers.discard(writer)
        for entry in self._entries.values():
            entry.subscribers.discard(writer)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _send(self, writer, msg: dict) -> None:
        writer.write(protocol.encode(msg))
        await writer.drain()

    async def _handle(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            await self._send(
                writer,
                {
                    "hello": "repro.serve",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "schema_version": wire.WIRE_SCHEMA_VERSION,
                },
            )
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        protocol.error_reply(
                            wire.E_BAD_REQUEST,
                            f"line exceeds {protocol.MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                await self._dispatch_line(line, writer)
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            self._forget_writer(writer)
            writer.close()

    async def _dispatch_line(self, line: bytes, writer) -> None:
        seq = None
        try:
            msg = protocol.decode(line)
            seq = msg.get("seq")
            op = msg.get("op")
            if not isinstance(op, str) or op not in protocol.OPS:
                known = ", ".join(protocol.OPS)
                raise wire.WireError(
                    f"unknown op {op!r} (known: {known})",
                    code=wire.E_UNKNOWN_OP,
                )
            reply = await getattr(self, f"_op_{op}")(msg, writer, seq)
        except wire.WireError as exc:
            self._count("rejected", code=exc.code)
            reply = protocol.error_reply(exc.code, str(exc), seq)
        except ReproError as exc:
            self._count("rejected", code=wire.E_BAD_REQUEST)
            reply = protocol.error_reply(wire.E_BAD_REQUEST, str(exc), seq)
        except Exception as exc:  # noqa: BLE001 - the wire must answer
            self._count("rejected", code=wire.E_INTERNAL)
            reply = protocol.error_reply(
                wire.E_INTERNAL, f"{type(exc).__name__}: {exc}", seq
            )
        if reply is not None:
            await self._send(writer, reply)

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    async def _op_ping(self, msg, writer, seq):
        return protocol.ok_reply(
            "ping", seq, protocol=protocol.PROTOCOL_VERSION
        )

    async def _op_submit(self, msg, writer, seq):
        if self._draining:
            raise wire.WireError(
                "server is draining; no new submissions",
                code=wire.E_DRAINING,
            )
        sub = Submission.from_wire(
            wire.get_field(msg, "submission", dict, kind="submit")
        )
        if sub.app not in self._apps:
            known = ", ".join(sorted(self._apps))
            raise wire.WireError(
                f"unknown app {sub.app!r} (known: {known})",
                code=wire.E_UNKNOWN_APP,
            )
        if not sub.spec.resolve_instances():
            raise wire.WireError(
                "submission needs at least one instance",
                code=wire.E_BAD_REQUEST,
            )
        if self._pending_total() >= self.config.max_pending:
            raise wire.WireError(
                f"server queue is full ({self.config.max_pending} pending)",
                code=wire.E_ADMISSION,
            )
        tenant = self._tenants.setdefault(sub.tenant, _Tenant(sub.tenant))
        if len(tenant.queue) >= self.config.max_pending_per_tenant:
            raise wire.WireError(
                f"tenant {sub.tenant!r} queue is full "
                f"({self.config.max_pending_per_tenant} pending)",
                code=wire.E_ADMISSION,
            )
        job_id = self._next_id
        self._next_id += 1
        ticket = JobTicket(
            job_id=job_id,
            tenant=sub.tenant,
            spec_hash=wire.spec_hash(sub.spec.to_wire()),
        )
        entry = _Entry(job_id, sub, ticket)
        entry.subscribers.add(writer)
        self._entries[job_id] = entry
        tenant.push(entry)
        self._count("submissions", tenant=sub.tenant)
        self._wake.set()
        return protocol.ok_reply("submit", seq, ticket=ticket.to_wire())

    def _entry_of(self, msg) -> _Entry:
        job_id = wire.get_field(msg, "job_id", int, kind="request")
        entry = self._entries.get(job_id)
        if entry is None:
            raise wire.WireError(
                f"unknown job {job_id}", code=wire.E_UNKNOWN_JOB
            )
        return entry

    async def _op_status(self, msg, writer, seq):
        entry = self._entry_of(msg)
        return protocol.ok_reply(
            "status",
            seq,
            ticket=entry.ticket.to_wire(),
            phase=entry.phase,
        )

    async def _op_watch(self, msg, writer, seq):
        entry = self._entry_of(msg)
        if entry.phase == "done":
            # Late subscriber: replay the terminal event after the reply.
            self._outbox(writer).append(entry.terminal_event)
            self._wake.set()
        else:
            entry.subscribers.add(writer)
        return protocol.ok_reply("watch", seq, phase=entry.phase)

    async def _op_cancel(self, msg, writer, seq):
        entry = self._entry_of(msg)
        cancelled = False
        if entry.phase == "queued":
            tenant = self._tenants[entry.submission.tenant]
            tenant.queue.remove(entry)
            entry.phase = "done"
            entry.ticket.state = JobState.CANCELLED
            entry.terminal_event = protocol.event_msg(
                "cancelled", entry.ticket.job_id
            )
            self._count("cancelled", tenant=entry.submission.tenant)
            self._finish(entry)
            cancelled = True
        elif entry.phase == "active":
            cancelled = entry.future.cancel()
            # A successful scheduler-side cancel is retired by _reap.
            if cancelled:
                self._wake.set()
        return protocol.ok_reply("cancel", seq, cancelled=cancelled)

    async def _op_metrics(self, msg, writer, seq):
        fmt = wire.get_field(msg, "format", str, "json", kind="metrics")
        self._publish_gauges()
        server = {
            "pending": self._pending_total(),
            "active": len(self._active),
            "completed": len(self._done),
            "draining": self._draining,
            "tenants": sorted(self._tenants),
            "devices": self.scheduler.pool.labels,
            "utilization": self.scheduler.stats.utilization(),
            "cache": None if self.cache is None else self.cache.stats(),
        }
        if fmt == "json":
            return protocol.ok_reply(
                "metrics",
                seq,
                metrics=metrics_json(self.obs.metrics)["metrics"],
                server=server,
            )
        if fmt == "prom":
            return protocol.ok_reply(
                "metrics",
                seq,
                text=metrics_prometheus(self.obs.metrics),
                server=server,
            )
        raise wire.WireError(
            f"unknown metrics format {fmt!r} (json or prom)",
            code=wire.E_BAD_REQUEST,
        )

    async def _op_drain(self, msg, writer, seq):
        completed = await self.drain()
        return protocol.ok_reply("drain", seq, completed=completed)

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------
    def _executable(self, sub: Submission):
        """Resolve a submission to what the scheduler should run.

        With the cache enabled, the submission is compiled (or looked
        up) through the shared :class:`~repro.compilecache.
        ExecutableCache`, keyed purely by content — app source, codegen
        options, opt level — so identical specs from *different* tenants
        share one compile.  The finalized module (stable identity from
        the cache's memory tier) is handed to the scheduler; per-device
        loaders recognize the executable stamp and skip the compile
        chain entirely.
        """
        program = self._program(sub.app)
        if self.cache is None:
            return program
        opts = sub.loader_opts
        team_local = bool(opts.get("team_local_globals", False))
        budget = None
        if team_local:
            workers = self.scheduler.pool.workers
            budget = workers[0].device.config.shared_mem_per_block
        entry = self.cache.get_or_build(
            program,
            team_local_globals=team_local,
            shared_mem_budget=budget,
            opt_level=opts.get("opt_level"),
            tracer=self.obs.tracer,
            metrics=self.obs.metrics,
        )
        return entry.module

    def _program(self, name: str):
        """Compile-once app resolution: one live program object per app
        name for the server's lifetime, so every device's loader cache
        (keyed by program identity) hits across submissions."""
        program = self._programs.get(name)
        if program is None:
            entry = self._apps[name]
            build = getattr(entry, "build_program", None)
            if build is not None:
                program = build()
            elif callable(entry):
                program = entry()
            else:
                program = entry
            self._programs[name] = program
        return program


__all__ = ["CampaignServer", "ServeConfig", "RESULT_HISTORY"]
