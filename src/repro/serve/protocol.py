"""The ``repro.serve`` line protocol: newline-delimited JSON messages.

Transport is a byte stream (TCP or a unix socket); framing is one JSON
object per ``\\n``-terminated line, UTF-8, at most
:data:`MAX_LINE_BYTES` per line.  Three message shapes flow:

* **Requests** (client → server): ``{"op": <name>, ...}``.  An optional
  ``seq`` (any JSON value) is echoed verbatim on the matching reply so
  clients can pipeline.
* **Replies** (server → client): ``{"ok": true, "op": <echo>, ...}`` or
  ``{"ok": false, "error": {"code": <stable>, "message": ...}}``.  Every
  request gets exactly one reply, in request order per connection.
* **Events** (server → client, unsolicited): ``{"event": <name>,
  "job_id": N, ...}`` streamed to connections subscribed to a job (the
  submitting connection is subscribed automatically).

Payload value types (:class:`Submission`, ``LaunchSpec``, ``JobTicket``,
``JobResult``...) are the versioned wire documents of :mod:`repro.wire`;
error codes come from :data:`repro.wire.ERROR_CODES`.  The full protocol
narrative lives in docs/serve.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro import wire
from repro.host.launch import LaunchSpec

#: Protocol revision; carried in the server's greeting and every reply
#: is implicitly at this revision.  Bumps follow the wire schema policy.
PROTOCOL_VERSION = 1

#: Upper bound on one framed line; a submission of ~100k small instances
#: fits with room to spare, while an unframed stream cannot wedge the
#: server into buffering without bound.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Every request op the server implements.
OPS = (
    "submit",
    "status",
    "watch",
    "cancel",
    "metrics",
    "drain",
    "ping",
)

#: Job lifecycle / terminal events a subscriber receives, in order:
#: ``state`` on every transition, then exactly one of ``result`` /
#: ``failed`` / ``cancelled``.
EVENTS = ("state", "result", "failed", "cancelled", "drained")

#: ``loader_opts`` keys a submission may carry — the serializable subset
#: of :class:`~repro.host.ensemble_loader.EnsembleLoader` options.
#: ``pack`` (instances per team, the CLI's ``--pack M``) is translated
#: server-side into the mapping object.
LOADER_OPT_KEYS = frozenset(
    {"heap_bytes", "allow_races", "team_local_globals", "opt_level", "pack"}
)


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def encode(msg: dict) -> bytes:
    """Frame one message: compact JSON + newline."""
    line = json.dumps(msg, separators=(",", ":")) + "\n"
    data = line.encode("utf-8")
    if len(data) > MAX_LINE_BYTES:
        raise wire.WireError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte frame limit",
            code=wire.E_BAD_REQUEST,
        )
    return data


def decode(line: bytes | str) -> dict:
    """Parse one framed line into a message object."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise wire.WireError(f"message is not UTF-8: {exc}") from None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise wire.WireError(f"message is not valid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise wire.WireError(
            f"message must be a JSON object, got {type(msg).__name__}"
        )
    return msg


# ---------------------------------------------------------------------------
# reply / event constructors
# ---------------------------------------------------------------------------
def ok_reply(op: str, seq: Any = None, **fields) -> dict:
    """A successful reply for ``op``, echoing ``seq`` when given."""
    msg: dict = {"ok": True, "op": op}
    if seq is not None:
        msg["seq"] = seq
    msg.update(fields)
    return msg


def error_reply(code: str, message: str, seq: Any = None) -> dict:
    """A failed reply carrying one stable error code from ERROR_CODES."""
    assert code in wire.ERROR_CODES, code
    msg: dict = {"ok": False, "error": {"code": code, "message": message}}
    if seq is not None:
        msg["seq"] = seq
    return msg


def event_msg(event: str, job_id: int | None = None, **fields) -> dict:
    """An unsolicited event message, optionally scoped to one job."""
    assert event in EVENTS, event
    msg: dict = {"event": event}
    if job_id is not None:
        msg["job_id"] = job_id
    msg.update(fields)
    return msg


def reply_error(msg: dict) -> tuple[str, str] | None:
    """Extract ``(code, message)`` from a failed reply, else None."""
    if msg.get("ok", False):
        return None
    err = msg.get("error")
    if not isinstance(err, dict):
        return (wire.E_INTERNAL, "malformed error reply")
    return (
        str(err.get("code", wire.E_INTERNAL)),
        str(err.get("message", "")),
    )


# ---------------------------------------------------------------------------
# the submission document
# ---------------------------------------------------------------------------
@dataclass
class Submission:
    """One campaign crossing the wire: *what* to run and *as whom*.

    Mirrors :meth:`repro.sched.Scheduler.submit`'s shape — ``app`` stands
    in for the live ``program`` object (the server compiles from its own
    registry), ``spec`` / ``retries`` / ``step_budget`` / ``loader_opts``
    carry over unchanged, and ``tenant`` / ``priority`` name the
    fair-share identity that a local submit does not need.
    """

    app: str
    spec: LaunchSpec
    tenant: str = "anonymous"
    #: Larger priority = larger fair-share weight for this tenant's
    #: stream (see docs/serve.md); 0 is the baseline.
    priority: int = 0
    retries: int | None = None
    step_budget: int | None = None
    loader_opts: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.loader_opts) - LOADER_OPT_KEYS
        if unknown:
            allowed = ", ".join(sorted(LOADER_OPT_KEYS))
            raise wire.WireError(
                f"Submission: unsupported loader_opts "
                f"{sorted(unknown)} (allowed: {allowed})",
                code=wire.E_BAD_REQUEST,
            )
        if self.priority < 0:
            raise wire.WireError(
                "Submission: priority must be >= 0",
                code=wire.E_BAD_REQUEST,
            )
        if not self.app:
            raise wire.WireError(
                "Submission: app must be a non-empty registry name",
                code=wire.E_BAD_REQUEST,
            )

    def scheduler_loader_opts(self) -> dict:
        """``loader_opts`` translated for the live EnsembleLoader:
        ``pack`` becomes the concrete mapping object."""
        from repro.host.mapping import OneInstancePerTeam, PackedMapping

        opts = dict(self.loader_opts)
        pack = opts.pop("pack", 1)
        opts["mapping"] = (
            PackedMapping(pack) if pack > 1 else OneInstancePerTeam()
        )
        return opts

    # -- wire shape ---------------------------------------------------------
    def to_wire(self) -> dict:
        data = wire.envelope("Submission")
        data.update(
            app=self.app,
            spec=self.spec.to_wire(),
            tenant=self.tenant,
            priority=self.priority,
            retries=self.retries,
            step_budget=self.step_budget,
            loader_opts=dict(self.loader_opts),
        )
        return data

    @classmethod
    def from_wire(cls, data) -> "Submission":
        wire.check_envelope(data, "Submission")
        kind = "Submission"
        opts = wire.get_field(data, "loader_opts", dict, {}, kind=kind)
        for key, value in opts.items():
            if not isinstance(key, str):
                raise wire.WireError(f"{kind}: loader_opts keys must be strings")
            if not isinstance(value, (bool, int, str)) and value is not None:
                raise wire.WireError(
                    f"{kind}: loader_opts[{key!r}] must be a JSON scalar"
                )
        return cls(
            app=wire.get_field(data, "app", str, kind=kind),
            spec=LaunchSpec.from_wire(
                wire.get_field(data, "spec", dict, kind=kind)
            ),
            tenant=wire.get_field(data, "tenant", str, "anonymous", kind=kind),
            priority=wire.get_field(data, "priority", int, 0, kind=kind),
            retries=wire.get_field(data, "retries", int, None, kind=kind),
            step_budget=wire.get_field(
                data, "step_budget", int, None, kind=kind
            ),
            loader_opts=dict(opts),
        )


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "EVENTS",
    "LOADER_OPT_KEYS",
    "Submission",
    "encode",
    "decode",
    "ok_reply",
    "error_reply",
    "event_msg",
    "reply_error",
]
