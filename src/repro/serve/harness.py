"""Run a :class:`~repro.serve.CampaignServer` on a background thread.

The server is asyncio; the blessed client, the tests, the demo, and the
bench are synchronous.  :class:`ServerThread` bridges them: it owns a
private event loop on a daemon thread, starts the server there, and
exposes the bound address so any number of :class:`~repro.serve.client.
Client` connections can be opened from the calling thread::

    with ServerThread(devices=2) as server:
        client = Client(server.address)
        ...

Determinism note: the simulation itself still runs single-threaded
inside the server's pump; the thread boundary only carries sockets.
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.server import CampaignServer


class ServerThread:
    """Context manager hosting one campaign server on its own loop."""

    def __init__(self, server: CampaignServer | None = None, **server_kw):
        #: Keyword arguments are forwarded to :class:`CampaignServer`
        #: when no prebuilt server is given.
        self._server = server or CampaignServer(**server_kw)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.address = None

    @property
    def server(self) -> CampaignServer:
        return self._server

    # ------------------------------------------------------------------
    def start(self, *, host: str = "127.0.0.1", port: int = 0, path=None):
        """Start the loop thread and bind; returns the bound address."""
        assert self._thread is None, "already started"
        self._thread = threading.Thread(
            target=self._run, args=(host, port, path), daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.address

    def _run(self, host, port, path) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.address = self._loop.run_until_complete(
                self._server.start(host=host, port=port, path=path)
            )
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._server.close())
            self._loop.close()

    def stop(self) -> None:
        """Stop the server and join the loop thread."""
        if self._thread is None:
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        self._loop = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = ["ServerThread"]
