"""Ensemble-as-a-service: the ``repro.serve`` campaign server.

The paper's thesis is that a GPU is only worth its power budget when
ensembling keeps it saturated; a *serving* front door extends that one
level further — the shared device pool stays warm across campaigns from
many concurrent clients, programs compile once per server lifetime, and
the scheduler's retry/quarantine/deadline machinery becomes a
multi-tenant SLO layer.

Layers (each importable on its own):

* :mod:`repro.wire` (sibling package) — versioned ``to_wire()`` /
  ``from_wire()`` JSON documents and stable error codes.
* :mod:`repro.serve.protocol` — NDJSON framing, ops/events, and the
  :class:`~repro.serve.protocol.Submission` document.
* :mod:`repro.serve.server` — :class:`CampaignServer`: asyncio
  admission control, deterministic per-tenant fair share, streaming
  events, graceful drain, metrics.
* :mod:`repro.serve.client` — the blessed synchronous
  :class:`~repro.serve.client.Client` / ``RemoteJob`` library.
* :mod:`repro.serve.harness` — :class:`~repro.serve.harness.
  ServerThread` for hosting a server inside tests and scripts.
* :mod:`repro.serve.check` — ``python -m repro.serve.check`` validates
  the committed wire-document corpus.
* :mod:`repro.serve.cli` — the ``repro-ensemble serve`` / ``submit``
  subcommands.

See docs/serve.md for the protocol narrative.
"""

from repro.serve.protocol import PROTOCOL_VERSION, Submission
from repro.serve.server import CampaignServer, ServeConfig

__all__ = [
    "PROTOCOL_VERSION",
    "Submission",
    "CampaignServer",
    "ServeConfig",
]
