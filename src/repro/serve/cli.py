"""``repro-ensemble serve`` / ``repro-ensemble submit``: the service CLI.

``serve`` runs a :class:`~repro.serve.CampaignServer` in the foreground
until interrupted (first Ctrl-C drains gracefully; a second one aborts).
``submit`` is the one-shot client: it submits a campaign to a running
server, streams the result, and prints it in exactly the format of the
local one-shot CLI — the two paths are bitwise-comparable by design
(``make serve-demo`` holds them to that).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ReproError, ServeError
from repro.faults import FaultPlan, FaultPlanError
from repro.host.launch import DEFAULT_MAX_STEPS, LaunchSpec
from repro.runtime.backend import DEFAULT_BACKEND, available_backends


# ---------------------------------------------------------------------------
# repro-ensemble serve
# ---------------------------------------------------------------------------
def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro-ensemble serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ensemble serve",
        description="Run the campaign server: one shared device pool "
        "serving concurrent multi-tenant ensemble submissions.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421)
    parser.add_argument(
        "--unix", metavar="PATH", default=None,
        help="listen on a unix socket instead of TCP",
    )
    parser.add_argument(
        "--devices", type=int, default=2, metavar="K",
        help="size of the shared simulated device pool",
    )
    parser.add_argument(
        "--max-batch", type=int, default=None, metavar="B",
        help="cap instances per launch (OOM-bisected below it)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="default scheduler retries per faulting shard",
    )
    parser.add_argument(
        "--no-static-packing", action="store_true",
        help="disable static-footprint batch seeding",
    )
    parser.add_argument(
        "--max-pending", type=int, default=64,
        help="admission cap: queued submissions across all tenants",
    )
    parser.add_argument(
        "--max-pending-per-tenant", type=int, default=16,
        help="admission cap: queued submissions per tenant",
    )
    parser.add_argument(
        "--max-active", type=int, default=4,
        help="jobs admitted into the scheduler at once",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist the compile-once executable cache to DIR (warm "
        "state survives drain/restart)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the cross-tenant executable cache entirely",
    )
    return parser


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-ensemble serve``: host a campaign server."""
    args = build_serve_parser().parse_args(argv)
    from repro.serve.server import CampaignServer, ServeConfig

    server = CampaignServer(
        devices=args.devices,
        max_batch=args.max_batch,
        default_retries=args.retries,
        static_packing=not args.no_static_packing,
        cache=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        config=ServeConfig(
            max_pending=args.max_pending,
            max_pending_per_tenant=args.max_pending_per_tenant,
            max_active=args.max_active,
        ),
    )

    async def run() -> None:
        address = await server.start(
            host=args.host, port=args.port, path=args.unix
        )
        if isinstance(address, tuple):
            where = f"{address[0]}:{address[1]}"
        else:
            where = address
        print(
            f"repro.serve: listening on {where} "
            f"({args.devices} devices, max_active={args.max_active})",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro.serve: interrupted, draining", file=sys.stderr)

        async def shutdown() -> None:
            # A fresh loop: finish whatever the old loop had accepted is
            # not possible across loops, so just release resources.
            await server.close()

        try:
            asyncio.run(shutdown())
        except KeyboardInterrupt:
            pass
    return 0


# ---------------------------------------------------------------------------
# repro-ensemble submit
# ---------------------------------------------------------------------------
def build_submit_parser() -> argparse.ArgumentParser:
    """The ``repro-ensemble submit`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ensemble submit",
        description="Submit a campaign to a running repro.serve server "
        "and stream the result.",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", default="127.0.0.1:7421",
        help="server TCP address",
    )
    parser.add_argument(
        "--unix", metavar="PATH", default=None,
        help="connect over a unix socket instead of TCP",
    )
    parser.add_argument("--app", required=True)
    parser.add_argument("-f", "--arg-file", required=True)
    parser.add_argument("-n", "--num-instances", type=int, default=None)
    parser.add_argument("-t", "--thread-limit", type=int, default=1024)
    parser.add_argument("--pack", type=int, default=1, metavar="M")
    parser.add_argument(
        "--heap-mb", type=int, default=64,
        help="device heap size for application malloc (MiB)",
    )
    parser.add_argument("--max-steps", type=int, default=DEFAULT_MAX_STEPS)
    parser.add_argument(
        "--backend", default=DEFAULT_BACKEND, choices=available_backends()
    )
    parser.add_argument("--no-timing", action="store_true")
    parser.add_argument("--allow-races", action="store_true")
    parser.add_argument("--team-local-globals", action="store_true")
    parser.add_argument("--opt-level", type=int, choices=(0, 1, 2), default=None)
    parser.add_argument("--retries", type=int, default=None)
    parser.add_argument(
        "--step-budget", type=int, default=None,
        help="deadline: total interpreter steps this job may spend",
    )
    parser.add_argument(
        "--tenant", default="anonymous",
        help="fair-share identity this submission runs as",
    )
    parser.add_argument(
        "--priority", type=int, default=0,
        help="fair-share priority (0 = baseline; higher = larger share)",
    )
    parser.add_argument("--inject", metavar="PLAN", default=None)
    parser.add_argument("--inject-seed", type=int, default=0, metavar="N")
    parser.add_argument("--quiet", action="store_true")
    return parser


def _address(args):
    if args.unix:
        return args.unix
    host, _, port = args.connect.rpartition(":")
    return (host or "127.0.0.1", int(port))


def submit_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-ensemble submit``: run one campaign through
    a running server and print the usual per-instance report."""
    parser = build_submit_parser()
    args = parser.parse_args(argv)
    from repro.host.cli import _print_instances
    from repro.obs import report
    from repro.serve.client import Client

    plan = None
    if args.inject:
        try:
            plan = FaultPlan.parse(args.inject, seed=args.inject_seed)
        except FaultPlanError as exc:
            parser.error(f"--inject: {exc}")

    spec = LaunchSpec(
        arg_source=args.arg_file,
        num_instances=args.num_instances,
        thread_limit=args.thread_limit,
        max_steps=args.max_steps,
        collect_timing=not args.no_timing,
        fault_plan=plan,
        backend=args.backend,
    )
    loader_opts = dict(
        heap_bytes=args.heap_mb * 1024 * 1024,
        allow_races=args.allow_races,
        team_local_globals=args.team_local_globals,
        opt_level=args.opt_level,
        pack=args.pack,
    )

    try:
        with Client(_address(args)) as client:
            job = client.submit(
                args.app,
                spec,
                tenant=args.tenant,
                priority=args.priority,
                retries=args.retries,
                step_budget=args.step_budget,
                loader_opts=loader_opts,
            )
            print(
                f"submitted job {job.job_id} "
                f"(tenant={args.tenant}, {job.ticket.spec_hash})",
                file=sys.stderr,
            )
            result = job.result()
    except ServeError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2 if exc.code in ("E_ADMISSION", "E_DRAINING") else 1
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    _print_instances(result, args.quiet)
    print(f"campaign: {report(result, format='summary')}")
    return 0 if result.all_succeeded else 1


__all__ = [
    "build_serve_parser",
    "build_submit_parser",
    "serve_main",
    "submit_main",
]
