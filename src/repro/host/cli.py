"""Command-line interface mirroring the paper's GPU ensembler (Figure 5c)::

    repro-ensemble --app xsbench -f arguments.txt -n 4 -t 128

``--app`` selects one of the ported benchmarks (the paper's equivalent is
"which binary you compiled"); ``-f``/``-n``/``-t`` are exactly the enhanced
loader's options from §3.2.  ``--script`` treats the file as an argument
*script* (§3.2 future work) and expands it first.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import DEFAULT_DEVICE
from repro.errors import DeviceOutOfMemory, ReproError
from repro.gpu.device import GPUDevice
from repro.host.argscript import expand_argument_script
from repro.host.ensemble_loader import EnsembleLoader
from repro.host.mapping import OneInstancePerTeam, PackedMapping


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ensembler CLI (-f/-n/-t of the paper)."""
    parser = argparse.ArgumentParser(
        prog="repro-ensemble",
        description="Run ensembles of directly-GPU-compiled applications "
        "on the simulated device.",
    )
    parser.add_argument(
        "--app",
        required=True,
        help="benchmark application to run (see --list-apps)",
    )
    parser.add_argument("-f", "--arg-file", help="command-line arguments file")
    parser.add_argument(
        "-n",
        "--num-instances",
        type=int,
        default=None,
        help="number of instances to launch simultaneously",
    )
    parser.add_argument(
        "-t",
        "--thread-limit",
        type=int,
        default=1024,
        help="maximum number of threads each instance can utilize",
    )
    parser.add_argument(
        "--pack",
        type=int,
        default=1,
        metavar="M",
        help="pack M instances per team using the (N/M, M, 1) mapping",
    )
    parser.add_argument(
        "--script",
        action="store_true",
        help="treat the -f file as an argument script and expand it",
    )
    parser.add_argument(
        "--heap-mb",
        type=int,
        default=64,
        help="device heap size for application malloc (MiB)",
    )
    parser.add_argument(
        "--allow-races",
        action="store_true",
        help="launch even when the static race checker reports that mutable "
        "globals are shared across instances",
    )
    parser.add_argument(
        "--team-local-globals",
        action="store_true",
        help="relocate mutable globals per-team (the globals_to_shared pass) "
        "before launching",
    )
    parser.add_argument("--list-apps", action="store_true", help="list available apps")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-instance stdout"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run an application ensemble (Figure 5c)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.apps.registry import APPS, get_app

    if args.list_apps:
        for name, entry in sorted(APPS.items()):
            print(f"{name:12s} {entry.description}")
        return 0

    try:
        app = get_app(args.app)
    except KeyError:
        parser.error(f"unknown app {args.app!r}; try --list-apps")

    if args.arg_file is None:
        parser.error("-f/--arg-file is required to run an ensemble")

    try:
        if args.script:
            from pathlib import Path

            text = expand_argument_script(Path(args.arg_file).read_text())
            arg_source = text
        else:
            arg_source = args.arg_file

        mapping = PackedMapping(args.pack) if args.pack > 1 else OneInstancePerTeam()
        device = GPUDevice(DEFAULT_DEVICE)
        loader = EnsembleLoader(
            app.build_program(),
            device,
            mapping=mapping,
            heap_bytes=args.heap_mb * 1024 * 1024,
            team_local_globals=args.team_local_globals,
            allow_races=args.allow_races,
        )
        result = loader.run_ensemble(
            arg_source,
            num_instances=args.num_instances,
            thread_limit=args.thread_limit,
        )
    except DeviceOutOfMemory as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    for inst in result.instances:
        if not args.quiet and inst.stdout:
            sys.stdout.write(inst.stdout)
        print(f"[instance {inst.index}] args={' '.join(inst.args)} -> exit {inst.exit_code}")
    print(
        f"ensemble: {result.num_instances} instances, "
        f"{result.geometry.num_teams} teams x {result.thread_limit} threads, "
        f"{result.cycles:.0f} simulated cycles"
    )
    return 0 if result.all_succeeded else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
