"""Command-line interface mirroring the paper's GPU ensembler (Figure 5c)::

    repro-ensemble --app xsbench -f arguments.txt -n 4 -t 128

``--app`` selects one of the ported benchmarks (the paper's equivalent is
"which binary you compiled"); ``-f``/``-n``/``-t`` are exactly the enhanced
loader's options from §3.2.  ``--script`` treats the file as an argument
*script* (§3.2 future work) and expands it first.

Beyond the paper: ``--max-batch`` runs the campaign through the batched
runner (OOM bisection past the memory wall), and ``--devices K`` with
``K > 1`` shards it across a K-GPU :class:`~repro.sched.DevicePool` via
:class:`~repro.sched.Scheduler`, with ``--retries`` bounding transient-
fault retries and ``--max-steps`` capping interpreter steps per launch.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import DEFAULT_DEVICE
from repro.errors import DeviceOutOfMemory, ReproError
from repro.faults import FaultPlan, FaultPlanError
from repro.gpu.device import GPUDevice
from repro.host.argscript import expand_argument_script
from repro.host.batch import BatchedEnsembleRunner
from repro.host.ensemble_loader import EnsembleLoader
from repro.host.launch import DEFAULT_MAX_STEPS, LaunchSpec
from repro.host.mapping import OneInstancePerTeam, PackedMapping
from repro.obs import Observability, report


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ensembler CLI (-f/-n/-t of the paper)."""
    parser = argparse.ArgumentParser(
        prog="repro-ensemble",
        description="Run ensembles of directly-GPU-compiled applications "
        "on the simulated device.",
    )
    parser.add_argument(
        "--app",
        required=True,
        help="benchmark application to run (see --list-apps)",
    )
    parser.add_argument("-f", "--arg-file", help="command-line arguments file")
    parser.add_argument(
        "-n",
        "--num-instances",
        type=int,
        default=None,
        help="number of instances to launch simultaneously",
    )
    parser.add_argument(
        "-t",
        "--thread-limit",
        type=int,
        default=1024,
        help="maximum number of threads each instance can utilize",
    )
    parser.add_argument(
        "--pack",
        type=int,
        default=1,
        metavar="M",
        help="pack M instances per team using the (N/M, M, 1) mapping",
    )
    parser.add_argument(
        "--script",
        action="store_true",
        help="treat the -f file as an argument script and expand it",
    )
    parser.add_argument(
        "--heap-mb",
        type=int,
        default=64,
        help="device heap size for application malloc (MiB)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        metavar="K",
        help="size of the simulated device pool; K > 1 shards the campaign "
        "across K GPUs through the scheduler",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="B",
        help="cap instances per launch and run as a batched campaign "
        "(OOM-bisected) instead of one monolithic ensemble",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=DEFAULT_MAX_STEPS,
        help="interpreter-step cap per launch (livelock guard)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="scheduler retries per faulting shard before the job fails",
    )
    parser.add_argument(
        "--no-timing",
        action="store_true",
        help="skip the timing model (faster; cycle counts become unavailable)",
    )
    parser.add_argument(
        "--allow-races",
        action="store_true",
        help="launch even when the static race checker reports that mutable "
        "globals are shared across instances",
    )
    parser.add_argument(
        "--team-local-globals",
        action="store_true",
        help="relocate mutable globals per-team (the globals_to_shared pass) "
        "before launching",
    )
    parser.add_argument(
        "--opt-level",
        type=int,
        choices=(0, 1, 2),
        default=None,
        help="optimization stage: 0 inline-only, 1 classic sweep (default), "
        "2 adds the interprocedural stage (points-to-driven barrier "
        "elimination, alias DCE, read-only load hoisting)",
    )
    parser.add_argument(
        "--no-static-packing",
        action="store_true",
        help="disable seeding batch sizes from the static footprint "
        "(multi-device runs fall back to pure OOM bisection)",
    )
    parser.add_argument(
        "--inject",
        metavar="PLAN",
        default=None,
        help="deterministic fault plan to inject (e.g. "
        "'oom:device=pool1;rpc_drop:rate=0.05'); see docs/faults.md and "
        "'python -m repro.faults.check --kinds'",
    )
    parser.add_argument(
        "--inject-seed",
        type=int,
        default=0,
        metavar="N",
        help="base seed for the fault plan's random streams",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON of the run (open in "
        "chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics registry as JSON (or line protocol with "
        "a .lines suffix)",
    )
    parser.add_argument("--list-apps", action="store_true", help="list available apps")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-instance stdout"
    )
    return parser


def _print_fault_lines(result, faults, metrics) -> None:
    """Summarize what the injector did and how the stack degraded."""
    fired = faults.summary() if faults.enabled else {}
    fired_txt = (
        ", ".join(f"{k}={n}" for k, n in sorted(fired.items())) or "none fired"
    )
    recovered = int(sum(c.value for c in metrics.series("faults.recovered")))
    reports = getattr(result, "fault_reports", [])
    print(
        f"faults: injected {fired_txt}; {recovered} recovered, "
        f"{len(reports)} report(s)"
    )
    for rep in reports:
        where = f" on {rep.device}" if rep.device else ""
        print(
            f"  [fault] {rep.kind}@{rep.point}{where} "
            f"instances={rep.instances}: {rep.message}"
        )


def _print_instances(result, quiet: bool) -> None:
    for inst in result.instances:
        if not quiet and inst.stdout:
            sys.stdout.write(inst.stdout)
        print(
            f"[instance {inst.index}] args={' '.join(inst.args)} "
            f"-> exit {inst.exit_code}"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run an application ensemble (Figure 5c)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.apps.registry import APPS, get_app

    if args.list_apps:
        for name, entry in sorted(APPS.items()):
            print(f"{name:12s} {entry.description}")
        return 0

    try:
        app = get_app(args.app)
    except KeyError:
        parser.error(f"unknown app {args.app!r}; try --list-apps")

    if args.arg_file is None:
        parser.error("-f/--arg-file is required to run an ensemble")
    if args.devices < 1:
        parser.error("--devices must be >= 1")

    # A recording tracer only when a trace is requested; the metrics
    # registry is always live (it is just dictionaries).
    obs = Observability.enabled() if args.trace_out else Observability()

    try:
        return _run(parser, args, app, obs)
    finally:
        _write_obs_outputs(obs, args)


def _write_obs_outputs(obs: Observability, args) -> None:
    """Flush --trace-out / --metrics-out files (also on failure paths)."""
    if args.trace_out:
        obs.write_trace(args.trace_out)
        print(f"wrote trace {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        fmt = "lines" if str(args.metrics_out).endswith(".lines") else "json"
        obs.write_metrics(args.metrics_out, format=fmt)
        print(f"wrote metrics {args.metrics_out}", file=sys.stderr)


def _run(parser, args, app, obs: Observability) -> int:
    """Execute the ensemble described by the parsed ``args``."""
    try:
        if args.script:
            from pathlib import Path

            arg_source = expand_argument_script(Path(args.arg_file).read_text())
        else:
            arg_source = args.arg_file

        fault_plan = None
        if args.inject:
            try:
                fault_plan = FaultPlan.parse(args.inject, seed=args.inject_seed)
            except FaultPlanError as exc:
                parser.error(f"--inject: {exc}")

        spec = LaunchSpec(
            arg_source=arg_source,
            num_instances=args.num_instances,
            thread_limit=args.thread_limit,
            max_steps=args.max_steps,
            collect_timing=not args.no_timing,
            fault_plan=fault_plan,
        )
        mapping = PackedMapping(args.pack) if args.pack > 1 else OneInstancePerTeam()
        loader_opts = dict(
            mapping=mapping,
            heap_bytes=args.heap_mb * 1024 * 1024,
            team_local_globals=args.team_local_globals,
            allow_races=args.allow_races,
            opt_level=args.opt_level,
        )

        if args.devices > 1:
            from repro.sched import DevicePool, Scheduler

            pool = DevicePool(args.devices, config=DEFAULT_DEVICE)
            sched = Scheduler(
                pool,
                max_batch=args.max_batch,
                default_retries=args.retries,
                obs=obs,
                static_packing=not args.no_static_packing,
            )
            result = sched.run_campaign(
                app.build_program(), spec, loader_opts=loader_opts
            )
            _print_instances(result, args.quiet)
            print(f"campaign: {report(result, format='summary')}")
            util = " ".join(
                f"{label}={frac:.2f}"
                for label, frac in sorted(sched.stats.utilization().items())
            )
            print(
                f"scheduler: {args.devices} devices, "
                f"{len(result.batches)} batches, "
                f"{result.oom_splits} oom splits, {result.retries} retries, "
                f"utilization {util}"
            )
            if args.inject:
                _print_fault_lines(result, sched.faults, obs.metrics)
            return 0 if result.all_succeeded else 1

        device = GPUDevice(DEFAULT_DEVICE)
        device.tracer = obs.tracer
        device.metrics = obs.metrics
        loader = EnsembleLoader(app.build_program(), device, **loader_opts)
        if args.max_batch is not None:
            runner = BatchedEnsembleRunner(
                loader,
                max_batch=args.max_batch,
                static_packing=not args.no_static_packing,
                obs=obs,
            )
            result = runner.run(spec)
            _print_instances(result, args.quiet)
            print(
                f"campaign: {report(result, format='summary')} "
                f"({len(result.batches)} batches, "
                f"{result.oom_retries} oom retries)"
            )
            if args.inject:
                _print_fault_lines(result, device.faults, obs.metrics)
            return 0 if result.all_succeeded else 1

        result = loader.run_ensemble(spec)
    except DeviceOutOfMemory as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    _print_instances(result, args.quiet)
    cycles = (
        f"{result.cycles:.0f} simulated cycles"
        if result.cycles is not None
        else "untimed"
    )
    print(
        f"ensemble: {result.num_instances} instances, "
        f"{result.geometry.num_teams} teams x {result.thread_limit} threads, "
        f"{cycles}"
    )
    if args.inject:
        _print_fault_lines(result, device.faults, obs.metrics)
    return 0 if result.all_succeeded else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
