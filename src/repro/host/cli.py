"""Command-line interface mirroring the paper's GPU ensembler (Figure 5c)::

    repro-ensemble --app xsbench -f arguments.txt -n 4 -t 128

``--app`` selects one of the ported benchmarks (the paper's equivalent is
"which binary you compiled"); ``-f``/``-n``/``-t`` are exactly the enhanced
loader's options from §3.2.  ``--script`` treats the file as an argument
*script* (§3.2 future work) and expands it first.

Beyond the paper: ``--max-batch`` runs the campaign through the batched
runner (OOM bisection past the memory wall), and ``--devices K`` with
``K > 1`` shards it across a K-GPU :class:`~repro.sched.DevicePool` via
:class:`~repro.sched.Scheduler`, with ``--retries`` bounding transient-
fault retries and ``--max-steps`` capping interpreter steps per launch.

``--auto SCRIPT[:FUNC]`` replaces the argument file with a natural
Python driver loop: the script's driver function is proven
iteration-independent by :mod:`repro.analysis.driverdep` and executed as
one ensemble through :func:`repro.frontend.autoensemble.auto_launch`.
Dependent loops are rejected with the analyzer's structured findings.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import DEFAULT_DEVICE
from repro.errors import DeviceOutOfMemory, ReproError
from repro.faults import FaultPlan, FaultPlanError
from repro.gpu.device import GPUDevice
from repro.host.argscript import expand_argument_script
from repro.host.batch import BatchedEnsembleRunner
from repro.host.ensemble_loader import EnsembleLoader
from repro.host.launch import DEFAULT_MAX_STEPS, LaunchSpec
from repro.runtime.backend import DEFAULT_BACKEND, available_backends
from repro.host.mapping import OneInstancePerTeam, PackedMapping
from repro.obs import Observability, report


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ensembler CLI (-f/-n/-t of the paper)."""
    parser = argparse.ArgumentParser(
        prog="repro-ensemble",
        description="Run ensembles of directly-GPU-compiled applications "
        "on the simulated device.",
    )
    parser.add_argument(
        "--app",
        required=True,
        help="benchmark application to run (see --list-apps)",
    )
    parser.add_argument("-f", "--arg-file", help="command-line arguments file")
    parser.add_argument(
        "--auto",
        metavar="SCRIPT[:FUNC]",
        default=None,
        help="auto-ensemble a natural Python driver loop instead of an "
        "argument file: prove the loop iteration-independent, trace it, "
        "and launch the recorded instances as one ensemble (FUNC defaults "
        "to 'driver', or the script's only function)",
    )
    parser.add_argument(
        "-n",
        "--num-instances",
        type=int,
        default=None,
        help="number of instances to launch simultaneously",
    )
    parser.add_argument(
        "-t",
        "--thread-limit",
        type=int,
        default=1024,
        help="maximum number of threads each instance can utilize",
    )
    parser.add_argument(
        "--pack",
        type=int,
        default=1,
        metavar="M",
        help="pack M instances per team using the (N/M, M, 1) mapping",
    )
    parser.add_argument(
        "--script",
        action="store_true",
        help="treat the -f file as an argument script and expand it",
    )
    parser.add_argument(
        "--heap-mb",
        type=int,
        default=64,
        help="device heap size for application malloc (MiB)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        metavar="K",
        help="size of the simulated device pool; K > 1 shards the campaign "
        "across K GPUs through the scheduler",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="B",
        help="cap instances per launch and run as a batched campaign "
        "(OOM-bisected) instead of one monolithic ensemble",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=DEFAULT_MAX_STEPS,
        help="interpreter-step cap per launch (livelock guard)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="scheduler retries per faulting shard before the job fails",
    )
    parser.add_argument(
        "--no-timing",
        action="store_true",
        help="skip the timing model (faster; cycle counts become unavailable)",
    )
    parser.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        choices=available_backends(),
        help="execution engine: 'interp' (reference SIMT interpreter) or "
        "'compiled' (block-compiled threaded code; bitwise-identical "
        "results, faster)",
    )
    parser.add_argument(
        "--allow-races",
        action="store_true",
        help="launch even when the static race checker reports that mutable "
        "globals are shared across instances",
    )
    parser.add_argument(
        "--team-local-globals",
        action="store_true",
        help="relocate mutable globals per-team (the globals_to_shared pass) "
        "before launching",
    )
    parser.add_argument(
        "--opt-level",
        type=int,
        choices=(0, 1, 2),
        default=None,
        help="optimization stage: 0 inline-only, 1 classic sweep (default), "
        "2 adds the interprocedural stage (points-to-driven barrier "
        "elimination, alias DCE, read-only load hoisting)",
    )
    parser.add_argument(
        "--no-static-packing",
        action="store_true",
        help="disable seeding batch sizes from the static footprint "
        "(multi-device runs fall back to pure OOM bisection)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="compile through a persistent executable cache rooted at DIR "
        "(compile-once across invocations; see docs/compilecache.md)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and compile cold",
    )
    parser.add_argument(
        "--inject",
        metavar="PLAN",
        default=None,
        help="deterministic fault plan to inject (e.g. "
        "'oom:device=pool1;rpc_drop:rate=0.05'); see docs/faults.md and "
        "'python -m repro.faults.check --kinds'",
    )
    parser.add_argument(
        "--inject-seed",
        type=int,
        default=0,
        metavar="N",
        help="base seed for the fault plan's random streams",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON of the run (open in "
        "chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics registry as JSON (or line protocol with "
        "a .lines suffix)",
    )
    parser.add_argument("--list-apps", action="store_true", help="list available apps")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-instance stdout"
    )
    return parser


def _print_fault_lines(result, faults, metrics) -> None:
    """Summarize what the injector did and how the stack degraded."""
    fired = faults.summary() if faults.enabled else {}
    fired_txt = (
        ", ".join(f"{k}={n}" for k, n in sorted(fired.items())) or "none fired"
    )
    recovered = int(sum(c.value for c in metrics.series("faults.recovered")))
    reports = getattr(result, "fault_reports", [])
    print(
        f"faults: injected {fired_txt}; {recovered} recovered, "
        f"{len(reports)} report(s)"
    )
    for rep in reports:
        where = f" on {rep.device}" if rep.device else ""
        print(
            f"  [fault] {rep.kind}@{rep.point}{where} "
            f"instances={rep.instances}: {rep.message}"
        )


def _print_instances(result, quiet: bool) -> None:
    for inst in result.instances:
        if not quiet and inst.stdout:
            sys.stdout.write(inst.stdout)
        print(
            f"[instance {inst.index}] args={' '.join(inst.args)} "
            f"-> exit {inst.exit_code}"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run an application ensemble (Figure 5c).

    ``repro-ensemble serve`` / ``repro-ensemble submit`` route to the
    campaign-service CLI (:mod:`repro.serve.cli`); everything else is the
    classic one-shot ensembler.
    """
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] in ("serve", "submit"):
        from repro.serve.cli import serve_main, submit_main

        handler = serve_main if argv[0] == "serve" else submit_main
        return handler(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.apps.registry import APPS, get_app

    if args.list_apps:
        for name, entry in sorted(APPS.items()):
            print(f"{name:12s} {entry.description}")
        return 0

    try:
        app = get_app(args.app)
    except KeyError:
        parser.error(f"unknown app {args.app!r}; try --list-apps")

    if args.arg_file is None and args.auto is None:
        parser.error("-f/--arg-file (or --auto) is required to run an ensemble")
    if args.arg_file is not None and args.auto is not None:
        parser.error("-f/--arg-file and --auto are mutually exclusive")
    if args.devices < 1:
        parser.error("--devices must be >= 1")

    # A recording tracer only when a trace is requested; the metrics
    # registry is always live (it is just dictionaries).
    obs = Observability.enabled() if args.trace_out else Observability()

    try:
        return _run(parser, args, app, obs)
    finally:
        _write_obs_outputs(obs, args)


def _write_obs_outputs(obs: Observability, args) -> None:
    """Flush --trace-out / --metrics-out files (also on failure paths)."""
    if args.trace_out:
        obs.write_trace(args.trace_out)
        print(f"wrote trace {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        fmt = "lines" if str(args.metrics_out).endswith(".lines") else "json"
        obs.write_metrics(args.metrics_out, format=fmt)
        print(f"wrote metrics {args.metrics_out}", file=sys.stderr)


def _parse_fault_plan(parser, args):
    if not args.inject:
        return None
    try:
        return FaultPlan.parse(args.inject, seed=args.inject_seed)
    except FaultPlanError as exc:
        parser.error(f"--inject: {exc}")


def _loader_opts(args) -> dict:
    mapping = PackedMapping(args.pack) if args.pack > 1 else OneInstancePerTeam()
    return dict(
        mapping=mapping,
        heap_bytes=args.heap_mb * 1024 * 1024,
        team_local_globals=args.team_local_globals,
        allow_races=args.allow_races,
        opt_level=args.opt_level,
    )


def _load_driver(parser, spec_str: str):
    """Resolve --auto's ``SCRIPT[:FUNC]`` to a live driver function."""
    import importlib.util
    import inspect
    from pathlib import Path

    path, _, func = spec_str.partition(":")
    p = Path(path)
    if not p.exists():
        parser.error(f"--auto: no such script {path!r}")
    spec = importlib.util.spec_from_file_location(f"_auto_driver_{p.stem}", p)
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        parser.error(f"--auto: importing {path} failed: {exc}")
    if func:
        fn = getattr(module, func, None)
        if not callable(fn):
            parser.error(f"--auto: {path} defines no function {func!r}")
        return fn
    fn = getattr(module, "driver", None)
    if callable(fn):
        return fn
    own = [
        v
        for v in vars(module).values()
        if inspect.isfunction(v) and v.__module__ == module.__name__
    ]
    if len(own) == 1:
        return own[0]
    parser.error(
        f"--auto: {path} defines {len(own)} functions and none named "
        f"'driver'; pick one with {path}:FUNC"
    )


def _run_auto(parser, args, app, obs: Observability) -> int:
    """--auto: prove, trace, launch, and replay a natural driver loop."""
    from repro.errors import AutoEnsembleError
    from repro.frontend.autoensemble import EnsembleBackend, auto_launch

    fn = _load_driver(parser, args.auto)
    backend = EnsembleBackend(
        app,
        devices=args.devices,
        thread_limit=args.thread_limit,
        max_steps=args.max_steps,
        collect_timing=not args.no_timing,
        fault_plan=_parse_fault_plan(parser, args),
        obs=obs,
        loader_opts=_loader_opts(args),
        max_batch=args.max_batch,
        retries=args.retries,
        backend=args.backend,
    )
    try:
        outcome = auto_launch(fn, app, backend=backend)
    except AutoEnsembleError as exc:
        print(f"auto-ensemble rejected: {exc}", file=sys.stderr)
        return 1
    except DeviceOutOfMemory as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    _print_instances(outcome, args.quiet)
    reductions = sum(len(c.reductions) for c in outcome.classifications)
    print(
        f"auto-ensemble: driver {fn.__name__}() -> "
        f"{outcome.num_instances} instances, {reductions} reduction(s) "
        f"replayed in loop order"
    )
    if outcome.campaign is not None:
        print(f"campaign: {report(outcome.campaign, format='summary')}")
    if outcome.value is not None:
        print(f"driver value: {outcome.value!r}")
    return 0 if outcome.all_succeeded else 1


def _run(parser, args, app, obs: Observability) -> int:
    """Execute the ensemble described by the parsed ``args``."""
    if args.auto is not None:
        return _run_auto(parser, args, app, obs)
    try:
        if args.script:
            from pathlib import Path

            arg_source = expand_argument_script(Path(args.arg_file).read_text())
        else:
            arg_source = args.arg_file

        spec = LaunchSpec(
            arg_source=arg_source,
            num_instances=args.num_instances,
            thread_limit=args.thread_limit,
            max_steps=args.max_steps,
            collect_timing=not args.no_timing,
            fault_plan=_parse_fault_plan(parser, args),
            backend=args.backend,
        )
        loader_opts = _loader_opts(args)
        cache = None
        if args.cache_dir and not args.no_cache:
            from repro.compilecache import ExecutableCache

            cache = ExecutableCache(args.cache_dir, metrics=obs.metrics)

        if args.devices > 1:
            from repro.sched import DevicePool, Scheduler

            pool = DevicePool(args.devices, config=DEFAULT_DEVICE)
            sched = Scheduler(
                pool,
                max_batch=args.max_batch,
                default_retries=args.retries,
                obs=obs,
                static_packing=not args.no_static_packing,
                cache=cache,
            )
            result = sched.run_campaign(
                app.build_program(), spec, loader_opts=loader_opts
            )
            _print_instances(result, args.quiet)
            print(f"campaign: {report(result, format='summary')}")
            util = " ".join(
                f"{label}={frac:.2f}"
                for label, frac in sorted(sched.stats.utilization().items())
            )
            print(
                f"scheduler: {args.devices} devices, "
                f"{len(result.batches)} batches, "
                f"{result.oom_splits} oom splits, {result.retries} retries, "
                f"utilization {util}"
            )
            if args.inject:
                _print_fault_lines(result, sched.faults, obs.metrics)
            return 0 if result.all_succeeded else 1

        device = GPUDevice(DEFAULT_DEVICE)
        device.tracer = obs.tracer
        device.metrics = obs.metrics
        loader = EnsembleLoader(
            app.build_program(), device, cache=cache, **loader_opts
        )
        if args.max_batch is not None:
            runner = BatchedEnsembleRunner(
                loader,
                max_batch=args.max_batch,
                static_packing=not args.no_static_packing,
                obs=obs,
            )
            result = runner.run(spec)
            _print_instances(result, args.quiet)
            print(
                f"campaign: {report(result, format='summary')} "
                f"({len(result.batches)} batches, "
                f"{result.oom_retries} oom retries)"
            )
            if args.inject:
                _print_fault_lines(result, device.faults, obs.metrics)
            return 0 if result.all_succeeded else 1

        result = loader.run_ensemble(spec)
    except DeviceOutOfMemory as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    _print_instances(result, args.quiet)
    cycles = (
        f"{result.cycles:.0f} simulated cycles"
        if result.cycles is not None
        else "untimed"
    )
    print(
        f"ensemble: {result.num_instances} instances, "
        f"{result.geometry.num_teams} teams x {result.thread_limit} threads, "
        f"{cycles}"
    )
    if args.inject:
        _print_fault_lines(result, device.faults, obs.metrics)
    return 0 if result.all_succeeded else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
