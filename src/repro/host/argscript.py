"""Argument-generation script language (§3.2 future work).

The paper plans "a script language ... to generate command line arguments
for each instance dynamically".  This module implements that extension: a
line-oriented template language expanded into a plain argument file.

Syntax
------
::

    @set base = 1000                # bind a variable
    @foreach i in 0..3              # inclusive integer range
    -s {base * (i + 1)} -seed {i}   # {expr} substitutes an expression
    @end
    -s 9999 -seed 42                # plain lines pass through

* ``@foreach NAME in A..B`` / ``@foreach NAME in A..B..STEP`` loops over an
  inclusive range; loops nest.
* ``@set NAME = EXPR`` assigns (visible to subsequent lines at that depth).
* ``{EXPR}`` inside a line is evaluated and substituted; expressions are a
  safe arithmetic subset (ints/floats, ``+ - * / // % **``, comparisons,
  unary minus, names, ``min``/``max``/``abs``).
* Comments (``#``) and blank lines are dropped, as in plain argument files.

:func:`expand_argument_script` returns the expanded text, suitable for
:func:`repro.host.argfile.parse_argument_text`.
"""

from __future__ import annotations

import ast
import re

from repro.frontend import astsafe
from repro.errors import ArgScriptError

_SUBST_RE = re.compile(r"\{([^{}]+)\}")
_FOREACH_RE = re.compile(
    r"^@foreach\s+([A-Za-z_]\w*)\s+in\s+(\S+?)\.\.(\S+?)(?:\.\.(\S+))?\s*$"
)
_SET_RE = re.compile(r"^@set\s+([A-Za-z_]\w*)\s*=\s*(.+)$")

_ALLOWED_FUNCS = {"min": min, "max": max, "abs": abs}

_ALLOWED_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}
_ALLOWED_CMPOPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


def _eval_expr(expr: str, env: dict) -> object:
    """Safely evaluate an arithmetic expression against ``env``."""
    try:
        tree = astsafe.parse(expr.strip(), mode="eval")
    except SyntaxError as exc:
        raise ArgScriptError(f"bad expression {expr!r}: {exc}") from None

    def ev(node: ast.AST):
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            raise ArgScriptError(f"undefined variable {node.id!r} in {expr!r}")
        if isinstance(node, ast.BinOp) and type(node.op) in _ALLOWED_BINOPS:
            return _ALLOWED_BINOPS[type(node.op)](ev(node.left), ev(node.right))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -ev(node.operand)
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            op = type(node.ops[0])
            if op in _ALLOWED_CMPOPS:
                return int(
                    _ALLOWED_CMPOPS[op](ev(node.left), ev(node.comparators[0]))
                )
        if isinstance(node, ast.IfExp):
            return ev(node.body) if ev(node.test) else ev(node.orelse)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ALLOWED_FUNCS
            and not node.keywords
        ):
            return _ALLOWED_FUNCS[node.func.id](*[ev(a) for a in node.args])
        raise ArgScriptError(f"unsupported construct in expression {expr!r}")

    return ev(tree)


def _substitute(line: str, env: dict) -> str:
    def repl(match: re.Match) -> str:
        value = _eval_expr(match.group(1), env)
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    return _SUBST_RE.sub(repl, line)


def _parse_blocks(lines: list[str]) -> list:
    """Parse into a tree of plain lines / set directives / foreach blocks."""
    pos = 0

    def block(depth: int) -> list:
        nonlocal pos
        items: list = []
        while pos < len(lines):
            raw = lines[pos]
            stripped = raw.strip()
            pos += 1
            if not stripped or stripped.startswith("#"):
                continue
            if stripped == "@end":
                if depth == 0:
                    raise ArgScriptError(f"line {pos}: @end without @foreach")
                return items
            m = _FOREACH_RE.match(stripped)
            if m:
                body = block(depth + 1)
                items.append(("foreach", m.group(1), m.group(2), m.group(3), m.group(4), body))
                continue
            m = _SET_RE.match(stripped)
            if m:
                items.append(("set", m.group(1), m.group(2)))
                continue
            if stripped.startswith("@"):
                raise ArgScriptError(f"line {pos}: unknown directive {stripped.split()[0]!r}")
            items.append(("line", stripped))
        if depth != 0:
            raise ArgScriptError("unterminated @foreach (missing @end)")
        return items

    return block(0)


def _emit(items: list, env: dict, out: list[str]) -> None:
    for item in items:
        kind = item[0]
        if kind == "line":
            out.append(_substitute(item[1], env))
        elif kind == "set":
            env[item[1]] = _eval_expr(_substitute(item[2], env), env)
        elif kind == "foreach":
            _, name, lo_s, hi_s, step_s, body = item
            lo = int(_eval_expr(_substitute(lo_s, env), env))
            hi = int(_eval_expr(_substitute(hi_s, env), env))
            step = int(_eval_expr(_substitute(step_s, env), env)) if step_s else 1
            if step == 0:
                raise ArgScriptError("@foreach step must be nonzero")
            stop = hi + (1 if step > 0 else -1)  # inclusive range
            inner = dict(env)
            for value in range(lo, stop, step):
                inner[name] = value
                _emit(body, inner, out)


def expand_argument_script(text: str, *, variables: dict | None = None) -> str:
    """Expand an argument script into plain argument-file text."""
    tree = _parse_blocks(text.splitlines())
    out: list[str] = []
    _emit(tree, dict(variables or {}), out)
    return "\n".join(out) + ("\n" if out else "")
