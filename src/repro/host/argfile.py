"""Argument-file parsing (§3.2, Figure 5b).

One line per application instance; tokens separated by whitespace.  Two
quality-of-life extensions over the paper's proof of concept (both clearly
optional: a file written for the paper's loader parses identically here):

* blank lines and ``#`` comment lines are skipped,
* single/double quotes group tokens containing spaces (POSIX shell rules).
"""

from __future__ import annotations

import shlex
from pathlib import Path

from repro.errors import ArgFileError


def parse_argument_text(text: str) -> list[list[str]]:
    """Parse argument-file contents into one token list per instance."""
    instances: list[list[str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tokens = shlex.split(line, posix=True)
        except ValueError as exc:
            raise ArgFileError(f"line {lineno}: {exc}") from exc
        if tokens:
            instances.append(tokens)
    return instances


def parse_argument_file(path: str | Path) -> list[list[str]]:
    """Read and parse an argument file."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise ArgFileError(f"cannot read argument file {p}: {exc}") from exc
    return parse_argument_text(text)


def resolve_arg_source(arg_source) -> list[list[str]]:
    """Normalize any supported argument source to one token list per instance.

    Accepted shapes (the union of what every launch entry point takes):

    * ``list``/``tuple`` of per-instance token sequences — already parsed;
      tokens are coerced to ``str``,
    * any other iterable of per-instance configs (generators, map objects,
      the derived-config stream of the auto-ensemble frontend) — each
      element is a token sequence, or a ``str`` parsed as one
      argument-file line (shell quoting rules),
    * :class:`~pathlib.Path` — an argument file on disk,
    * ``str`` without a newline that names an existing file — ditto,
    * any other ``str`` — raw argument-file text.

    This is the single resolution point behind
    :class:`~repro.host.launch.LaunchSpec`; loaders, the batch runner,
    the scheduler, and the auto-ensemble frontend all accept the same
    shapes because they all call this.
    """
    if isinstance(arg_source, Path):
        return parse_argument_file(arg_source)
    if isinstance(arg_source, str):
        if "\n" not in arg_source and Path(arg_source).exists():
            return parse_argument_file(arg_source)
        return parse_argument_text(arg_source)
    if hasattr(arg_source, "__iter__"):
        instances = []
        for lineno, line in enumerate(arg_source, start=1):
            if isinstance(line, str):
                try:
                    tokens = shlex.split(line, posix=True)
                except ValueError as exc:
                    raise ArgFileError(f"instance {lineno}: {exc}") from exc
            elif hasattr(line, "__iter__"):
                tokens = [str(t) for t in line]
            else:
                raise ArgFileError(
                    f"instance {lineno}: expected a token sequence or an "
                    f"argument-line string, got {type(line).__name__}"
                )
            instances.append(tokens)
        return instances
    raise ArgFileError(
        f"unsupported argument source {type(arg_source).__name__}"
    )


def write_argument_file(path: str | Path, instances: list[list[str]]) -> None:
    """Write instances back in the file format (round-trips with parse)."""
    lines = []
    for tokens in instances:
        quoted = [shlex.quote(t) for t in tokens]
        lines.append(" ".join(quoted))
    Path(path).write_text("\n".join(lines) + "\n")
