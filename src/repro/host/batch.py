"""Batched ensemble campaigns: run more instances than fit in memory.

The paper stops at the device-memory wall ("due to memory limitations, we
were only able to show the results for two and four instances" — §4.3).
Operationally, an ensemble campaign does not care: it wants all M work
items finished.  :class:`BatchedEnsembleRunner` closes that gap:

* try the whole remaining workload as one launch;
* on :class:`~repro.errors.DeviceOutOfMemory`, halve the batch size and
  retry (the device heap is reset between launches, so each batch gets the
  full heap);
* once a batch size works, keep using it (it only ever shrinks), running
  batch after batch until every instance has executed;
* aggregate per-instance outcomes and total simulated cycles across
  batches.

This is the ensemble-toolkit-style scheduling layer the paper's related
work section gestures at ([3,4]), built on the enhanced loader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceOutOfMemory, LoaderError
from repro.host.ensemble_loader import EnsembleLoader, InstanceOutcome


@dataclass
class BatchRecord:
    """One successful launch within a campaign."""

    first_instance: int
    size: int
    cycles: float | None


@dataclass
class CampaignResult:
    """Aggregated outcome of a batched campaign."""

    outcomes: list[InstanceOutcome]
    batches: list[BatchRecord] = field(default_factory=list)
    total_cycles: float | None = None
    oom_retries: int = 0

    @property
    def return_codes(self) -> list[int]:
        return [o.exit_code for o in self.outcomes]

    @property
    def all_succeeded(self) -> bool:
        return all(c == 0 for c in self.return_codes)

    @property
    def max_batch_size(self) -> int:
        return max((b.size for b in self.batches), default=0)


class BatchedEnsembleRunner:
    """Runs arbitrarily large ensembles by splitting into feasible batches."""

    def __init__(
        self,
        loader: EnsembleLoader,
        *,
        thread_limit: int = 1024,
        max_batch: int | None = None,
        collect_timing: bool = True,
    ):
        self.loader = loader
        self.thread_limit = thread_limit
        self.max_batch = max_batch
        self.collect_timing = collect_timing

    def run(self, instances: list[list[str]]) -> CampaignResult:
        """Execute every instance, batching as memory allows."""
        if not instances:
            raise LoaderError("campaign needs at least one instance")
        result = CampaignResult(outcomes=[])
        total_cycles = 0.0
        have_cycles = True

        cursor = 0
        batch = len(instances)
        if self.max_batch is not None:
            batch = min(batch, self.max_batch)
        while cursor < len(instances):
            size = min(batch, len(instances) - cursor)
            chunk = instances[cursor : cursor + size]
            try:
                run = self.loader.run_ensemble(
                    chunk,
                    thread_limit=self.thread_limit,
                    collect_timing=self.collect_timing,
                )
            except DeviceOutOfMemory:
                result.oom_retries += 1
                if size == 1:
                    raise  # a single instance does not fit: a real error
                batch = max(1, size // 2)
                continue
            for outcome in run.instances:
                result.outcomes.append(
                    InstanceOutcome(
                        index=cursor + outcome.index,
                        args=outcome.args,
                        exit_code=outcome.exit_code,
                        slot=outcome.slot,
                        stdout=outcome.stdout,
                    )
                )
            result.batches.append(
                BatchRecord(first_instance=cursor, size=size, cycles=run.cycles)
            )
            if run.cycles is None:
                have_cycles = False
            else:
                total_cycles += run.cycles
            cursor += size
        if have_cycles:
            result.total_cycles = total_cycles
        return result
