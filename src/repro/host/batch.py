"""Batched ensemble campaigns: run more instances than fit in memory.

The paper stops at the device-memory wall ("due to memory limitations, we
were only able to show the results for two and four instances" — §4.3).
Operationally, an ensemble campaign does not care: it wants all M work
items finished.  :class:`BatchedEnsembleRunner` closes that gap:

* try the whole remaining workload as one launch;
* on :class:`~repro.errors.DeviceOutOfMemory`, halve the batch size and
  retry (the device heap is reset between launches, so each batch gets the
  full heap);
* once a batch size works, keep using it (it only ever shrinks), running
  batch after batch until every instance has executed;
* aggregate per-instance outcomes and total simulated cycles across
  batches.

The building blocks — :class:`BisectionPolicy` (the halving schedule) and
:func:`launch_chunk` (run a contiguous slice, re-tagged with global
indices) — are shared with :class:`repro.sched.Scheduler`, which applies
the same policy per device across a pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceOutOfMemory, LoaderError
from repro.faults.report import FAULT_EXIT, FaultReport
from repro.host.ensemble_loader import EnsembleLoader, EnsembleResult, InstanceOutcome
from repro.host.launch import LaunchSpec
from repro.host.results import OutcomeMixin

#: Consecutive injected device losses at one batch cursor the runner will
#: retry before isolating that batch's instances and moving on.
FAULT_RETRY_LIMIT = 3


@dataclass
class BatchRecord:
    """One successful launch within a campaign."""

    first_instance: int
    size: int
    cycles: float | None

    # -- wire shape (docs/serve.md) -----------------------------------------
    def to_wire(self) -> dict:
        """Versioned wire document (see :mod:`repro.wire`)."""
        from repro import wire

        data = wire.envelope("BatchRecord")
        data.update(
            first_instance=self.first_instance,
            size=self.size,
            cycles=self.cycles,
        )
        return data

    @classmethod
    def from_wire(cls, data) -> "BatchRecord":
        from repro import wire

        wire.check_envelope(data, "BatchRecord")
        kind = "BatchRecord"
        cycles = wire.get_field(data, "cycles", (int, float), None, kind=kind)
        return cls(
            first_instance=wire.get_field(data, "first_instance", int, kind=kind),
            size=wire.get_field(data, "size", int, kind=kind),
            cycles=None if cycles is None else float(cycles),
        )


@dataclass
class BisectionPolicy:
    """The OOM-halving batch-size schedule, factored out of the run loop.

    Start with everything that remains (optionally capped), halve on every
    OOM, and never grow back: a size that OOMed once will OOM again because
    the heap is reset identically between launches.
    """

    max_batch: int | None = None
    current: int | None = None

    def next_size(self, remaining: int) -> int:
        """Batch size to try for ``remaining`` outstanding instances."""
        size = remaining if self.current is None else min(self.current, remaining)
        if self.max_batch is not None:
            size = min(size, self.max_batch)
        return max(1, size)

    def record_oom(self, failed_size: int) -> int:
        """Shrink after ``failed_size`` OOMed; returns the new ceiling.

        A failure at size one is terminal — the caller should re-raise the
        :class:`~repro.errors.DeviceOutOfMemory` instead of recording it.
        """
        if failed_size <= 1:
            raise LoaderError("cannot bisect below one instance")
        self.current = max(1, failed_size // 2)
        return self.current

    def record_success(self, size: int) -> None:
        self.current = size if self.current is None else min(self.current, size)


def launch_chunk(
    loader: EnsembleLoader,
    spec: LaunchSpec,
    chunk: list[list[str]],
    first_index: int,
) -> tuple[EnsembleResult, list[InstanceOutcome]]:
    """Launch a contiguous slice of a campaign under ``spec``'s limits.

    Returns the raw launch result plus outcomes re-tagged with campaign-
    global instance indices (``first_index`` onward), so callers can merge
    slices run in any order — the batch runner sequentially, the scheduler
    across devices.
    """
    run = loader.run_ensemble(spec.with_instances(chunk))
    outcomes = [
        InstanceOutcome(
            index=first_index + o.index,
            args=o.args,
            exit_code=o.exit_code,
            slot=o.slot,
            stdout=o.stdout,
            fault=o.fault,
        )
        for o in run.instances
    ]
    return run, outcomes


@dataclass
class CampaignResult(OutcomeMixin):
    """Aggregated outcome of a batched campaign.

    Implements the :class:`~repro.host.results.EnsembleOutcome` protocol:
    ``instances`` aliases ``outcomes`` so report code written against the
    protocol works on campaigns unchanged.
    """

    outcomes: list[InstanceOutcome]
    batches: list[BatchRecord] = field(default_factory=list)
    total_cycles: float | None = None
    oom_retries: int = 0
    #: Injected device losses the runner retried through (recovered or,
    #: past :data:`FAULT_RETRY_LIMIT`, isolated).
    fault_retries: int = 0

    @property
    def instances(self) -> list[InstanceOutcome]:
        return self.outcomes

    @property
    def fault_reports(self) -> list[FaultReport]:
        """Reports of every fault-isolated instance in the campaign."""
        return [o.fault for o in self.outcomes if o.fault is not None]

    @property
    def max_batch_size(self) -> int:
        return max((b.size for b in self.batches), default=0)


class BatchedEnsembleRunner:
    """Runs arbitrarily large ensembles by splitting into feasible batches.

    With an :class:`~repro.obs.Observability` bundle (``obs=``), each
    batch becomes a wall-clock span on the ``batch-runner`` track and the
    campaign publishes ``batch.*`` counters into the registry.
    """

    def __init__(
        self,
        loader: EnsembleLoader,
        *,
        max_batch: int | None = None,
        static_packing: bool = False,
        obs=None,
    ):
        self.loader = loader
        self.max_batch = max_batch
        #: Opt-in: cap batches at the compiler's StaticFootprint bound so
        #: feasible sizes are found without the first OOM round trip.  Off
        #: by default — the runner's contract is pure runtime discovery.
        self.static_packing = static_packing
        if obs is None:
            from repro.obs import Observability

            obs = Observability()
        self.obs = obs

    def run(self, spec: LaunchSpec) -> CampaignResult:
        """Execute every instance of a :class:`LaunchSpec`, batching as
        memory allows.

        The v1 shape — a pre-parsed ``list[list[str]]`` governed by
        constructor-level ``thread_limit``/``collect_timing`` — was removed
        in v2.0 and raises ``TypeError``.
        """
        if not isinstance(spec, LaunchSpec):
            raise TypeError(
                "BatchedEnsembleRunner.run() takes a LaunchSpec since "
                "v2.0; wrap the workload in repro.LaunchSpec(arg_source, "
                "thread_limit=..., collect_timing=...)"
            )
        instances = spec.resolve_instances()
        if not instances:
            raise LoaderError("campaign needs at least one instance")
        result = CampaignResult(outcomes=[])
        policy = BisectionPolicy(max_batch=self.max_batch)
        if self.static_packing:
            self._seed_static_cap(policy)

        self.loader._adopt_fault_plan(spec)
        # A spec-carried plan is armed once per *campaign* here, not once
        # per batch: every batch below forwards this same spec, and letting
        # each launch re-arm would restart schedule counters (``times=``)
        # on every batch.  Demote the adoption mark for the duration of the
        # run so the per-batch launches keep the campaign injector, then
        # restore it so the next ``run()`` can re-arm a fresh plan.
        spec_injector = self.loader._spec_adopted_faults
        self.loader._spec_adopted_faults = None
        try:
            return self._run_batches(spec, instances, result, policy)
        finally:
            self.loader._spec_adopted_faults = spec_injector

    def _seed_static_cap(self, policy: BisectionPolicy) -> None:
        """Tighten the bisection ceiling with the static footprint bound."""
        fp = self.loader.static_footprint
        cap = fp.max_instances(self.loader.heap_bytes)
        metrics = self.obs.metrics
        if cap is None:
            metrics.counter("analysis.packing.static_misses").inc()
            return
        metrics.counter("analysis.packing.static_seeds").inc()
        if cap == 0:
            # Even a single instance exceeds the heap: the campaign is
            # doomed, and statically so — fail before launching anything.
            raise DeviceOutOfMemory(
                requested=fp.heap_hi or 0,
                free=self.loader.heap_bytes,
                capacity=self.loader.heap_bytes,
            )
        policy.max_batch = (
            cap if policy.max_batch is None else min(policy.max_batch, cap)
        )

    def _run_batches(self, spec, instances, result, policy) -> CampaignResult:
        total_cycles = 0.0
        have_cycles = True
        faults = self.loader.device.faults
        tracer, metrics = self.obs.tracer, self.obs.metrics
        cursor = 0
        loss_streak = 0
        pending_injected: list[str] = []
        while cursor < len(instances):
            size = policy.next_size(len(instances) - cursor)
            chunk = instances[cursor : cursor + size]
            if faults.enabled:
                fault = faults.fire(
                    "batch.launch",
                    device=self.loader.device.label,
                    first_instance=cursor,
                )
                if fault is not None:
                    # Mid-batch device loss: retry the batch (the device
                    # heap is reset per launch, so a retry is clean); past
                    # the limit, isolate this batch and carry on — the
                    # campaign never dies wholesale to an injected fault.
                    result.fault_retries += 1
                    loss_streak += 1
                    if tracer.enabled:
                        tracer.instant(
                            "device loss",
                            track="batch-runner",
                            cat="fault",
                            args={"first_instance": cursor, "size": size},
                        )
                    if loss_streak >= FAULT_RETRY_LIMIT:
                        for k, line in enumerate(chunk):
                            report = FaultReport(
                                kind=fault.kind,
                                point="batch.launch",
                                message=(
                                    f"device lost {loss_streak} times at "
                                    f"batch [{cursor}+{size}]"
                                ),
                                device=self.loader.device.label,
                                instances=[cursor + k],
                                attempts=loss_streak,
                            )
                            result.outcomes.append(
                                InstanceOutcome(
                                    index=cursor + k,
                                    args=line,
                                    exit_code=FAULT_EXIT,
                                    slot=-1,
                                    stdout="",
                                    fault=report,
                                )
                            )
                        metrics.counter(
                            "faults.isolated", kind=fault.kind
                        ).inc(size)
                        cursor += size
                        loss_streak = 0
                    continue
            try:
                if tracer.enabled:
                    with tracer.span(
                        f"batch [{cursor}+{size}]",
                        track="batch-runner",
                        cat="batch",
                        first_instance=cursor,
                        size=size,
                    ):
                        run, outcomes = launch_chunk(
                            self.loader, spec, chunk, cursor
                        )
                else:
                    run, outcomes = launch_chunk(self.loader, spec, chunk, cursor)
            except DeviceOutOfMemory as exc:
                result.oom_retries += 1
                metrics.counter("batch.oom_retries").inc()
                kind = getattr(exc, "fault_kind", None)
                if kind is not None:
                    pending_injected.append(kind)
                if tracer.enabled:
                    tracer.instant(
                        "oom retry",
                        track="batch-runner",
                        cat="batch",
                        args={"size": size},
                    )
                if size == 1:
                    raise  # a single instance does not fit: a real error
                policy.record_oom(size)
                continue
            if loss_streak:
                metrics.counter("faults.recovered", kind="device_loss").inc()
                loss_streak = 0
            for kind in pending_injected:
                metrics.counter("faults.recovered", kind=kind).inc()
            pending_injected = []
            policy.record_success(size)
            metrics.counter("batch.launches").inc()
            metrics.histogram("batch.size").observe(size)
            result.outcomes.extend(outcomes)
            result.batches.append(
                BatchRecord(first_instance=cursor, size=size, cycles=run.cycles)
            )
            if run.cycles is None:
                have_cycles = False
            else:
                total_cycles += run.cycles
            cursor += size
        if have_cycles:
            result.total_cycles = total_cycles
        return result
