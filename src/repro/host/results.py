"""The common result protocol shared by every launch entry point.

A single ensemble launch (:class:`~repro.host.ensemble_loader.EnsembleResult`),
a batched campaign (:class:`~repro.host.batch.CampaignResult`), and a
scheduler job (:class:`~repro.sched.jobs.JobResult`) all answer the same
questions: which instances ran, with which exit codes, did everything
succeed, what did instance *i* print, and how much simulated time was
spent.  :class:`EnsembleOutcome` names that contract so harness and report
code can consume any of the three without isinstance ladders, and
:class:`OutcomeMixin` derives the boilerplate from ``instances`` for
concrete result classes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.host.ensemble_loader import InstanceOutcome


@runtime_checkable
class EnsembleOutcome(Protocol):
    """What every multi-instance run result can report."""

    @property
    def instances(self) -> list["InstanceOutcome"]: ...

    @property
    def return_codes(self) -> list[int]: ...

    @property
    def all_succeeded(self) -> bool: ...

    @property
    def total_cycles(self) -> float | None: ...

    def stdout_of(self, index: int) -> str: ...


class OutcomeMixin:
    """Derives the protocol's accessors from an ``instances`` attribute.

    ``instances`` must hold
    :class:`~repro.host.ensemble_loader.InstanceOutcome` records ordered by
    global instance index.
    """

    @property
    def return_codes(self) -> list[int]:
        return [o.exit_code for o in self.instances]

    @property
    def all_succeeded(self) -> bool:
        return all(o.exit_code == 0 for o in self.instances)

    def stdout_of(self, index: int) -> str:
        return self.instances[index].stdout


__all__ = ["EnsembleOutcome", "OutcomeMixin"]
