"""Base loader: the "main wrapper" host entry point of the original direct
GPU compilation framework [26].

Responsibilities (§2.2 of the paper):

* compile + link the user program as device code (declare-target marking,
  ``main`` -> ``__user_main`` renaming, RPC lowering, kernel construction,
  LTO-style finalization),
* load the image onto the device and install the device heap,
* map the program arguments into device memory (``argc``/``argv`` with
  C-style NUL-terminated strings and a NULL-terminated pointer array),
* launch the wrapper kernel and collect the exit code and host-RPC output.

:class:`~repro.host.ensemble_loader.EnsembleLoader` builds on the same
machinery for multi-instance execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.safety import certificates_for
from repro.compilecache.build import (
    DIGEST_META,
    build_executable,
    is_executable,
)
from repro.config import DEFAULT_DEVICE, DEFAULT_SIM
from repro.errors import DeviceOutOfMemory, DeviceTrap, LoaderError
from repro.frontend.dsl import Program
from repro.gpu.device import DeviceImage, GPUDevice, LaunchResult
from repro.gpu.timing import KernelTiming
from repro.host.rpc_host import RPCHost
from repro.ir.module import Module
from repro.runtime.backend import DEFAULT_BACKEND
from repro.runtime.kernel import ENSEMBLE_KERNEL, SINGLE_KERNEL
from repro.runtime.libc import HEAP_CURSOR, HEAP_END


@dataclass
class RunResult:
    """Outcome of a single-instance run."""

    exit_code: int
    stdout: str
    cycles: float | None
    timing: KernelTiming | None
    launch: LaunchResult


@dataclass
class _ArgBlock:
    base: int
    argc_addr: int
    argv_addr: int
    ret_addr: int
    num_instances: int


class Loader:
    """Loads one application onto one simulated device."""

    def __init__(
        self,
        program: Program | Module,
        device: GPUDevice | None = None,
        *,
        heap_bytes: int = 32 * 1024 * 1024,
        stack_bytes: int = 2048,
        team_local_globals: bool = False,
        optimize: bool = True,
        opt_level: int | None = None,
        rpc_transport: str = "direct",
        allow_unsafe: bool = False,
        cache=None,
    ):
        if rpc_transport not in ("direct", "ring"):
            raise LoaderError(f"unknown rpc_transport {rpc_transport!r}")
        self.device = device if device is not None else GPUDevice(DEFAULT_DEVICE, DEFAULT_SIM)
        self.heap_bytes = heap_bytes
        self.stack_bytes = stack_bytes
        self.rpc_transport = rpc_transport
        self.app_name = program.name if isinstance(program, (Program, Module)) else "app"

        obs_kw = dict(tracer=self.device.tracer, metrics=self.device.metrics)
        self._static_footprint = None
        self._cache_entry = None
        if is_executable(program):
            # Already finalized (by the compile cache or a prior loader):
            # its compile options were baked in by the producer, so go
            # straight to image loading.  Recover the stored footprint
            # without counting a hit — the lookup already happened.
            module = program
            if cache is not None:
                digest = module.metadata.get(DIGEST_META)
                entry = cache.peek(digest) if digest else None
                if entry is not None:
                    self._cache_entry = entry
        elif cache is not None:
            entry = cache.get_or_build(
                program,
                team_local_globals=team_local_globals,
                shared_mem_budget=(
                    self.device.config.shared_mem_per_block
                    if team_local_globals
                    else None
                ),
                optimize=optimize,
                opt_level=opt_level,
                **obs_kw,
            )
            module = entry.module
            self._cache_entry = entry
        else:
            module = program.compile() if isinstance(program, Program) else program
            module = build_executable(
                module,
                team_local_globals=team_local_globals,
                shared_mem_budget=self.device.config.shared_mem_per_block,
                optimize=optimize,
                opt_level=opt_level,
                **obs_kw,
            )
        self.module = module
        self.allow_unsafe = allow_unsafe
        #: kernel name -> statically-disproven sites (the safety analyzer
        #: proved the site faults on every execution).  Computed once per
        #: loader from the stamped certificates; enforced at launch time.
        self.safety_disproven = {
            name: cert.disproven()
            for name, cert in certificates_for(module).items()
            if cert.disproven()
        }
        self.image: DeviceImage = self.device.load_image(module)
        self.heap_addr = self.device.alloc(heap_bytes)

    @property
    def static_footprint(self):
        """Lazily computed :class:`~repro.analysis.footprint.StaticFootprint`
        of the linked module's ``__user_main`` — the per-instance heap
        bound the scheduler's static packing consumes."""
        if self._static_footprint is None:
            if self._cache_entry is not None:
                # One lazy derivation per cache *entry*, shared by every
                # loader of the same executable — not one per loader.
                self._static_footprint = self._cache_entry.footprint
            if self._static_footprint is None:
                from repro.analysis.footprint import compute_footprint

                self._static_footprint = compute_footprint(self.module)
        return self._static_footprint

    # ------------------------------------------------------------------
    # plumbing shared with the ensemble loader
    # ------------------------------------------------------------------
    def _make_rpc_host(self) -> RPCHost:
        """An RPC endpoint wired to the device's observability sinks.

        The fault hook is only handed over for the direct transport; in
        ring mode the :class:`~repro.host.transport.RingTransport` consults
        the injector at its device-side endpoint, so wiring the host too
        would fire each RPC's faults twice.
        """
        faults = self.device.faults if self.rpc_transport == "direct" else None
        return RPCHost(
            self.device.memory,
            tracer=self.device.tracer,
            metrics=self.device.metrics,
            faults=faults,
        )

    def _reset_for_run(self) -> None:
        """Fresh-process semantics: re-init globals and the device heap."""
        self.device.reset_image(self.image)
        if HEAP_CURSOR in self.image.symbols:  # absent when libc is unlinked
            mem = self.device.memory
            mem.write_i64(self.image.symbol(HEAP_CURSOR), self.heap_addr)
            mem.write_i64(
                self.image.symbol(HEAP_END), self.heap_addr + self.heap_bytes
            )

    def _marshal_instances(self, instances: list[list[str]]) -> _ArgBlock:
        """Place argc/argv for every instance into one device allocation.

        Layout: ``Argc[NI] | ArgvPtr[NI] | Ret[NI] | per-instance char*
        arrays (NULL-terminated) | string bytes``.
        """
        ni = len(instances)
        if ni == 0:
            raise LoaderError("no instances to marshal")
        header = 3 * ni * 8
        ptr_arrays_off = header
        ptr_arrays_len = sum((len(argv) + 1) * 8 for argv in instances)
        strings_off = ptr_arrays_off + ptr_arrays_len
        encoded = [[a.encode() + b"\x00" for a in argv] for argv in instances]
        strings_len = sum(len(s) for argv in encoded for s in argv)
        total = strings_off + strings_len

        base = self.device.alloc(max(total, 8))
        argc_arr = np.array([len(argv) for argv in instances], dtype=np.int64)
        argvptr_arr = np.zeros(ni, dtype=np.int64)

        # string placement
        str_cursor = base + strings_off
        ptr_cursor = base + ptr_arrays_off
        blob = bytearray(total)
        for i, argv in enumerate(encoded):
            argvptr_arr[i] = ptr_cursor
            ptrs = np.zeros(len(argv) + 1, dtype=np.int64)
            for j, s in enumerate(argv):
                ptrs[j] = str_cursor
                off = str_cursor - base
                blob[off : off + len(s)] = s
                str_cursor += len(s)
            off = ptr_cursor - base
            blob[off : off + ptrs.nbytes] = ptrs.tobytes()
            ptr_cursor += ptrs.nbytes

        blob[0 : ni * 8] = argc_arr.tobytes()
        blob[ni * 8 : 2 * ni * 8] = argvptr_arr.tobytes()
        # Ret[NI] stays zero
        self.device.memory.write_bytes(base, bytes(blob))
        return _ArgBlock(
            base=base,
            argc_addr=base,
            argv_addr=base + ni * 8,
            ret_addr=base + 2 * ni * 8,
            num_instances=ni,
        )

    def _check_launch_safety(self) -> None:
        """Refuse to launch code the safety analyzer disproved.

        A DISPROVEN site faults on *every* execution that reaches it —
        launching is never useful unless the caller explicitly wants the
        dynamic guard to produce the trap (``allow_unsafe=True``; the
        guard always stays armed at such sites, in every safety mode).
        """
        if self.allow_unsafe or not self.safety_disproven:
            return
        parts = []
        for name, proofs in sorted(self.safety_disproven.items()):
            first = proofs[0]
            parts.append(
                f"{name}: {len(proofs)} site(s), e.g. {first.kind} at "
                f"pc {first.pc} ({first.witness})"
            )
        raise LoaderError(
            "refusing to launch: static safety analysis disproved "
            + "; ".join(parts)
            + " — fix the flagged code (run the static-oob/static-trap "
            "lint checkers for line-level diagnostics) or construct the "
            "loader with allow_unsafe=True to keep the dynamic guard"
        )

    def _launch(
        self,
        kernel: str,
        block: _ArgBlock,
        *,
        num_teams: int,
        thread_limit: int,
        instances_per_team: int,
        total_slots: int,
        rpc_host: RPCHost,
        collect_timing: bool,
        max_steps: int,
        backend: str = DEFAULT_BACKEND,
        safety_mode: str = "unchecked",
    ) -> LaunchResult:
        self._check_launch_safety()
        params: tuple = (
            block.num_instances,
            block.argc_addr,
            block.argv_addr,
            block.ret_addr,
            total_slots,
        )
        transport = None
        endpoint = rpc_host.handle
        if self.rpc_transport == "ring":
            from repro.host.transport import RingTransport

            transport = RingTransport(self.device, rpc_host)
            endpoint = transport.endpoint()
        try:
            return self.device.launch(
                self.image,
                kernel,
                num_teams=num_teams,
                thread_limit=thread_limit,
                params=params,
                instances_per_team=instances_per_team,
                stack_bytes=self.stack_bytes,
                rpc=endpoint,
                collect_timing=collect_timing,
                max_steps=max_steps,
                backend=backend,
                safety_mode=safety_mode,
            )
        except DeviceTrap as trap:
            if "out of memory" in str(trap):
                raise DeviceOutOfMemory(
                    requested=0,
                    free=0,
                    capacity=self.heap_bytes,
                ) from trap
            raise
        finally:
            if transport is not None:
                transport.close()

    # ------------------------------------------------------------------
    def run(
        self,
        args: "list[str] | LaunchSpec | None" = None,
        *,
        thread_limit: int = 1024,
        collect_timing: bool = True,
        max_steps: int = 200_000_000,
        backend: str = DEFAULT_BACKEND,
        safety_mode: str = "unchecked",
    ) -> RunResult:
        """Run the application once with C-style arguments.

        ``args`` are the argv *tail* (``argv[0]`` is the program name, added
        automatically, exactly like the enhanced loader does in Figure 4).
        A single-instance :class:`~repro.host.launch.LaunchSpec` is also
        accepted, making this entry point uniform with the ensemble and
        scheduler surfaces.
        """
        from repro.host.launch import LaunchSpec

        if isinstance(args, LaunchSpec):
            spec = args
            lines = spec.resolve_instances()
            if len(lines) != 1:
                raise LoaderError(
                    f"Loader.run executes exactly one instance; the spec "
                    f"resolves to {len(lines)} (use EnsembleLoader or the "
                    "scheduler for ensembles)"
                )
            args = lines[0]
            thread_limit = spec.thread_limit
            collect_timing = spec.collect_timing
            max_steps = spec.max_steps
            backend = spec.backend
            safety_mode = spec.safety_mode
        argv = [self.app_name] + list(args or [])
        self._reset_for_run()
        rpc_host = self._make_rpc_host()
        block = self._marshal_instances([argv])
        try:
            launch = self._launch(
                SINGLE_KERNEL,
                block,
                num_teams=1,
                thread_limit=thread_limit,
                instances_per_team=1,
                total_slots=1,
                rpc_host=rpc_host,
                collect_timing=collect_timing,
                max_steps=max_steps,
                backend=backend,
                safety_mode=safety_mode,
            )
            code = int(self.device.memory.read_i64(block.ret_addr))
        finally:
            self.device.free(block.base)
            rpc_host.close()
        return RunResult(
            exit_code=code,
            stdout=rpc_host.all_stdout(),
            cycles=launch.cycles,
            timing=launch.timing,
            launch=launch,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release device resources held by this loader."""
        self.device.free(self.heap_addr)
        self.device.unload_image(self.image)


__all__ = ["Loader", "RunResult", "SINGLE_KERNEL", "ENSEMBLE_KERNEL"]
