"""Instance-to-team mapping strategies (§3.1).

The paper's proof of concept maps one instance per team.  Its §3.1 also
describes — but does not implement, due to LLVM OpenMP limitations — a
packed mapping that places M instances in one team shaped ``(N/M, M, 1)``,
trading per-instance parallelism for concurrency.  Our runtime has no such
limitation, so :class:`PackedMapping` implements the proposal and the
ablation benchmarks compare the two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import LaunchError
from repro.runtime.teams import TeamGeometry


class MappingStrategy(ABC):
    """Decides the launch geometry for a given instance count."""

    @abstractmethod
    def geometry(self, num_instances: int, thread_limit: int) -> TeamGeometry:
        """Resolve the launch geometry."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable name for reports."""


@dataclass(frozen=True)
class OneInstancePerTeam(MappingStrategy):
    """The paper's scheme: teams == instances, block shape (T, 1, 1)."""

    def geometry(self, num_instances: int, thread_limit: int) -> TeamGeometry:
        if num_instances < 1:
            raise LaunchError("need at least one instance")
        return TeamGeometry(num_instances, thread_limit, instances_per_team=1)

    def describe(self) -> str:
        return "one-instance-per-team"


@dataclass(frozen=True)
class PackedMapping(MappingStrategy):
    """§3.1 future-work scheme: M instances per team, shape (T/M, M, 1)."""

    instances_per_team: int

    def __post_init__(self) -> None:
        if self.instances_per_team < 1:
            raise LaunchError("instances_per_team must be >= 1")

    def geometry(self, num_instances: int, thread_limit: int) -> TeamGeometry:
        if num_instances < 1:
            raise LaunchError("need at least one instance")
        m = self.instances_per_team
        if thread_limit % m:
            raise LaunchError(
                f"thread limit {thread_limit} not divisible by M={m} "
                "(the (N/M, M, 1) mapping requires M | N)"
            )
        teams = -(-num_instances // m)
        return TeamGeometry(teams, thread_limit, instances_per_team=m)

    def describe(self) -> str:
        return f"packed-{self.instances_per_team}-per-team"
