"""RPC transport selection: direct dispatch or the ring buffer.

The interpreter performs RPCs through a callback.  Two implementations:

* :func:`direct_endpoint` — call the :class:`~repro.host.rpc_host.RPCHost`
  handler synchronously (fast; the default).
* :class:`RingTransport` — the transport-faithful path of Figure 2: every
  device call is marshalled into the ring buffer in *device memory*
  (:mod:`repro.runtime.rpc_device`), a real host service thread drains the
  ring and executes handlers, and the device side spins until its response
  slot is filled.  Results are identical to the direct path; only the
  mechanism differs.  Used by ``Loader(..., rpc_transport="ring")`` and the
  RPC framework tests.
"""

from __future__ import annotations

import threading
import time

from repro.errors import RPCError
from repro.faults.injector import InjectedRPCFailure, InstanceFault
from repro.frontend.intrinsics import HOST_FUNCS
from repro.gpu.device import GPUDevice
from repro.host.rpc_host import RPCHost
from repro.runtime.interpreter import RpcLane
from repro.runtime.rpc_device import DeviceRing, HostRing, decode_float_arg, ring_bytes

#: Ring capacity (slots) used by launches.
RING_SLOTS = 64

#: Stable service-id interning shared by both ring ends.
SERVICE_IDS: dict[str, int] = {name: i + 1 for i, name in enumerate(sorted(HOST_FUNCS))}
SERVICE_NAMES: dict[int, str] = {v: k for k, v in SERVICE_IDS.items()}

#: Which (0-based) argument positions of each service carry f64 payloads is
#: not statically known for varargs printf; the ring carries raw 64-bit
#: values and printf's %-spec drives decoding on the host side.
_PRINTF_LIKE = {"printf"}


def direct_endpoint(rpc_host: RPCHost):
    """The default transport: synchronous handler dispatch."""
    return rpc_host.handle


class RingTransport:
    """Owns a ring in device memory plus the host service thread."""

    def __init__(self, device: GPUDevice, rpc_host: RPCHost, *, slots: int = RING_SLOTS):
        self.device = device
        self.rpc_host = rpc_host
        self.base = device.alloc(ring_bytes(slots))
        self.device_ring = DeviceRing(device.memory, self.base, slots)
        self.device_ring.initialize()
        self.host_ring = HostRing(device.memory, self.base)
        self._stop = threading.Event()
        self._lane_meta: dict[int, RpcLane] = {}  # slot addr -> lane identity
        self._meta_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._serve, name="repro-rpc-ring", daemon=True
        )
        self._thread.start()

    # -- host service thread ------------------------------------------------
    def _serve(self) -> None:
        def handle(record):
            name = SERVICE_NAMES.get(record.service_id)
            if name is None:
                raise RPCError(f"unknown service id {record.service_id}")
            with self._meta_lock:
                lane = self._lane_meta.pop(record.slot_addr, None)
            if lane is None:
                lane = RpcLane(team=-1, instance=-1, lane=-1)
            args = self._decode_args(name, record.args_raw)
            result = self.rpc_host.handle(name, args, lane)
            if isinstance(result, float):
                return result
            return result if result is not None else 0

        while not self._stop.is_set():
            if self.host_ring.drain(handle) == 0:
                time.sleep(0.0002)
        self.host_ring.drain(handle)

    def _decode_args(self, name: str, raw: list[int]) -> list:
        if name in _PRINTF_LIKE and raw:
            # fmt pointer first; remaining args decoded per %-spec
            fmt = self.rpc_host.memory.read_cstring(int(raw[0]))
            specs = [s[-1] for s in _printf_specs(fmt)]
            args: list = [raw[0]]
            for spec, value in zip(specs, raw[1:]):
                if spec in "feEgG":
                    args.append(decode_float_arg(value))
                else:
                    args.append(value)
            return args
        sig = HOST_FUNCS.get(name)
        if sig is None or sig[0] is None:
            return list(raw)
        args = []
        for dt, value in zip(sig[0], raw):
            args.append(decode_float_arg(value) if dt.is_float else value)
        return args

    # -- device-side callback -------------------------------------------------
    def endpoint(self):
        """The rpc callback handed to the interpreter.

        Fault injection happens *here*, on the device side of the ring: an
        injected error raised inside the host drain thread would kill the
        thread and wedge every spinning caller, which is a hang, not a
        fault model.  Consulting at the endpoint keeps the blast radius the
        same as the direct transport (the calling team), and the host-side
        :class:`~repro.host.rpc_host.RPCHost` is left without a fault hook
        in ring mode so a call is never double-fired.  ``rpc_dup`` is a
        no-op over the ring: slots are request/response pairs, so delivery
        is exactly-once by construction.
        """
        faults = self.device.faults

        def call(service: str, args: list, lane: RpcLane):
            service_id = SERVICE_IDS.get(service)
            if service_id is None:
                raise RPCError(f"service {service!r} has no ring id")
            fault = None
            if faults.enabled:
                fault = faults.fire(
                    "rpc.reply",
                    service=service,
                    instance=lane.instance,
                    team=lane.team,
                )
            if fault is not None:
                ctx = dict(service=service, instance=lane.instance, team=lane.team)
                if fault.kind == "rpc_drop":
                    raise InjectedRPCFailure(fault, **ctx)
                if fault.kind == "rpc_timeout":
                    raise InstanceFault(fault, **ctx)
            slot = self.device_ring.enqueue(service_id, args)
            with self._meta_lock:
                self._lane_meta[slot] = lane
            want_float = service in ()  # all current services return ints
            deadline = time.monotonic() + 10.0
            while True:
                got = self.device_ring.try_take_response(slot, as_float=want_float)
                if got is not None:
                    if (
                        fault is not None
                        and fault.kind == "transport_corrupt"
                        and isinstance(got, int)
                    ):
                        got ^= 0xFF << (8 * fault.byte)
                    return got
                if time.monotonic() > deadline:
                    raise RPCError(
                        f"RPC {service!r} timed out waiting for the host thread"
                    )
                time.sleep(0.00005)

        return call

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        self.device.free(self.base)


def _printf_specs(fmt: str) -> list[str]:
    import re

    return [
        m.group()
        for m in re.finditer(
            r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?[diufeEgGxXscp]", fmt
        )
    ]
