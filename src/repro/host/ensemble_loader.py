"""Enhanced ensemble loader — the paper's contribution (§3).

Extends the base loader with the three command-line options of §3.2::

    -f <file>   argument file: one line of command-line args per instance
    -n <N>      number of instances launched simultaneously
    -t <T>      per-instance thread limit

Every instance becomes one iteration of a ``target teams distribute`` loop
(Figure 4): ``Ret[I] = __user_main(Argc[I], &Argv[I][0])``.  The default
mapping executes one instance per team (teams == instances, as in the
evaluation); a :class:`~repro.host.mapping.PackedMapping` strategy packs M
instances per team using the ``(N/M, M, 1)`` geometry of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis import Severity, check_races
from repro.errors import EnsembleSafetyError, LoaderError
from repro.faults.injector import FaultInjector
from repro.faults.report import FAULT_EXIT, FaultReport
from repro.frontend.dsl import Program
from repro.gpu.device import GPUDevice, LaunchResult
from repro.gpu.timing import KernelTiming
from repro.host.launch import LaunchSpec
from repro.host.loader import Loader
from repro.host.results import OutcomeMixin
from repro.host.mapping import MappingStrategy, OneInstancePerTeam
from repro.ir.module import Module
from repro.runtime.kernel import ENSEMBLE_KERNEL
from repro.runtime.teams import TeamGeometry


@dataclass
class InstanceOutcome:
    """Result of one application instance within an ensemble."""

    index: int
    args: list[str]
    exit_code: int
    slot: int
    stdout: str
    #: Set when this instance was isolated by an injected fault instead of
    #: running to completion; ``exit_code`` is then :data:`FAULT_EXIT`.
    fault: FaultReport | None = None

    # -- wire shape (docs/serve.md) -----------------------------------------
    def to_wire(self) -> dict:
        """Versioned wire document (see :mod:`repro.wire`)."""
        from repro import wire

        data = wire.envelope("InstanceOutcome")
        data.update(
            index=self.index,
            args=list(self.args),
            exit_code=self.exit_code,
            slot=self.slot,
            stdout=self.stdout,
            fault=None if self.fault is None else self.fault.to_wire(),
        )
        return data

    @classmethod
    def from_wire(cls, data) -> "InstanceOutcome":
        from repro import wire

        wire.check_envelope(data, "InstanceOutcome")
        kind = "InstanceOutcome"
        fault = wire.get_field(data, "fault", dict, None, kind=kind)
        return cls(
            index=wire.get_field(data, "index", int, kind=kind),
            args=wire.string_list(data, "args", kind=kind),
            exit_code=wire.get_field(data, "exit_code", int, kind=kind),
            slot=wire.get_field(data, "slot", int, -1, kind=kind),
            stdout=wire.get_field(data, "stdout", str, "", kind=kind),
            fault=None if fault is None else FaultReport.from_wire(fault),
        )


@dataclass
class EnsembleResult(OutcomeMixin):
    """Outcome of one ensemble launch.

    Implements the :class:`~repro.host.results.EnsembleOutcome` protocol
    (``return_codes`` / ``all_succeeded`` / ``stdout_of`` come from the
    mixin; ``total_cycles`` aliases this launch's ``cycles``) so report
    code treats it interchangeably with campaign and scheduler results.
    """

    num_instances: int
    thread_limit: int
    geometry: TeamGeometry
    instances: list[InstanceOutcome]
    cycles: float | None
    timing: KernelTiming | None
    launch: LaunchResult = field(repr=False)

    @property
    def total_cycles(self) -> float | None:
        return self.cycles

    @property
    def fault_reports(self) -> list[FaultReport]:
        """Reports of every fault-isolated instance in this launch."""
        return [o.fault for o in self.instances if o.fault is not None]


class EnsembleLoader(Loader):
    """The enhanced loader: ``./user_app_gpu -f args.txt -n N -t T``."""

    def __init__(
        self,
        program: Program | Module,
        device: GPUDevice | None = None,
        *,
        mapping: MappingStrategy = OneInstancePerTeam(),
        heap_bytes: int = 64 * 1024 * 1024,
        stack_bytes: int = 2048,
        team_local_globals: bool = False,
        optimize: bool = True,
        opt_level: int | None = None,
        rpc_transport: str = "direct",
        allow_races: bool = False,
        allow_unsafe: bool = False,
        cache=None,
    ):
        super().__init__(
            program,
            device,
            heap_bytes=heap_bytes,
            stack_bytes=stack_bytes,
            team_local_globals=team_local_globals,
            optimize=optimize,
            opt_level=opt_level,
            rpc_transport=rpc_transport,
            allow_unsafe=allow_unsafe,
            cache=cache,
        )
        self.mapping = mapping
        self.allow_races = allow_races
        #: the injector this loader armed from a spec's fault plan, if any;
        #: lets later spec-carried plans re-arm without clobbering an
        #: injector a scheduler or batch runner attached for the campaign.
        self._spec_adopted_faults = None
        #: error-severity cross-instance race findings for the linked module;
        #: computed once here, enforced per-launch in :meth:`run_ensemble`.
        self.race_diagnostics = [
            d for d in check_races(self.module) if d.severity >= Severity.ERROR
        ]

    def _check_ensemble_safety(self, num_instances: int) -> None:
        """Refuse multi-instance launches of modules with race errors.

        Single-instance launches are always safe (there is nobody to race
        with); ``allow_races=True`` overrides the gate for callers who know
        the shared state is benign.
        """
        if num_instances <= 1 or self.allow_races or not self.race_diagnostics:
            return
        syms = sorted({d.sym for d in self.race_diagnostics if d.sym})
        names = ", ".join(f"@{s}" for s in syms) or "shared globals"
        raise EnsembleSafetyError(
            f"refusing to launch {num_instances} instances: mutable "
            f"global(s) {names} are written by the program and would be "
            "shared across instances; rerun with team_local_globals=True "
            "(the globals_to_shared pass) or pass allow_races=True "
            "(--allow-races) to override",
            self.race_diagnostics,
        )

    # ------------------------------------------------------------------
    def run_ensemble(self, spec: LaunchSpec) -> EnsembleResult:
        """Launch an ensemble described by a :class:`LaunchSpec`.

        The v1 shape — a raw argument source (path, text, or token lists)
        plus keyword options — was removed in v2.0 and raises
        ``TypeError``.
        """
        if not isinstance(spec, LaunchSpec):
            raise TypeError(
                "run_ensemble() takes a LaunchSpec since v2.0; wrap the "
                "argument source in repro.LaunchSpec(arg_source, "
                "num_instances=..., thread_limit=...)"
            )
        return self._run_spec(spec)

    def _adopt_fault_plan(self, spec: LaunchSpec) -> None:
        """Arm a spec-carried chaos plan on this loader's device.

        A scheduler or batch runner that already armed an injector for the
        campaign wins over the spec.  A plan the *spec* carries is part of
        that launch's description, so each such launch re-arms a fresh
        injector (schedule counters like ``times=`` start over per run).
        """
        plan = spec.resolve_fault_plan()
        if plan is None:
            return
        current = self.device.faults
        if current.enabled and current is not self._spec_adopted_faults:
            return
        injector = FaultInjector(plan)
        injector.attach_sinks(self.device.tracer, self.device.metrics)
        self.device.faults = injector
        self._spec_adopted_faults = injector

    def _run_spec(self, spec: LaunchSpec) -> EnsembleResult:
        self._adopt_fault_plan(spec)
        instances = spec.resolve_instances()
        num_instances = len(instances)
        if num_instances < 1:
            raise LoaderError("ensemble needs at least one instance")
        thread_limit = spec.thread_limit
        self._check_ensemble_safety(num_instances)
        argvs = [[self.app_name] + line for line in instances]

        geometry = self.mapping.geometry(num_instances, thread_limit)
        self._reset_for_run()
        rpc_host = self._make_rpc_host()
        block = self._marshal_instances(argvs)
        try:
            launch = self._launch(
                ENSEMBLE_KERNEL,
                block,
                num_teams=geometry.num_teams,
                thread_limit=geometry.thread_limit,
                instances_per_team=geometry.instances_per_team,
                total_slots=geometry.total_slots,
                rpc_host=rpc_host,
                collect_timing=spec.collect_timing,
                max_steps=spec.max_steps,
                backend=spec.backend,
                safety_mode=spec.safety_mode,
            )
            codes = self.device.memory.read_array(
                block.ret_addr, np.int64, num_instances
            )
        finally:
            self.device.free(block.base)
            rpc_host.close()

        outcomes = []
        ipt = geometry.instances_per_team
        for i, line in enumerate(instances):
            slot = i % geometry.total_slots
            fault_err = launch.team_faults.get(slot // ipt)
            report = None
            exit_code = int(codes[i])
            if fault_err is not None:
                # The team never wrote Ret[] — a zero there would read as
                # success, so the isolated instance gets a synthetic exit
                # code plus the structured report.
                exit_code = FAULT_EXIT
                report = fault_err.to_report(
                    team=slot // ipt, instances=[i]
                )
                if self.device.metrics is not None:
                    self.device.metrics.counter(
                        "faults.isolated", kind=report.kind
                    ).inc()
            outcomes.append(
                InstanceOutcome(
                    index=i,
                    args=line,
                    exit_code=exit_code,
                    slot=slot,
                    stdout=rpc_host.instance_stdout(slot),
                    fault=report,
                )
            )
        return EnsembleResult(
            num_instances=num_instances,
            thread_limit=thread_limit,
            geometry=geometry,
            instances=outcomes,
            cycles=launch.cycles,
            timing=launch.timing,
            launch=launch,
        )
