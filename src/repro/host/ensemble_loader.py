"""Enhanced ensemble loader — the paper's contribution (§3).

Extends the base loader with the three command-line options of §3.2::

    -f <file>   argument file: one line of command-line args per instance
    -n <N>      number of instances launched simultaneously
    -t <T>      per-instance thread limit

Every instance becomes one iteration of a ``target teams distribute`` loop
(Figure 4): ``Ret[I] = __user_main(Argc[I], &Argv[I][0])``.  The default
mapping executes one instance per team (teams == instances, as in the
evaluation); a :class:`~repro.host.mapping.PackedMapping` strategy packs M
instances per team using the ``(N/M, M, 1)`` geometry of §3.1.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.analysis import Severity, check_races
from repro.errors import EnsembleSafetyError, LoaderError
from repro.frontend.dsl import Program
from repro.gpu.device import GPUDevice, LaunchResult
from repro.gpu.timing import KernelTiming
from repro.host.argfile import resolve_arg_source
from repro.host.launch import DEFAULT_MAX_STEPS, LaunchSpec
from repro.host.loader import Loader
from repro.host.results import OutcomeMixin
from repro.host.mapping import MappingStrategy, OneInstancePerTeam
from repro.ir.module import Module
from repro.runtime.kernel import ENSEMBLE_KERNEL
from repro.runtime.teams import TeamGeometry


@dataclass
class InstanceOutcome:
    """Result of one application instance within an ensemble."""

    index: int
    args: list[str]
    exit_code: int
    slot: int
    stdout: str


@dataclass
class EnsembleResult(OutcomeMixin):
    """Outcome of one ensemble launch.

    Implements the :class:`~repro.host.results.EnsembleOutcome` protocol
    (``return_codes`` / ``all_succeeded`` / ``stdout_of`` come from the
    mixin; ``total_cycles`` aliases this launch's ``cycles``) so report
    code treats it interchangeably with campaign and scheduler results.
    """

    num_instances: int
    thread_limit: int
    geometry: TeamGeometry
    instances: list[InstanceOutcome]
    cycles: float | None
    timing: KernelTiming | None
    launch: LaunchResult = field(repr=False)

    @property
    def total_cycles(self) -> float | None:
        return self.cycles


class EnsembleLoader(Loader):
    """The enhanced loader: ``./user_app_gpu -f args.txt -n N -t T``."""

    def __init__(
        self,
        program: Program | Module,
        device: GPUDevice | None = None,
        *,
        mapping: MappingStrategy = OneInstancePerTeam(),
        heap_bytes: int = 64 * 1024 * 1024,
        stack_bytes: int = 2048,
        team_local_globals: bool = False,
        optimize: bool = True,
        rpc_transport: str = "direct",
        allow_races: bool = False,
    ):
        super().__init__(
            program,
            device,
            heap_bytes=heap_bytes,
            stack_bytes=stack_bytes,
            team_local_globals=team_local_globals,
            optimize=optimize,
            rpc_transport=rpc_transport,
        )
        self.mapping = mapping
        self.allow_races = allow_races
        #: error-severity cross-instance race findings for the linked module;
        #: computed once here, enforced per-launch in :meth:`run_ensemble`.
        self.race_diagnostics = [
            d for d in check_races(self.module) if d.severity >= Severity.ERROR
        ]

    def _check_ensemble_safety(self, num_instances: int) -> None:
        """Refuse multi-instance launches of modules with race errors.

        Single-instance launches are always safe (there is nobody to race
        with); ``allow_races=True`` overrides the gate for callers who know
        the shared state is benign.
        """
        if num_instances <= 1 or self.allow_races or not self.race_diagnostics:
            return
        syms = sorted({d.sym for d in self.race_diagnostics if d.sym})
        names = ", ".join(f"@{s}" for s in syms) or "shared globals"
        raise EnsembleSafetyError(
            f"refusing to launch {num_instances} instances: mutable "
            f"global(s) {names} are written by the program and would be "
            "shared across instances; rerun with team_local_globals=True "
            "(the globals_to_shared pass) or pass allow_races=True "
            "(--allow-races) to override",
            self.race_diagnostics,
        )

    # ------------------------------------------------------------------
    def run_ensemble(
        self,
        spec,
        *,
        num_instances: int | None = None,
        thread_limit: int = 1024,
        collect_timing: bool = True,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> EnsembleResult:
        """Launch an ensemble described by a :class:`LaunchSpec`.

        The legacy shape — a raw argument source (path, text, or token
        lists) plus keyword options — still works but is deprecated; it is
        converted into a spec on entry.
        """
        if not isinstance(spec, LaunchSpec):
            warnings.warn(
                "passing a raw argument source to run_ensemble() is "
                "deprecated; wrap it in repro.host.LaunchSpec(...)",
                DeprecationWarning,
                stacklevel=2,
            )
            spec = LaunchSpec(
                arg_source=spec,
                num_instances=num_instances,
                thread_limit=thread_limit,
                collect_timing=collect_timing,
                max_steps=max_steps,
            )
        return self._run_spec(spec)

    def _run_spec(self, spec: LaunchSpec) -> EnsembleResult:
        instances = spec.resolve_instances()
        num_instances = len(instances)
        if num_instances < 1:
            raise LoaderError("ensemble needs at least one instance")
        thread_limit = spec.thread_limit
        self._check_ensemble_safety(num_instances)
        argvs = [[self.app_name] + line for line in instances]

        geometry = self.mapping.geometry(num_instances, thread_limit)
        self._reset_for_run()
        rpc_host = self._make_rpc_host()
        block = self._marshal_instances(argvs)
        try:
            launch = self._launch(
                ENSEMBLE_KERNEL,
                block,
                num_teams=geometry.num_teams,
                thread_limit=geometry.thread_limit,
                instances_per_team=geometry.instances_per_team,
                total_slots=geometry.total_slots,
                rpc_host=rpc_host,
                collect_timing=spec.collect_timing,
                max_steps=spec.max_steps,
            )
            codes = self.device.memory.read_array(
                block.ret_addr, np.int64, num_instances
            )
        finally:
            self.device.free(block.base)
            rpc_host.close()

        outcomes = []
        for i, line in enumerate(instances):
            slot = i % geometry.total_slots
            outcomes.append(
                InstanceOutcome(
                    index=i,
                    args=line,
                    exit_code=int(codes[i]),
                    slot=slot,
                    stdout=rpc_host.instance_stdout(slot),
                )
            )
        return EnsembleResult(
            num_instances=num_instances,
            thread_limit=thread_limit,
            geometry=geometry,
            instances=outcomes,
            cycles=launch.cycles,
            timing=launch.timing,
            launch=launch,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_args(arg_source) -> list[list[str]]:
        """Deprecated alias for :func:`repro.host.argfile.resolve_arg_source`."""
        warnings.warn(
            "EnsembleLoader._resolve_args is deprecated; use "
            "repro.host.argfile.resolve_arg_source",
            DeprecationWarning,
            stacklevel=2,
        )
        return resolve_arg_source(arg_source)
