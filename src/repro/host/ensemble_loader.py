"""Enhanced ensemble loader — the paper's contribution (§3).

Extends the base loader with the three command-line options of §3.2::

    -f <file>   argument file: one line of command-line args per instance
    -n <N>      number of instances launched simultaneously
    -t <T>      per-instance thread limit

Every instance becomes one iteration of a ``target teams distribute`` loop
(Figure 4): ``Ret[I] = __user_main(Argc[I], &Argv[I][0])``.  The default
mapping executes one instance per team (teams == instances, as in the
evaluation); a :class:`~repro.host.mapping.PackedMapping` strategy packs M
instances per team using the ``(N/M, M, 1)`` geometry of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis import Severity, check_races
from repro.errors import EnsembleSafetyError, LoaderError
from repro.frontend.dsl import Program
from repro.gpu.device import GPUDevice, LaunchResult
from repro.gpu.timing import KernelTiming
from repro.host.argfile import parse_argument_file, parse_argument_text
from repro.host.loader import Loader
from repro.host.mapping import MappingStrategy, OneInstancePerTeam
from repro.host.rpc_host import RPCHost
from repro.ir.module import Module
from repro.runtime.kernel import ENSEMBLE_KERNEL
from repro.runtime.teams import TeamGeometry


@dataclass
class InstanceOutcome:
    """Result of one application instance within an ensemble."""

    index: int
    args: list[str]
    exit_code: int
    slot: int
    stdout: str


@dataclass
class EnsembleResult:
    """Outcome of one ensemble launch."""

    num_instances: int
    thread_limit: int
    geometry: TeamGeometry
    return_codes: list[int]
    instances: list[InstanceOutcome]
    cycles: float | None
    timing: KernelTiming | None
    launch: LaunchResult = field(repr=False)

    @property
    def all_succeeded(self) -> bool:
        return all(c == 0 for c in self.return_codes)

    def stdout_of(self, index: int) -> str:
        return self.instances[index].stdout


class EnsembleLoader(Loader):
    """The enhanced loader: ``./user_app_gpu -f args.txt -n N -t T``."""

    def __init__(
        self,
        program: Program | Module,
        device: GPUDevice | None = None,
        *,
        mapping: MappingStrategy = OneInstancePerTeam(),
        heap_bytes: int = 64 * 1024 * 1024,
        stack_bytes: int = 2048,
        team_local_globals: bool = False,
        optimize: bool = True,
        rpc_transport: str = "direct",
        allow_races: bool = False,
    ):
        super().__init__(
            program,
            device,
            heap_bytes=heap_bytes,
            stack_bytes=stack_bytes,
            team_local_globals=team_local_globals,
            optimize=optimize,
            rpc_transport=rpc_transport,
        )
        self.mapping = mapping
        self.allow_races = allow_races
        #: error-severity cross-instance race findings for the linked module;
        #: computed once here, enforced per-launch in :meth:`run_ensemble`.
        self.race_diagnostics = [
            d for d in check_races(self.module) if d.severity >= Severity.ERROR
        ]

    def _check_ensemble_safety(self, num_instances: int) -> None:
        """Refuse multi-instance launches of modules with race errors.

        Single-instance launches are always safe (there is nobody to race
        with); ``allow_races=True`` overrides the gate for callers who know
        the shared state is benign.
        """
        if num_instances <= 1 or self.allow_races or not self.race_diagnostics:
            return
        syms = sorted({d.sym for d in self.race_diagnostics if d.sym})
        names = ", ".join(f"@{s}" for s in syms) or "shared globals"
        raise EnsembleSafetyError(
            f"refusing to launch {num_instances} instances: mutable "
            f"global(s) {names} are written by the program and would be "
            "shared across instances; rerun with team_local_globals=True "
            "(the globals_to_shared pass) or pass allow_races=True "
            "(--allow-races) to override",
            self.race_diagnostics,
        )

    # ------------------------------------------------------------------
    def run_ensemble(
        self,
        arg_source,
        *,
        num_instances: int | None = None,
        thread_limit: int = 1024,
        collect_timing: bool = True,
        max_steps: int = 400_000_000,
    ) -> EnsembleResult:
        """Launch an ensemble.

        ``arg_source`` may be a path to an argument file, raw argument-file
        text, or an already-parsed ``list[list[str]]`` (one token list per
        instance).  ``num_instances`` (the ``-n`` flag) defaults to the
        number of lines; giving a smaller N runs the first N lines, a larger
        N is an error (the paper's loader reads exactly one line per
        instance).
        """
        instances = self._resolve_args(arg_source)
        if num_instances is None:
            num_instances = len(instances)
        if num_instances < 1:
            raise LoaderError("-n must request at least one instance")
        if num_instances > len(instances):
            raise LoaderError(
                f"-n {num_instances} requested but the argument file has only "
                f"{len(instances)} lines"
            )
        instances = instances[:num_instances]
        self._check_ensemble_safety(num_instances)
        argvs = [[self.app_name] + line for line in instances]

        geometry = self.mapping.geometry(num_instances, thread_limit)
        self._reset_for_run()
        rpc_host = RPCHost(self.device.memory)
        block = self._marshal_instances(argvs)
        try:
            launch = self._launch(
                ENSEMBLE_KERNEL,
                block,
                num_teams=geometry.num_teams,
                thread_limit=geometry.thread_limit,
                instances_per_team=geometry.instances_per_team,
                total_slots=geometry.total_slots,
                rpc_host=rpc_host,
                collect_timing=collect_timing,
                max_steps=max_steps,
            )
            codes = self.device.memory.read_array(
                block.ret_addr, np.int64, num_instances
            )
        finally:
            self.device.free(block.base)
            rpc_host.close()

        outcomes = []
        for i, line in enumerate(instances):
            slot = i % geometry.total_slots
            outcomes.append(
                InstanceOutcome(
                    index=i,
                    args=line,
                    exit_code=int(codes[i]),
                    slot=slot,
                    stdout=rpc_host.instance_stdout(slot),
                )
            )
        return EnsembleResult(
            num_instances=num_instances,
            thread_limit=thread_limit,
            geometry=geometry,
            return_codes=[int(c) for c in codes],
            instances=outcomes,
            cycles=launch.cycles,
            timing=launch.timing,
            launch=launch,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_args(arg_source) -> list[list[str]]:
        if isinstance(arg_source, (list, tuple)):
            return [list(map(str, line)) for line in arg_source]
        if isinstance(arg_source, Path):
            return parse_argument_file(arg_source)
        if isinstance(arg_source, str):
            if "\n" not in arg_source and Path(arg_source).exists():
                return parse_argument_file(arg_source)
            return parse_argument_text(arg_source)
        raise LoaderError(f"unsupported argument source {type(arg_source).__name__}")
