"""Host-side components: loaders, RPC service, argument handling.

* :class:`~repro.host.loader.Loader` — the main wrapper of the original
  direct-compilation work [26]: runs one application instance on one team.
* :class:`~repro.host.ensemble_loader.EnsembleLoader` — this paper's
  enhanced loader: reads a command-line-arguments file (one line per
  instance), maps each instance to a team via ``target teams distribute``,
  and launches all of them in a single kernel.
* :mod:`~repro.host.rpc_host` — the host RPC endpoint servicing
  device-side ``printf``/file-I/O calls.
* :mod:`~repro.host.argfile` / :mod:`~repro.host.argscript` — the argument
  file format of §3.2 and the script language its future-work section
  proposes.
* :mod:`~repro.host.mapping` — instance-to-team mapping strategies,
  including the packed ``(N/M, M, 1)`` mapping of §3.1.
"""

from repro.host.loader import Loader, RunResult
from repro.host.launch import LaunchSpec
from repro.host.ensemble_loader import EnsembleLoader, EnsembleResult, InstanceOutcome
from repro.host.batch import (
    BatchedEnsembleRunner,
    BisectionPolicy,
    CampaignResult,
    launch_chunk,
)
from repro.host.argfile import (
    parse_argument_file,
    parse_argument_text,
    resolve_arg_source,
)
from repro.host.argscript import expand_argument_script
from repro.host.results import EnsembleOutcome, OutcomeMixin
from repro.host.rpc_host import RPCHost
from repro.host.mapping import (
    MappingStrategy,
    OneInstancePerTeam,
    PackedMapping,
)

__all__ = [
    "Loader",
    "RunResult",
    "LaunchSpec",
    "EnsembleLoader",
    "EnsembleResult",
    "InstanceOutcome",
    "BatchedEnsembleRunner",
    "BisectionPolicy",
    "CampaignResult",
    "launch_chunk",
    "parse_argument_file",
    "parse_argument_text",
    "resolve_arg_source",
    "expand_argument_script",
    "EnsembleOutcome",
    "OutcomeMixin",
    "RPCHost",
    "MappingStrategy",
    "OneInstancePerTeam",
    "PackedMapping",
]
