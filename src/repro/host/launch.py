"""The unified launch surface: one spec for every way to run an ensemble.

Historically each entry point grew its own argument shape: ``Loader.run``
took an argv tail, ``EnsembleLoader.run_ensemble`` a path/text/token-list
union plus four keyword options, ``BatchedEnsembleRunner.run`` only
pre-parsed token lists, and the CLI yet another flag spelling.
:class:`LaunchSpec` collapses all of that: it names *what* to run (the
argument source and instance count) and *how* (thread limit, step cap,
timing collection), and is accepted uniformly by

* :meth:`repro.host.loader.Loader.run`,
* :meth:`repro.host.ensemble_loader.EnsembleLoader.run_ensemble`,
* :meth:`repro.host.batch.BatchedEnsembleRunner.run`,
* :meth:`repro.sched.Scheduler.submit`.

Since v2.0 the spec is the only accepted shape (the v1 raw-source call
shapes raise ``TypeError`` with a migration hint).  The spec also names
the :mod:`execution backend <repro.runtime.backend>` — the reference SIMT
interpreter (``"interp"``) or the compiled block-table engine
(``"compiled"``) — so a whole campaign switches engines by changing one
field.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence, Union

from repro.errors import LoaderError
from repro.faults.plan import FaultPlan
from repro.host.argfile import resolve_arg_source
from repro.runtime.backend import DEFAULT_BACKEND

#: Anything :func:`~repro.host.argfile.resolve_arg_source` understands.
ArgSource = Union[str, Path, Sequence[Sequence[str]]]

#: Default per-launch interpreter-step cap (matches the historical
#: ``run_ensemble`` default; generous enough for every shipped benchmark).
DEFAULT_MAX_STEPS = 400_000_000


@dataclass(frozen=True)
class LaunchSpec:
    """Everything needed to launch an ensemble, in one value.

    ``arg_source`` is an argument file path, raw argument-file text, or an
    already-parsed list of per-instance token lists (§3.2's ``-f``).
    ``num_instances`` is the paper's ``-n``: ``None`` runs every line, a
    smaller count runs a prefix, a larger count is an error.
    ``thread_limit`` is ``-t``; ``max_steps`` bounds interpreter steps per
    launch; ``collect_timing`` toggles the timing model.
    """

    arg_source: ArgSource
    num_instances: int | None = None
    thread_limit: int = 1024
    max_steps: int = DEFAULT_MAX_STEPS
    collect_timing: bool = True
    #: Execution engine for every launch of this workload: a name from
    #: :func:`repro.runtime.backend.available_backends` (``"interp"`` —
    #: the reference SIMT interpreter — or ``"compiled"``, the block-table
    #: engine).  Results are bitwise-identical across backends.
    backend: str = DEFAULT_BACKEND
    #: Optional chaos plan (a :class:`~repro.faults.plan.FaultPlan` or its
    #: spec-string form) carried with the workload; the entry surface that
    #: executes the spec arms it — the scheduler across its pool, the
    #: ensemble loader on its device.  ``None`` means ``NO_FAULTS``.
    fault_plan: FaultPlan | str | None = None
    #: Guard policy for certificate-aware backends: ``"unchecked"`` (the
    #: default — sites the :mod:`~repro.analysis.safety` certificate
    #: proves safe run guard-free), ``"checked"`` (dynamic guards
    #: everywhere; the ``--no-unchecked`` escape hatch), or ``"assert"``
    #: (guards stay armed and report certificate violations).
    safety_mode: str = "unchecked"

    def resolve_instances(self) -> list[list[str]]:
        """Resolve ``arg_source`` and apply the ``-n`` prefix rule."""
        instances = resolve_arg_source(self.arg_source)
        n = self.num_instances
        if n is None:
            return instances
        if n < 1:
            raise LoaderError("-n must request at least one instance")
        if n > len(instances):
            raise LoaderError(
                f"-n {n} requested but the argument file has only "
                f"{len(instances)} lines"
            )
        return instances[:n]

    def resolve_fault_plan(self) -> FaultPlan | None:
        """The spec's chaos plan as a parsed :class:`FaultPlan` (or None)."""
        if self.fault_plan is None:
            return None
        if isinstance(self.fault_plan, str):
            return FaultPlan.parse(self.fault_plan)
        return self.fault_plan

    def with_instances(self, instances: list[list[str]]) -> "LaunchSpec":
        """A copy of this spec over an explicit, already-resolved workload.

        Used by the batch runner and the scheduler to re-launch subsets
        (batches, shards, retries) under the original limits.
        """
        return replace(self, arg_source=instances, num_instances=None)

    # ------------------------------------------------------------------
    # wire shape (docs/serve.md)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """Versioned wire document (see :mod:`repro.wire`).

        The argument source is *resolved* at serialization time: a path
        or raw text becomes the explicit per-instance token lists, so the
        document is self-contained — a remote server never needs the
        submitting host's filesystem.  ``num_instances`` is folded into
        the resolution (the ``-n`` prefix rule) for the same reason.
        """
        from repro import wire

        plan = self.resolve_fault_plan()
        data = wire.envelope("LaunchSpec")
        data.update(
            instances=self.resolve_instances(),
            thread_limit=self.thread_limit,
            max_steps=self.max_steps,
            collect_timing=self.collect_timing,
            backend=self.backend,
            fault_plan=None if plan is None else plan.to_wire(),
            safety_mode=self.safety_mode,
        )
        return data

    @classmethod
    def from_wire(cls, data) -> "LaunchSpec":
        from repro import wire
        from repro.faults.plan import FaultPlan

        wire.check_envelope(data, "LaunchSpec")
        kind = "LaunchSpec"
        raw = wire.get_field(data, "instances", list, kind=kind)
        instances = []
        for line in raw:
            if not isinstance(line, list) or not all(
                isinstance(tok, str) for tok in line
            ):
                raise wire.WireError(
                    f"{kind}: instances must be lists of string tokens"
                )
            instances.append(list(line))
        plan_data = wire.get_field(data, "fault_plan", dict, None, kind=kind)
        return cls(
            arg_source=instances,
            num_instances=None,
            thread_limit=wire.get_field(
                data, "thread_limit", int, 1024, kind=kind
            ),
            max_steps=wire.get_field(
                data, "max_steps", int, DEFAULT_MAX_STEPS, kind=kind
            ),
            collect_timing=wire.get_field(
                data, "collect_timing", bool, True, kind=kind
            ),
            backend=wire.get_field(data, "backend", str, DEFAULT_BACKEND, kind=kind),
            fault_plan=None
            if plan_data is None
            else FaultPlan.from_wire(plan_data),
            safety_mode=wire.get_field(
                data, "safety_mode", str, "unchecked", kind=kind
            ),
        )


__all__ = ["ArgSource", "LaunchSpec", "DEFAULT_MAX_STEPS"]
