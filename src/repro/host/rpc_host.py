"""Host RPC endpoint.

Services the device's ``rpc`` instructions (generated from calls to
host-only functions by the RPC-lowering pass).  Two transports exist:

* **direct** — the interpreter invokes :meth:`RPCHost.handle` synchronously
  (the timing model charges each RPC a large fixed latency);
* **ring** — the transport-faithful path over a ring buffer in device
  memory (:mod:`repro.runtime.rpc_device`), optionally drained by a real
  background thread, mirroring the RPC service thread in Figure 2 of the
  paper.  The loaders use the direct path; the ring is exercised by the RPC
  framework tests and :meth:`RPCHost.serve_ring`.

Output capture: ``printf``/``puts`` bytes are captured **per application
instance**, so an ensemble run can return each instance its own stdout —
the host-side counterpart of instance isolation.

Observability: per-service call totals are published into a
:class:`~repro.obs.MetricsRegistry` (``rpc.calls{service=...}``), with
the historical ``call_counts`` dict kept as a read view over it; an
enabled tracer records each call and each ring drain as instant events
on the ``rpc-host`` track (the RPC service thread of Figure 2).
"""

from __future__ import annotations

import re
import threading
import time
from collections import defaultdict

from repro.errors import DeviceTrap, RPCError
from repro.faults.injector import NO_FAULTS, InjectedRPCFailure, InstanceFault
from repro.gpu.memory import GlobalMemory
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.runtime.interpreter import RpcLane
from repro.runtime.rpc_device import HostRing, RpcRecord, decode_float_arg

_FMT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?[diufeEgGxXscp%]")

#: Track RPC-host events are recorded on (one track for the service thread).
RPC_TRACK = "rpc-host"


class RPCHost:
    """Dispatch table + output capture for device-originated calls."""

    def __init__(
        self,
        memory: GlobalMemory,
        *,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        faults=None,
    ):
        self.memory = memory
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Fault hook for the ``rpc.reply`` injection point.  Only the
        #: direct transport wires this up — the ring transport consults the
        #: injector at its device-side endpoint instead, so one RPC is
        #: never double-fired (see :class:`repro.host.transport.RingTransport`).
        self.faults = faults if faults is not None else NO_FAULTS
        self.stdout: dict[int, list[str]] = defaultdict(list)
        self._files: dict[int, object] = {}
        self._next_handle = 3  # 0/1/2 reserved like stdio
        self._handlers = {
            "printf": self._printf,
            "puts": self._puts,
            "putchar": self._putchar,
            "fopen": self._fopen,
            "fclose": self._fclose,
            "fputs": self._fputs,
            "host_time_ns": self._host_time_ns,
            "abort": self._abort,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def register(self, service: str, handler) -> None:
        """Install a custom handler: ``handler(args, lane) -> value``."""
        self._handlers[service] = handler

    @property
    def call_counts(self) -> dict[str, int]:
        """Per-service call totals — a read view over the metrics
        registry's ``rpc.calls`` counters (the former ad-hoc dict)."""
        return {
            dict(c.labels)["service"]: int(c.value)
            for c in self.metrics.series("rpc.calls")
        }

    def handle(self, service: str, args: list, lane: RpcLane):
        fn = self._handlers.get(service)
        if fn is None:
            raise RPCError(f"no host handler for RPC service {service!r}")
        self.metrics.counter("rpc.calls", service=service).inc()
        if self.tracer.enabled:
            self.tracer.instant(
                f"rpc {service}",
                track=RPC_TRACK,
                cat="rpc",
                args={"instance": lane.instance, "team": lane.team},
            )
        result = fn(args, lane)
        if self.faults.enabled:
            fault = self.faults.fire(
                "rpc.reply",
                service=service,
                instance=lane.instance,
                team=lane.team,
            )
            if fault is not None:
                result = self._injected_reply(
                    fault, service, fn, args, lane, result
                )
        return result

    def _injected_reply(self, fault, service: str, fn, args, lane: RpcLane, result):
        """Apply one fired ``rpc.reply`` fault to a completed call."""
        ctx = dict(service=service, instance=lane.instance, team=lane.team)
        if fault.kind == "rpc_drop":
            # The reply is lost; the whole launch fails transiently (the
            # scheduler's retry machinery recovers it).
            raise InjectedRPCFailure(fault, **ctx)
        if fault.kind == "rpc_timeout":
            # The reply never arrives for this caller only: surfaces as a
            # per-instance fault, not a launch failure.
            raise InstanceFault(fault, **ctx)
        if fault.kind == "rpc_dup":
            # The request is delivered twice; side effects repeat.
            return fn(args, lane)
        if fault.kind == "transport_corrupt" and isinstance(result, int):
            return result ^ (0xFF << (8 * fault.byte))
        return result

    def instance_stdout(self, instance: int) -> str:
        return "".join(self.stdout.get(instance, []))

    def all_stdout(self) -> str:
        return "".join(
            "".join(chunks) for _, chunks in sorted(self.stdout.items())
        )

    def close(self) -> None:
        for fh in self._files.values():
            try:
                fh.close()
            except Exception:
                pass
        self._files.clear()

    # ------------------------------------------------------------------
    # printf formatting
    # ------------------------------------------------------------------
    def format_printf(self, fmt: str, args: list) -> str:
        """C-style formatting against raw device argument values."""
        out: list[str] = []
        pos = 0
        argi = 0
        for match in _FMT_RE.finditer(fmt):
            out.append(fmt[pos : match.start()])
            pos = match.end()
            spec = match.group()
            conv = spec[-1]
            if conv == "%":
                out.append("%")
                continue
            if argi >= len(args):
                raise RPCError(f"printf format {fmt!r} consumes more than {len(args)} args")
            value = args[argi]
            argi += 1
            pyspec = re.sub(r"(?:hh|h|ll|l|z)(?=[diuxX])", "", spec)
            if conv in "di":
                out.append(pyspec.replace("i", "d") % int(value))
            elif conv == "u":
                out.append(pyspec.replace("u", "d") % (int(value) & (1 << 64) - 1))
            elif conv in "xX":
                out.append(pyspec % (int(value) & (1 << 64) - 1))
            elif conv in "feEgG":
                out.append(pyspec % float(value))
            elif conv == "c":
                out.append(chr(int(value) & 0xFF))
            elif conv == "s":
                out.append(self.memory.read_cstring(int(value)))
            elif conv == "p":
                out.append(f"0x{int(value):x}")
        out.append(fmt[pos:])
        return "".join(out)

    # ------------------------------------------------------------------
    # standard handlers
    # ------------------------------------------------------------------
    def _printf(self, args: list, lane: RpcLane) -> int:
        if not args:
            raise RPCError("printf needs a format string")
        fmt = self.memory.read_cstring(int(args[0]))
        text = self.format_printf(fmt, args[1:])
        self.stdout[lane.instance].append(text)
        return len(text)

    def _puts(self, args: list, lane: RpcLane) -> int:
        text = self.memory.read_cstring(int(args[0])) + "\n"
        self.stdout[lane.instance].append(text)
        return len(text)

    def _putchar(self, args: list, lane: RpcLane) -> int:
        ch = int(args[0]) & 0xFF
        self.stdout[lane.instance].append(chr(ch))
        return ch

    def _fopen(self, args: list, lane: RpcLane) -> int:
        path = self.memory.read_cstring(int(args[0]))
        mode = self.memory.read_cstring(int(args[1]))
        try:
            fh = open(path, mode)  # noqa: SIM115 - handle tracked in registry
        except OSError:
            return 0
        handle = self._next_handle
        self._next_handle += 1
        self._files[handle] = fh
        return handle

    def _fclose(self, args: list, lane: RpcLane) -> int:
        fh = self._files.pop(int(args[0]), None)
        if fh is None:
            return -1
        fh.close()
        return 0

    def _fputs(self, args: list, lane: RpcLane) -> int:
        fh = self._files.get(int(args[1]))
        if fh is None:
            return -1
        text = self.memory.read_cstring(int(args[0]))
        fh.write(text)
        return len(text)

    def _host_time_ns(self, args: list, lane: RpcLane) -> int:
        return time.monotonic_ns()

    def _abort(self, args: list, lane: RpcLane):
        raise DeviceTrap("abort() called", team=lane.team, thread=lane.lane)

    # ------------------------------------------------------------------
    # ring transport (service thread)
    # ------------------------------------------------------------------
    def serve_ring(
        self,
        ring: HostRing,
        service_names: dict[int, str],
        *,
        stop: threading.Event,
        float_args: dict[str, tuple[int, ...]] | None = None,
        poll_interval: float = 0.0005,
    ) -> threading.Thread:
        """Start a daemon thread draining ``ring`` until ``stop`` is set.

        ``service_names`` maps interned service ids to names;
        ``float_args`` optionally lists which argument positions of a
        service are f64 (raw slot values are bit-cast back).
        """
        float_args = float_args or {}

        def decode(record: RpcRecord) -> object:
            name = service_names.get(record.service_id)
            if name is None:
                raise RPCError(f"unknown RPC service id {record.service_id}")
            fpos = float_args.get(name, ())
            args = [
                decode_float_arg(a) if i in fpos else a
                for i, a in enumerate(record.args_raw)
            ]
            lane = RpcLane(team=-1, instance=-1, lane=-1)  # ring carries no lane
            return self.handle(name, args, lane)

        def traced_drain() -> int:
            n = ring.drain(decode)
            if n:
                self.metrics.counter("rpc.ring.drained").inc(n)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "ring drain",
                        track=RPC_TRACK,
                        cat="rpc",
                        args={"records": n},
                    )
            return n

        def loop() -> None:
            with self.tracer.span("serve_ring", track=RPC_TRACK, cat="rpc"):
                while not stop.is_set():
                    if traced_drain() == 0:
                        time.sleep(poll_interval)
                traced_drain()  # final sweep

        thread = threading.Thread(target=loop, name="repro-rpc", daemon=True)
        thread.start()
        return thread
