"""Compile-once executable cache + parallel in-process compilation.

The ensemble frontier of the paper amortizes *execution* over many
instances; this package amortizes *compilation* over many submissions.
See docs/compilecache.md for the key scheme, the memory/disk tiers,
versioned invalidation, and the CLI flags.
"""

from repro.compilecache.build import (
    DIGEST_META,
    EXECUTABLE_META,
    build_executable,
    is_executable,
    source_fingerprint,
)
from repro.compilecache.cache import (
    CacheError,
    CacheKey,
    CachedExecutable,
    ExecutableCache,
)
from repro.compilecache.parallel import CompileRequest, compile_many

__all__ = [
    "CacheError",
    "CacheKey",
    "CachedExecutable",
    "CompileRequest",
    "DIGEST_META",
    "EXECUTABLE_META",
    "ExecutableCache",
    "build_executable",
    "compile_many",
    "is_executable",
    "source_fingerprint",
]
