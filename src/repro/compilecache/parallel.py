"""``compile_many``: the parallel in-process compilation frontend.

The GP precedent (PAPERS.md) compiles thousands of program variants
in-process per generation; the bottleneck is redundant work, not raw
parallelism.  ``compile_many`` fans a batch of compile requests over a
thread pool **through one shared** :class:`~repro.compilecache.cache.
ExecutableCache`, so duplicate keys inside the batch collapse onto a
single build (the in-flight future dedup) and keys seen in any earlier
batch are pure lookups.

Determinism contract, held by the property suite: the returned entries
are in request order, and the set of built executables depends only on
the *set of keys* — never on worker count or submission order.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.compilecache.cache import CachedExecutable, ExecutableCache


def default_workers() -> int:
    """Pool width when the caller does not choose one."""
    return min(8, max(2, (os.cpu_count() or 2)))


@dataclass
class CompileRequest:
    """One unit of a ``compile_many`` batch.

    ``program`` follows :meth:`ExecutableCache.get_or_build`: a Program,
    a pre-compilation Module, or a lazy zero-arg builder paired with an
    explicit ``source_hash`` (the GP harness keys by genome, so cache
    hits never touch the frontend at all).
    """

    program: Any
    team_local_globals: bool = False
    shared_mem_budget: int | None = None
    optimize: bool = True
    opt_level: int | None = None
    backend: str = "*"
    source_hash: str | None = None
    label: str | None = None
    extra: dict = field(default_factory=dict)


def compile_many(
    requests,
    *,
    cache: ExecutableCache | None = None,
    max_workers: int | None = None,
    tracer=None,
    metrics=None,
    on_error: str = "raise",
) -> list[CachedExecutable | None]:
    """Compile every request concurrently; results in request order.

    ``cache=None`` uses a private in-memory cache scoped to this call
    (still deduplicating within the batch).  ``on_error="raise"``
    re-raises the first failure after the pool drains; ``"none"`` maps a
    failed request to ``None`` instead.
    """
    reqs = [
        r if isinstance(r, CompileRequest) else CompileRequest(r)
        for r in requests
    ]
    if cache is None:
        cache = ExecutableCache(metrics=metrics)
    if max_workers is None:
        max_workers = default_workers()
    max_workers = max(1, int(max_workers))
    if metrics is not None:
        metrics.counter("cache.compile_many.batches").inc()
        metrics.counter("cache.compile_many.requests").inc(len(reqs))

    def one(req: CompileRequest) -> CachedExecutable:
        return cache.get_or_build(
            req.program,
            team_local_globals=req.team_local_globals,
            shared_mem_budget=req.shared_mem_budget,
            optimize=req.optimize,
            opt_level=req.opt_level,
            backend=req.backend,
            source_hash=req.source_hash,
            tracer=tracer,
            metrics=metrics,
        )

    results: list[CachedExecutable | None] = [None] * len(reqs)
    errors: list[tuple[int, BaseException]] = []
    if max_workers == 1:
        for i, req in enumerate(reqs):
            try:
                results[i] = one(req)
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append((i, exc))
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(one, req) for req in reqs]
            for i, fut in enumerate(futures):
                try:
                    results[i] = fut.result()
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append((i, exc))
    if errors and on_error == "raise":
        errors.sort(key=lambda pair: pair[0])
        raise errors[0][1]
    return results


__all__ = ["CompileRequest", "compile_many", "default_workers"]
