"""The one true compile chain, factored out of the loader.

Every path that turns a program module into a runnable device image —
:class:`~repro.host.loader.Loader`, the compile cache, ``compile_many``,
the server's activation path — funnels through :func:`build_executable`,
so "cached" and "cold" executables are the product of the *same* code by
construction, not by convention.

A finished module is stamped ``metadata["executable"] = True``; loaders
recognize the stamp and skip straight to image loading, which is what
lets one finalized module be shared across loaders, devices and tenants
(loading is read-only: per-image state lives in
:class:`~repro.gpu.device.DeviceImage`, and the compiled backend caches
lowered kernels per image, not per module).
"""

from __future__ import annotations

import hashlib

from repro.analysis.safety import stamp_certificates
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.passes.globals_to_shared import globals_to_shared_pass
from repro.passes.pipeline import compile_for_device, finalize_executable
from repro.runtime.kernel import build_ensemble_kernel, build_single_kernel

#: ``module.metadata`` key marking a fully finalized executable module.
EXECUTABLE_META = "executable"

#: ``module.metadata`` key carrying the cache digest the executable was
#: stored under (set by the cache, absent on uncached builds).
DIGEST_META = "cache_digest"


def is_executable(module) -> bool:
    """True when ``module`` is a finalized, loader-ready executable."""
    return isinstance(module, Module) and bool(
        module.metadata.get(EXECUTABLE_META)
    )


def source_fingerprint(module: Module) -> str:
    """Content hash of a *pre-compilation* program module.

    The printed IR is deterministic but omits global initializer bytes,
    so those are hashed alongside; two modules with identical text and
    identical initial data are the same source as far as the compile
    cache is concerned.
    """
    h = hashlib.sha256()
    h.update(print_module(module).encode("utf-8"))
    for name in sorted(module.globals):
        h.update(b"\x00g\x00")
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(module.globals[name].initial_bytes())
    return "src:" + h.hexdigest()[:32]


def build_executable(
    module: Module,
    *,
    team_local_globals: bool = False,
    shared_mem_budget: int | None = None,
    optimize: bool = True,
    opt_level: int | None = None,
    tracer=None,
    metrics=None,
) -> Module:
    """Run the full device compile chain on a program module, in place.

    Mirrors exactly what :class:`~repro.host.loader.Loader` historically
    did inline: front half (:func:`compile_for_device`), kernel wrapper
    construction, the optional globals-to-shared promotion, then
    :func:`finalize_executable`.  The result is stamped
    ``metadata["executable"] = True``.
    """
    obs_kw = dict(tracer=tracer, metrics=metrics)
    module = compile_for_device(module, **obs_kw)
    build_single_kernel(module)
    build_ensemble_kernel(module)
    if team_local_globals:
        globals_to_shared_pass(module, shared_mem_budget=shared_mem_budget)
    module = finalize_executable(
        module, optimize=optimize, opt_level=opt_level, **obs_kw
    )
    # Prove memory/trap safety once per executable; the certificates ride
    # in module metadata so every backend (and the compilecache) can elide
    # dynamic guards for PROVEN sites without re-running the analysis.
    stamp_certificates(module, metrics=metrics)
    module.metadata[EXECUTABLE_META] = True
    return module


__all__ = [
    "EXECUTABLE_META",
    "DIGEST_META",
    "build_executable",
    "is_executable",
    "source_fingerprint",
]
