"""``python -m repro.compilecache.check``: the CI cache gate.

One self-contained pass/fail check of the executable cache, run by
``make cache-check``:

1. **cold** — a fresh cache over an (empty or given) directory compiles
   the app once and runs it on a fresh device;
2. **warm** — a *new* cache instance over the same directory (simulating
   a process restart) looks the same key up twice: the first lookup must
   come from the disk tier, the second from memory, so the warm cache's
   hit rate must reach ``--min-hit-rate``;
3. **parity** — the warm executable's observables (exit code, stdout,
   interpreter steps) must be bitwise identical to the cold run's;
4. **speed** — the warm lookup must be faster than the cold compile.

Exits 0 when every gate holds, 1 otherwise, printing one JSON report
either way.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.apps import get_app
from repro.compilecache.cache import ExecutableCache
from repro.config import DeviceConfig
from repro.gpu.device import GPUDevice
from repro.host.loader import Loader

#: Warm-cache hit-rate floor (2 lookups, both must hit: disk then memory).
DEFAULT_MIN_HIT_RATE = 0.99

#: Small workload: the gate checks caching, not device throughput.
CHECK_DEVICE = DeviceConfig(global_mem_bytes=64 * 1024 * 1024)


def _observe(module, heap_bytes: int, thread_limit: int, args: list[str]):
    """Run ``module`` on a fresh device; the bitwise-comparable triple."""
    loader = Loader(module, GPUDevice(CHECK_DEVICE), heap_bytes=heap_bytes)
    try:
        res = loader.run(
            args, thread_limit=thread_limit, collect_timing=False
        )
    finally:
        loader.close()
    return (res.exit_code, res.stdout, res.launch.interpreter_steps)


def run_check(
    cache_dir: str,
    *,
    app_name: str = "stencil",
    opt_level: int = 1,
    min_hit_rate: float = DEFAULT_MIN_HIT_RATE,
    thread_limit: int = 8,
) -> dict:
    """Execute the four gates; returns the report dict (``report["ok"]``
    is the overall verdict)."""
    app = get_app(app_name)
    args = app.default_args(points=64, iters=1)
    heap = app.heap_hint_bytes

    cold_cache = ExecutableCache(cache_dir)
    t0 = time.perf_counter()
    cold_entry = cold_cache.get_or_build(
        app.build_program(), opt_level=opt_level
    )
    cold_wall = time.perf_counter() - t0
    cold_obs = _observe(cold_entry.module, heap, thread_limit, args)
    disk_stored = cold_cache.stats()["stores_disk"] == 1

    # A fresh cache over the same directory: restart simulation.  Both
    # lookups must hit (disk, then memory) without a single rebuild.
    warm_cache = ExecutableCache(cache_dir)
    t0 = time.perf_counter()
    warm_entry = warm_cache.get_or_build(
        app.build_program(), opt_level=opt_level
    )
    warm_wall = time.perf_counter() - t0
    second = warm_cache.get_or_build(app.build_program(), opt_level=opt_level)
    stats = warm_cache.stats()
    warm_obs = _observe(warm_entry.module, heap, thread_limit, args)

    hit_rate = stats["hit_rate"] or 0.0
    report = {
        "app": app_name,
        "opt_level": opt_level,
        "cache_dir": cache_dir,
        "cold_compile_s": round(cold_wall, 6),
        "warm_lookup_s": round(warm_wall, 6),
        "warm_tiers": [warm_entry.tier, second.tier],
        "warm_hit_rate": hit_rate,
        "warm_misses": stats["misses"],
        "digest_match": warm_entry.digest == cold_entry.digest,
        "bitwise_parity": warm_obs == cold_obs,
        "gates": {
            "disk_stored": disk_stored,
            "hit_rate": hit_rate >= min_hit_rate,
            "no_rebuild": stats["misses"] == 0,
            "parity": warm_obs == cold_obs,
            "warm_faster": warm_wall < cold_wall,
        },
    }
    report["ok"] = all(report["gates"].values())
    return report


def main(argv=None) -> int:
    """CLI entry point of ``make cache-check``; exits 0 iff every gate
    in :func:`run_check` holds."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.compilecache.check",
        description="Gate the executable cache: cold build, warm restart, "
        "hit rate, and bitwise parity.",
    )
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--app", default="stencil")
    parser.add_argument("--opt-level", type=int, choices=(0, 1, 2), default=1)
    parser.add_argument(
        "--min-hit-rate", type=float, default=DEFAULT_MIN_HIT_RATE
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        report = run_check(
            args.cache_dir,
            app_name=args.app,
            opt_level=args.opt_level,
            min_hit_rate=args.min_hit_rate,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-cache-check-") as tmp:
            report = run_check(
                tmp,
                app_name=args.app,
                opt_level=args.opt_level,
                min_hit_rate=args.min_hit_rate,
            )
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["ok"]:
        failed = [k for k, ok in report["gates"].items() if not ok]
        print(f"cache-check FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
