"""Content-addressed executable cache with memory and disk tiers.

The key is everything that determines the finalized executable:

* **source hash** — :func:`~repro.compilecache.build.source_fingerprint`
  of the pre-compilation module (printed IR + global initializer bytes),
  or a caller-supplied identity (the GP harness keys by genome);
* **pipeline config** — the loader options that change codegen
  (``team_local_globals``, ``shared_mem_budget``), canonicalized through
  :func:`repro.wire.canonical_json`;
* **opt level** and **backend**;
* the **pass-pipeline fingerprint**
  (:func:`repro.passes.pipeline.pipeline_fingerprint`) — versioned
  invalidation: bump :data:`~repro.passes.pipeline.PIPELINE_VERSION` or
  change the pass list and every old entry silently misses.

``backend`` defaults to ``"*"`` because a finalized module is
backend-portable (the compiled backend lowers lazily per device image);
callers that bake backend-specific artifacts may key per backend.

Lookups hit the in-memory LRU first, then the disk tier (pickled entry
guarded by a magic header and a sha256 checksum — a corrupted or
truncated file is counted, unlinked and recompiled, never served).
Concurrent builds of the same key are deduplicated through an in-flight
future: one thread compiles, the rest wait.  All traffic is counted both
internally (:meth:`ExecutableCache.stats`) and — when a metrics registry
is attached — as ``cache.*`` counters in :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field, replace

from repro import wire
from repro.errors import ReproError
from repro.frontend.dsl import Program
from repro.ir.module import Module
from repro.passes.pipeline import pipeline_fingerprint

from repro.compilecache.build import (
    DIGEST_META,
    build_executable,
    is_executable,
    source_fingerprint,
)

#: Magic first line of a disk-tier entry; bump with the entry format.
DISK_MAGIC = b"rexe1\n"

#: Default capacity of the in-memory LRU tier.
DEFAULT_MEMORY_ENTRIES = 512


class CacheError(ReproError):
    """A compile-cache request that cannot be satisfied."""


@dataclass(frozen=True)
class CacheKey:
    """Everything that determines a finalized executable, hashed into a
    stable content address via :func:`repro.wire.spec_hash`."""

    source_hash: str
    pipeline: str  #: canonical_json of the codegen-relevant loader opts
    opt_level: int
    backend: str
    fingerprint: str  #: pass-pipeline fingerprint (versioned invalidation)

    def to_wire(self) -> dict:
        return {
            "kind": "CacheKey",
            "source_hash": self.source_hash,
            "pipeline": self.pipeline,
            "opt_level": self.opt_level,
            "backend": self.backend,
            "fingerprint": self.fingerprint,
        }

    def digest(self) -> str:
        return wire.spec_hash(self.to_wire())


class _AnalysisBox:
    """Shared, lazily filled analysis state of one cache entry.

    Footprint + interprocedural facts cost more than the compile itself
    for small programs, and many workloads (the GP campaign, direct
    loaders with explicit heaps) never consult them — so they are
    derived on first demand, once, and memoized for every holder of the
    entry (all tier-tagged copies share one box)."""

    __slots__ = ("footprint", "facts", "safety", "done", "lock")

    def __init__(self, footprint=None, facts=None, safety=None, done=False):
        self.footprint = footprint
        self.facts = facts if facts is not None else {}
        #: per-kernel :class:`~repro.analysis.safety.SafetyCertificate`
        #: map, filled independently of footprint/facts (``None`` until
        #: first demand; an invalid on-disk copy loads back as ``None``).
        self.safety = safety
        self.done = done
        self.lock = threading.Lock()


@dataclass
class CachedExecutable:
    """One cache entry: the finalized module plus everything expensive
    that can be learned from it (footprint / interprocedural facts,
    computed lazily and shared — see :class:`_AnalysisBox`)."""

    key: CacheKey
    digest: str
    module: Module
    box: _AnalysisBox = field(repr=False, default_factory=_AnalysisBox)
    tier: str = "build"  #: where *this* lookup was satisfied

    def _ensure_analysis(self) -> _AnalysisBox:
        box = self.box
        if not box.done:
            with box.lock:
                if not box.done:
                    box.footprint, box.facts = _analyze(self.module)
                    box.done = True
        return box

    @property
    def footprint(self):
        """The module's :class:`~repro.analysis.footprint.
        StaticFootprint` (None when unbounded/underivable); computed on
        first access, then free — this is what pre-seeds the scheduler's
        static batch packing without recompiling."""
        return self._ensure_analysis().footprint

    @property
    def facts(self) -> dict:
        """Interprocedural facts (callgraph, value ranges) of the
        finalized module, lazily derived alongside the footprint."""
        return self._ensure_analysis().facts

    @property
    def safety(self) -> dict:
        """Per-kernel :class:`~repro.analysis.safety.SafetyCertificate`
        map of the finalized module.  Normally this is just the
        certificates stamped at build time; a stale or corrupted copy
        (analyzer version bump, tampered disk entry) is rebuilt here and
        never served as-is."""
        box = self.box
        if box.safety is None:
            with box.lock:
                if box.safety is None:
                    from repro.analysis.safety import certificates_for

                    box.safety = certificates_for(self.module)
        return box.safety


def _resolve_source(program):
    """Normalize a cacheable program into ``(source_hash, builder)``.

    ``program`` may be a :class:`Program`, a pre-compilation
    :class:`Module`, or a zero-argument callable returning either (the
    lazy form — only invoked on a miss, which is what lets a warm cache
    skip the frontend entirely).  Program hashes are memoized on the
    object, so repeated lookups of the same Program also skip the
    frontend after the first.
    """
    if isinstance(program, Program):
        source_hash = getattr(program, "_compilecache_source_hash", None)
        if source_hash is None:
            module = program.compile()
            source_hash = source_fingerprint(module)
            program._compilecache_source_hash = source_hash
            return source_hash, lambda: module
        return source_hash, program.compile
    if isinstance(program, Module):
        if is_executable(program):
            raise CacheError(
                "get_or_build takes a pre-compilation program; "
                f"module {program.name!r} is already a finalized executable"
            )
        return source_fingerprint(program), lambda: program
    raise CacheError(
        f"cannot cache object of type {type(program).__name__}; expected "
        "a Program, a Module, or a callable with an explicit source_hash"
    )


class ExecutableCache:
    """Two-tier compile-once cache; safe for concurrent use."""

    def __init__(
        self,
        cache_dir: str | None = None,
        *,
        max_memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        metrics=None,
    ):
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.max_memory_entries = max(1, int(max_memory_entries))
        self._metrics = metrics
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, CachedExecutable] = OrderedDict()
        self._inflight: dict[str, Future] = {}
        self._counts = {
            "hits_memory": 0,
            "hits_disk": 0,
            "misses": 0,
            "dedup": 0,
            "evictions": 0,
            "corrupt": 0,
            "stores_memory": 0,
            "stores_disk": 0,
        }
        if self.cache_dir:
            os.makedirs(self.cache_dir, exist_ok=True)

    # -- metrics ------------------------------------------------------------
    def attach_metrics(self, metrics) -> None:
        """Mirror cache traffic into a :mod:`repro.obs` registry (the
        internal tallies in :meth:`stats` count regardless)."""
        self._metrics = metrics

    def _count(self, name: str, counter: str, **tags) -> None:
        with self._lock:
            self._counts[name] += 1
        if self._metrics is not None:
            self._metrics.counter(counter, **tags).inc()

    # -- key scheme ---------------------------------------------------------
    def key_for(
        self,
        source_hash: str,
        *,
        team_local_globals: bool = False,
        shared_mem_budget: int | None = None,
        optimize: bool = True,
        opt_level: int | None = None,
        backend: str = "*",
    ) -> CacheKey:
        """Build the full cache key for one compile request."""
        resolved = opt_level if opt_level is not None else (1 if optimize else 0)
        pipeline = wire.canonical_json(
            {
                "team_local_globals": bool(team_local_globals),
                "shared_mem_budget": shared_mem_budget,
            }
        )
        return CacheKey(
            source_hash=source_hash,
            pipeline=pipeline,
            opt_level=resolved,
            backend=backend,
            fingerprint=pipeline_fingerprint(resolved),
        )

    # -- lookup / build -----------------------------------------------------
    def get_or_build(
        self,
        program,
        *,
        team_local_globals: bool = False,
        shared_mem_budget: int | None = None,
        optimize: bool = True,
        opt_level: int | None = None,
        backend: str = "*",
        source_hash: str | None = None,
        tracer=None,
        metrics=None,
    ) -> CachedExecutable:
        """Return the finalized executable for ``program``, compiling at
        most once per key across all threads of this process (and at
        most once per disk tier across processes).

        ``source_hash`` overrides content hashing with a caller-supplied
        identity; it is *required* when ``program`` is a lazy callable.
        ``tracer``/``metrics`` flow into the compile chain on a miss.
        """
        if callable(program) and not isinstance(program, (Program, Module)):
            if source_hash is None:
                raise CacheError(
                    "a callable program requires an explicit source_hash "
                    "(the cache cannot hash what it has not built)"
                )
            builder = program
        elif source_hash is not None:
            _, builder = _resolve_source_for_override(program)
        else:
            source_hash, builder = _resolve_source(program)

        key = self.key_for(
            source_hash,
            team_local_globals=team_local_globals,
            shared_mem_budget=shared_mem_budget,
            optimize=optimize,
            opt_level=opt_level,
            backend=backend,
        )
        digest = key.digest()

        with self._lock:
            entry = self._memory.get(digest)
            if entry is not None:
                self._memory.move_to_end(digest)
                self._count("hits_memory", "cache.hits", tier="memory")
                return replace(entry, tier="memory")
            fut = self._inflight.get(digest)
            owner = fut is None
            if owner:
                fut = Future()
                self._inflight[digest] = fut

        if not owner:
            self._count("dedup", "cache.dedup")
            return replace(fut.result(), tier="dedup")

        try:
            entry = self._load_disk(digest, key)
            if entry is None:
                entry = self._build(key, digest, builder, tracer, metrics)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(digest, None)
            fut.set_exception(exc)
            raise
        with self._lock:
            self._inflight.pop(digest, None)
        fut.set_result(entry)
        return entry

    def peek(self, digest: str) -> CachedExecutable | None:
        """Memory-tier lookup by digest that counts nothing — used by
        loaders given an already-finalized module to recover the stored
        footprint without inflating hit metrics."""
        with self._lock:
            entry = self._memory.get(digest)
            return None if entry is None else replace(entry, tier="memory")

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier, if any, stays)."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> dict:
        """Counter snapshot plus tier occupancy, for the serve metrics
        op and the check CLI."""
        with self._lock:
            counts = dict(self._counts)
            counts["entries_memory"] = len(self._memory)
        hits = counts["hits_memory"] + counts["hits_disk"] + counts["dedup"]
        lookups = hits + counts["misses"]
        counts["hit_rate"] = (hits / lookups) if lookups else None
        counts["cache_dir"] = self.cache_dir
        return counts

    # -- build path ---------------------------------------------------------
    def _build(self, key, digest, builder, tracer, metrics) -> CachedExecutable:
        self._count("misses", "cache.misses")
        module = builder()
        if isinstance(module, Program):
            module = module.compile()
        if not isinstance(module, Module):
            raise CacheError(
                f"program builder returned {type(module).__name__}, "
                "expected a Program or Module"
            )
        config = _pipeline_config(key)
        module = build_executable(
            module,
            team_local_globals=config["team_local_globals"],
            shared_mem_budget=config["shared_mem_budget"],
            opt_level=key.opt_level,
            tracer=tracer,
            metrics=metrics,
        )
        module.metadata[DIGEST_META] = digest
        entry = CachedExecutable(
            key=key, digest=digest, module=module, tier="build"
        )
        self._store_memory(digest, entry)
        self._store_disk(digest, entry)
        return entry

    # -- memory tier --------------------------------------------------------
    def _store_memory(self, digest, entry) -> None:
        with self._lock:
            self._memory[digest] = entry
            self._memory.move_to_end(digest)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)
                self._count("evictions", "cache.evictions", tier="memory")
        self._count("stores_memory", "cache.stores", tier="memory")

    # -- disk tier ----------------------------------------------------------
    def _path(self, digest: str) -> str:
        return os.path.join(self.cache_dir, digest.split(":", 1)[-1] + ".exe")

    def _store_disk(self, digest, entry) -> None:
        if not self.cache_dir:
            return
        try:
            box = entry.box  # persist whatever analysis exists, lazily
            payload = pickle.dumps(
                {
                    "key": entry.key,
                    "digest": digest,
                    "module": entry.module,
                    "analyzed": box.done,
                    "footprint": box.footprint,
                    "facts": box.facts,
                    "safety": box.safety,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            blob = (
                DISK_MAGIC
                + hashlib.sha256(payload).hexdigest().encode("ascii")
                + b"\n"
                + payload
            )
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".rexe-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, self._path(digest))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, AttributeError, TypeError):
            return  # disk tier is best-effort; the memory entry stands
        self._count("stores_disk", "cache.stores", tier="disk")

    def _load_disk(self, digest, key) -> CachedExecutable | None:
        if not self.cache_dir:
            return None
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        try:
            if not blob.startswith(DISK_MAGIC):
                raise ValueError("bad magic")
            rest = blob[len(DISK_MAGIC):]
            checksum, sep, payload = rest.partition(b"\n")
            if not sep:
                raise ValueError("truncated header")
            if hashlib.sha256(payload).hexdigest().encode("ascii") != checksum:
                raise ValueError("checksum mismatch")
            data = pickle.loads(payload)
            if data.get("digest") != digest:
                raise ValueError("entry digest mismatch")
            module = data["module"]
            if not is_executable(module):
                raise ValueError("entry module is not a finalized executable")
        except BaseException:
            # Corrupted, truncated, or unreadable: evict and recompile.
            # Served stale bytes are the one unforgivable cache failure.
            self._count("corrupt", "cache.corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        entry = CachedExecutable(
            key=key,
            digest=digest,
            module=module,
            box=_AnalysisBox(
                footprint=data.get("footprint"),
                facts=data.get("facts"),
                safety=_valid_safety(data.get("safety")),
                done=bool(data.get("analyzed")),
            ),
            tier="disk",
        )
        self._store_memory(digest, entry)
        self._count("hits_disk", "cache.hits", tier="disk")
        return entry


def _valid_safety(certs):
    """Admit a deserialized certificate map only when it is exactly what
    the current analyzer would produce; anything else loads as ``None``
    and is rebuilt on first demand (never served)."""
    from repro.analysis.safety import ANALYZER_VERSION, SafetyCertificate

    if not isinstance(certs, dict) or not certs:
        return None
    if all(
        isinstance(c, SafetyCertificate)
        and c.analyzer_version == ANALYZER_VERSION
        for c in certs.values()
    ):
        return certs
    return None


def _pipeline_config(key: CacheKey) -> dict:
    import json

    return json.loads(key.pipeline)


def _resolve_source_for_override(program):
    """A Program/Module paired with an explicit source_hash: reuse the
    normal builder but trust the caller's identity."""
    if isinstance(program, Program):
        return None, program.compile
    if isinstance(program, Module):
        if is_executable(program):
            raise CacheError(
                "get_or_build takes a pre-compilation program; "
                f"module {program.name!r} is already a finalized executable"
            )
        return None, lambda: program
    raise CacheError(
        f"cannot cache object of type {type(program).__name__}"
    )


def _analyze(module: Module):
    """Compute the footprint + interprocedural facts stored alongside an
    executable, so schedulers can pack batches without re-deriving them."""
    footprint, facts = None, {}
    try:
        from repro.analysis.footprint import compute_footprint
        from repro.analysis.manager import AnalysisManager

        am = AnalysisManager(module)
        callgraph = am.get("callgraph")
        ranges = am.get("ranges")
        facts = {"callgraph": callgraph, "ranges": ranges}
        footprint = compute_footprint(
            module, callgraph=callgraph, ranges=ranges
        )
    except ReproError:
        pass
    return footprint, facts


__all__ = [
    "CacheError",
    "CacheKey",
    "CachedExecutable",
    "ExecutableCache",
    "DISK_MAGIC",
    "DEFAULT_MEMORY_ENTRIES",
]
