"""Module linker: merges device modules into one linkage unit."""

from __future__ import annotations

from repro.errors import LinkError
from repro.ir.module import Module


def link_modules(dst: Module, *sources: Module) -> Module:
    """Link ``sources`` into ``dst`` (mutated and returned).

    Function and global symbols must be unique across the inputs; host-extern
    declarations merge set-wise.  A symbol that ``dst`` already defines and a
    source also defines is a duplicate-symbol link error, mirroring a normal
    linker.  Globals keep identity (no copying), so callers should not reuse
    a source module after linking it somewhere.
    """
    for src in sources:
        for name, fn in src.functions.items():
            if name in dst.functions:
                raise LinkError(f"duplicate symbol {name!r} while linking {src.name!r}")
            dst.functions[name] = fn
        for name, g in src.globals.items():
            if name in dst.globals:
                raise LinkError(f"duplicate global {name!r} while linking {src.name!r}")
            dst.globals[name] = g
        dst.extern_host |= src.extern_host
    return dst
