"""Dead code elimination.

Removes side-effect-free instructions whose destination register is never
read anywhere in the function.  Because the IR is non-SSA (registers are
reassigned), "never read anywhere" is the only sound criterion without a
liveness analysis — still enough to sweep the temporaries that inlining and
constant folding leave behind.
"""

from __future__ import annotations

from repro.ir.instructions import Opcode
from repro.ir.module import Function, Module
from repro.ir.types import Reg

#: Pure value-producing opcodes that may be dropped when their result is dead.
_REMOVABLE = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.ASHR,
        Opcode.IMIN,
        Opcode.IMAX,
        Opcode.INEG,
        Opcode.BNOT,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FMIN,
        Opcode.FMAX,
        Opcode.FNEG,
        Opcode.SQRT,
        Opcode.EXP,
        Opcode.LOG,
        Opcode.SIN,
        Opcode.COS,
        Opcode.TAN,
        Opcode.FABS,
        Opcode.FLOOR,
        Opcode.CEIL,
        Opcode.FPOW,
        Opcode.ICMP_EQ,
        Opcode.ICMP_NE,
        Opcode.ICMP_SLT,
        Opcode.ICMP_SLE,
        Opcode.ICMP_SGT,
        Opcode.ICMP_SGE,
        Opcode.FCMP_EQ,
        Opcode.FCMP_NE,
        Opcode.FCMP_LT,
        Opcode.FCMP_LE,
        Opcode.FCMP_GT,
        Opcode.FCMP_GE,
        Opcode.SITOFP,
        Opcode.FPTOSI,
        Opcode.MOVI,
        Opcode.MOVF,
        Opcode.MOV,
        Opcode.SELECT,
        Opcode.GADDR,
        Opcode.TID,
        Opcode.NTID,
        Opcode.CTAID,
        Opcode.NCTAID,
        Opcode.LANEID,
        Opcode.INSTANCE,
        Opcode.KPARAM,
        Opcode.SHFL_DOWN,
        Opcode.SHFL_IDX,
        Opcode.LOAD,  # loads trap only on faults; dead loads may be elided
    }
)


def dce_pass(module: Module) -> None:
    """Remove side-effect-free instructions whose results are never read."""
    for fn in module.functions.values():
        _dce_function(fn)


def _dce_function(fn: Function) -> None:
    changed = True
    while changed:
        changed = False
        read: set[int] = set()
        for instr in fn.iter_instrs():
            for a in instr.args:
                if isinstance(a, Reg):
                    read.add(a.id)
        for block in fn.iter_blocks():
            kept = []
            for instr in block.instrs:
                if (
                    instr.op in _REMOVABLE
                    and instr.dest is not None
                    and instr.dest.id not in read
                ):
                    changed = True
                    continue
                kept.append(instr)
            block.instrs = kept
