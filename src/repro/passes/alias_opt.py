"""Alias-sharpened dead-store elimination.

The baseline :mod:`~repro.passes.dce` can only drop pure value
computations — a ``store`` writes memory, and without alias information
*every* store must be assumed observable (another thread, a later load,
the host via RPC).  Points-to analysis removes the assumption: a store
is dead when every object its address may reference is

* a per-thread ``salloc`` object (``MemSpace.STACK`` — invisible to
  other threads and instances by construction),
* never read anywhere in the module (no load/atomic/memcpy-source may
  alias it),
* not RPC-visible (never handed to the host), and
* not address-taken (its address is never stored into other memory, so
  no load through another pointer can reach it).

Dead scratch buffers are exactly what inlining CPU-style helper
functions leaves behind; deleting the stores lets the ordinary DCE then
delete the address arithmetic and the ``salloc`` itself.  The pass runs
inside the ``-O2`` stage of :func:`repro.passes.pipeline.finalize_executable`,
after inlining, sharing one :class:`~repro.analysis.pointsto.PointsTo`
with the other interprocedural passes.
"""

from __future__ import annotations

from repro.analysis.pointsto import (
    READ_ADDR_POS,
    MemSpace,
    PointsTo,
)
from repro.ir.instructions import Opcode
from repro.ir.module import Module

#: Opcodes whose only memory effect is a write (atomics also *read*, and
#: their fetched value may be used, so they are never deleted here).
_PURE_WRITES = frozenset({Opcode.STORE, Opcode.MEMSET})


def alias_dce_pass(module: Module, pointsto: PointsTo | None = None, metrics=None) -> None:
    """Delete stores to provably private, never-read stack objects."""
    pt = pointsto or PointsTo(module)

    read_objs: set = set()
    for fn in module.functions.values():
        for instr in fn.iter_instrs():
            if instr.op in READ_ADDR_POS:
                read_objs |= pt.addr_objects(fn.name, instr, written=False)
    escaped = pt.address_taken() | pt.rpc_visible

    def deletable(objs) -> bool:
        return bool(objs) and all(
            pt.space(o) is MemSpace.STACK and o not in read_objs and o not in escaped
            for o in objs
        )

    removed = 0
    for fn in module.functions.values():
        for block in fn.iter_blocks():
            kept = []
            for instr in block.instrs:
                if instr.op in _PURE_WRITES and deletable(
                    pt.addr_objects(fn.name, instr, written=True)
                ):
                    removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
    if metrics is not None and removed:
        metrics.counter("passes.alias_dce.removed").inc(removed)


__all__ = ["alias_dce_pass"]
