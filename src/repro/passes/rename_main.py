"""Canonicalize and rename the user's ``main`` to ``__user_main``.

The paper's user wrapper declares::

    int main(int, char *[]) asm("__user_main");

so the host loader owns the real entry point and calls ``__user_main`` on
the device (Figure 3, §2.2).  This pass performs the same renaming on the IR
module and checks the canonical ``int main(int argc, char **argv)``
signature (two integer-register parameters returning i64).
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.module import Module
from repro.ir.types import I64, ScalarType

USER_MAIN = "__user_main"


def rename_main_pass(module: Module, *, require_main: bool = True) -> None:
    """Rename ``main`` -> ``__user_main`` and validate its signature."""
    if "main" not in module.functions:
        if require_main:
            raise PassError(
                f"module {module.name!r} has no main() to canonicalize; "
                "register one with @program.main"
            )
        return
    fn = module.functions["main"]
    if len(fn.params) != 2:
        raise PassError(
            "main must have the canonical form int main(int argc, char *argv[]); "
            f"got {len(fn.params)} parameters"
        )
    for pname, pty in fn.params:
        if pty is not I64:
            raise PassError(f"main parameter {pname!r} must be integer-register typed")
    if fn.ret_ty is not ScalarType.I64:
        raise PassError("main must return int")
    module.rename_function("main", USER_MAIN)
    module.metadata["user_main"] = USER_MAIN
