"""CFG cleanup: unreachable-block elimination and jump threading."""

from __future__ import annotations

from collections import deque

from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Function, Module


def cfg_simplify_pass(module: Module) -> None:
    """Thread jumps, fold constant branches, drop unreachable blocks."""
    for fn in module.functions.values():
        _thread_jumps(fn)
        _drop_unreachable(fn)
        _fold_constant_branches(fn)
        _drop_unreachable(fn)


def _drop_unreachable(fn: Function) -> None:
    entry = fn.block_order[0]
    seen = {entry}
    queue = deque([entry])
    while queue:
        label = queue.popleft()
        for succ in fn.blocks[label].successors():
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    for label in [l for l in fn.block_order if l not in seen]:
        del fn.blocks[label]
        fn.block_order.remove(label)


def _thread_jumps(fn: Function) -> None:
    """Retarget branches that point at trivial forwarding blocks (single BR).

    Only forwarding blocks with a **single predecessor** are threaded: a
    multi-predecessor forwarding block is a control-flow *join*, and joins
    are exactly where the min-PC SIMT interpreter reconverges divergent
    lanes.  Threading a join away leaves the divergent groups permanently
    phase-shifted through subsequent loop iterations — correct but up to
    2x slower in both interpreter steps and modeled issue cycles (real
    GPUs lose reconvergence points the same way when compilers over-thread
    branches)."""
    pred_count: dict[str, int] = {lbl: 0 for lbl in fn.block_order}
    for block in fn.iter_blocks():
        for succ in block.successors():
            pred_count[succ] += 1

    def final_target(label: str, hops: int = 0) -> str:
        block = fn.blocks[label]
        if hops > len(fn.blocks):
            return label  # defensive: a cycle of empty jumps
        if (
            len(block.instrs) == 1
            and block.instrs[0].op is Opcode.BR
            and pred_count[label] <= 1
        ):
            return final_target(block.instrs[0].targets[0], hops + 1)
        return label

    for block in fn.iter_blocks():
        term = block.terminator
        if term is not None and term.targets:
            term.targets = tuple(final_target(t) for t in term.targets)


def _fold_constant_branches(fn: Function) -> None:
    """Turn ``cbr`` on a block-local constant into ``br``."""
    for block in fn.iter_blocks():
        consts: dict[int, int] = {}
        for instr in block.instrs:
            if instr.op is Opcode.MOVI:
                consts[instr.dest.id] = int(instr.imm)
            elif instr.dest is not None:
                consts.pop(instr.dest.id, None)
            if instr.op is Opcode.CBR:
                cond = instr.args[0]
                if cond.id in consts:
                    taken = instr.targets[0] if consts[cond.id] else instr.targets[1]
                    instr.op = Opcode.BR
                    instr.args = ()
                    instr.targets = (taken,)
