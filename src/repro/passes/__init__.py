"""Device pass pipeline ("custom link-time optimization" of the paper).

The direct GPU compilation toolchain of [26]/[27] augments Clang with
link-time passes that (a) treat all user code as device code, (b) rename the
user's ``main``, (c) auto-generate RPC stubs for host-only calls, and
(d) aggressively optimize the merged device image.  The passes here
implement the same contracts over our IR:

* :func:`~repro.passes.declare_target.declare_target_pass`
* :func:`~repro.passes.rename_main.rename_main_pass`
* :func:`~repro.passes.rpc_lowering.rpc_lowering_pass`
* :func:`~repro.passes.inliner.inline_all_pass` (mandatory full inlining;
  the SIMT interpreter executes call-free kernels)
* :func:`~repro.passes.constfold.constfold_pass`,
  :func:`~repro.passes.dce.dce_pass`,
  :func:`~repro.passes.cfg_simplify.cfg_simplify_pass`
* :func:`~repro.passes.globals_to_shared.globals_to_shared_pass`
  (the §3.3 isolation mitigation)
* :func:`~repro.passes.barrier_elim.redundant_barrier_elim_pass`,
  :func:`~repro.passes.alias_opt.alias_dce_pass` (the points-to-driven
  ``-O2`` stage; see ``finalize_executable(opt_level=2)``)

Use :func:`~repro.passes.pipeline.compile_for_device` on a freshly compiled
program module and :func:`~repro.passes.pipeline.finalize_executable` after
the loader has linked in its kernel.
"""

from repro.passes.pass_manager import PassManager, mutates_only, preserves_ir
from repro.passes.linker import link_modules
from repro.passes.alias_opt import alias_dce_pass
from repro.passes.barrier_elim import redundant_barrier_elim_pass
from repro.passes.declare_target import declare_target_pass
from repro.passes.rename_main import rename_main_pass, USER_MAIN
from repro.passes.rpc_lowering import rpc_lowering_pass
from repro.passes.inliner import inline_all_pass
from repro.passes.constfold import constfold_pass
from repro.passes.dce import dce_pass
from repro.passes.licm import licm_pass
from repro.passes.cfg_simplify import cfg_simplify_pass
from repro.passes.globals_to_shared import globals_to_shared_pass
from repro.passes.pipeline import (
    DEVICE_PASS_NAMES,
    PIPELINE_VERSION,
    compile_for_device,
    finalize_executable,
    finalize_pass_names,
    pipeline_fingerprint,
)

__all__ = [
    "PassManager",
    "alias_dce_pass",
    "link_modules",
    "mutates_only",
    "preserves_ir",
    "redundant_barrier_elim_pass",
    "declare_target_pass",
    "rename_main_pass",
    "USER_MAIN",
    "rpc_lowering_pass",
    "inline_all_pass",
    "constfold_pass",
    "dce_pass",
    "licm_pass",
    "cfg_simplify_pass",
    "globals_to_shared_pass",
    "compile_for_device",
    "finalize_executable",
    "finalize_pass_names",
    "pipeline_fingerprint",
    "DEVICE_PASS_NAMES",
    "PIPELINE_VERSION",
]
