"""Mandatory full inlining.

GPU device code is traditionally aggressively inlined; our SIMT interpreter
takes this to its logical end and only executes **call-free** kernels, so
every ``call`` to a device-defined function must be expanded.  (``rpc``
instructions and math opcodes survive — they are not calls at this level.)

Direct recursion and mutual recursion are rejected (as on real GPU OpenMP
offload, where unbounded recursion is unsupported in practice); an expansion
budget guards against pathological exponential inlining.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Block, Function, Module
from repro.ir.types import Reg

#: Hard cap on call-site expansions per root function.
MAX_EXPANSIONS = 50_000


def inline_all_pass(module: Module, roots: list[str] | None = None) -> None:
    """Inline every device call reachable from ``roots`` (default: kernels)."""
    if roots is None:
        roots = [f.name for f in module.kernels()]
        if not roots:
            roots = list(module.functions)
    _check_no_recursion(module, roots)
    for root in roots:
        _inline_into(module, module.get_function(root))


def _check_no_recursion(module: Module, roots: list[str]) -> None:
    # DFS over the static call graph looking for cycles.
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}

    def visit(name: str, stack: list[str]) -> None:
        color[name] = GRAY
        stack.append(name)
        fn = module.functions.get(name)
        if fn is not None:
            for callee in sorted(fn.called_symbols()):
                if callee not in module.functions:
                    continue
                c = color.get(callee, WHITE)
                if c == GRAY:
                    cycle = " -> ".join(stack[stack.index(callee):] + [callee])
                    raise PassError(f"recursive call chain cannot be inlined: {cycle}")
                if c == WHITE:
                    visit(callee, stack)
        stack.pop()
        color[name] = BLACK

    for root in roots:
        if color.get(root, WHITE) == WHITE:
            visit(root, [])


def _inline_into(module: Module, fn: Function) -> None:
    expansions = 0
    counter = 0
    while True:
        site = _find_call_site(module, fn)
        if site is None:
            return
        block_label, index, instr = site
        expansions += 1
        if expansions > MAX_EXPANSIONS:
            raise PassError(f"inlining budget exceeded in {fn.name!r}")
        counter += 1
        _expand(module, fn, block_label, index, instr, counter)


def _find_call_site(module: Module, fn: Function) -> tuple[str, int, Instr] | None:
    for label in fn.block_order:
        block = fn.blocks[label]
        for i, instr in enumerate(block.instrs):
            if instr.op is Opcode.CALL and instr.callee in module.functions:
                return label, i, instr
    return None


def _expand(
    module: Module,
    caller: Function,
    block_label: str,
    index: int,
    call: Instr,
    counter: int,
) -> None:
    callee = module.get_function(call.callee)
    prefix = f"inl{counter}.{callee.name}"

    # Split the call block: head keeps [0, index), a fresh continuation block
    # receives the tail [index+1, ...] including the original terminator.
    head = caller.blocks[block_label]
    tail_instrs = head.instrs[index + 1 :]
    head.instrs = head.instrs[:index]

    cont = Block(f"{prefix}.cont")
    cont.instrs = tail_instrs
    caller.blocks[cont.label] = cont

    # Clone callee bodies with remapped registers and labels.
    reg_map: dict[int, Reg] = {}

    def map_reg(r: Reg) -> Reg:
        got = reg_map.get(r.id)
        if got is None:
            got = caller.new_reg(r.ty)
            reg_map[r.id] = got
        return got

    label_map = {lbl: f"{prefix}.{lbl}" for lbl in callee.block_order}

    # Synthesized instructions carry the *call site's* source location:
    # an argument-binding mov belongs to the call line, not to nothing —
    # diagnostics must keep pointing at user source after inlining.
    site_loc = call.meta.get("loc")

    def stamped(instr: Instr, loc=None) -> Instr:
        if loc is not None:
            instr.meta["loc"] = loc
        elif site_loc is not None:
            instr.meta["loc"] = site_loc
        return instr

    # Bind arguments: fresh registers standing for the callee's parameters.
    for param_reg, arg in zip(callee.param_regs, call.args):
        dst = map_reg(param_reg)
        head.instrs.append(stamped(Instr(Opcode.MOV, dst, (arg,))))
    head.instrs.append(
        stamped(Instr(Opcode.BR, targets=(label_map[callee.block_order[0]],)))
    )

    new_labels: list[str] = []
    for lbl in callee.block_order:
        src = callee.blocks[lbl]
        nb = Block(label_map[lbl])
        for instr in src.instrs:
            ni = instr.copy()
            ni.args = tuple(map_reg(a) if isinstance(a, Reg) else a for a in ni.args)
            if ni.dest is not None:
                ni.dest = map_reg(ni.dest)
            if ni.targets:
                ni.targets = tuple(label_map[t] for t in ni.targets)
            if ni.op is Opcode.RET:
                # The replacement branch inherits the return's location so
                # the inlined body stays attributed to callee source lines.
                ni = stamped(Instr(Opcode.BR, targets=(cont.label,)), ni.meta.get("loc"))
            elif ni.op is Opcode.RETVAL:
                value = ni.args[0]
                ret_loc = ni.meta.get("loc")
                nb.instrs.extend(
                    [
                        stamped(
                            Instr(Opcode.MOV, call.dest, (value,))
                            if call.dest is not None
                            else Instr(Opcode.MOV, caller.new_reg(value.ty), (value,)),
                            ret_loc,
                        ),
                        stamped(Instr(Opcode.BR, targets=(cont.label,)), ret_loc),
                    ]
                )
                continue
            nb.instrs.append(ni)
        caller.blocks[nb.label] = nb
        new_labels.append(nb.label)

    # Keep block order: ... head, [callee clones], cont, rest ...
    pos = caller.block_order.index(block_label)
    caller.block_order = (
        caller.block_order[: pos + 1]
        + new_labels
        + [cont.label]
        + caller.block_order[pos + 1 :]
    )
