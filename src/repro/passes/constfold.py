"""Local constant folding and algebraic simplification.

The IR is not SSA (assignment reuses a variable's home register), so
constant knowledge is tracked **within a basic block only** and a register's
constant binding dies as soon as the register is redefined.  This keeps the
pass trivially sound while still cleaning up the address arithmetic and
literal chains the frontend emits.
"""

from __future__ import annotations

import math

from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Function, Module
from repro.ir.types import Reg

_INT_FOLD = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: _wrap64(a << (b & 63)),
    Opcode.ASHR: lambda a, b: a >> (b & 63),
    Opcode.IMIN: min,
    Opcode.IMAX: max,
    Opcode.ICMP_EQ: lambda a, b: int(a == b),
    Opcode.ICMP_NE: lambda a, b: int(a != b),
    Opcode.ICMP_SLT: lambda a, b: int(a < b),
    Opcode.ICMP_SLE: lambda a, b: int(a <= b),
    Opcode.ICMP_SGT: lambda a, b: int(a > b),
    Opcode.ICMP_SGE: lambda a, b: int(a >= b),
}

_FLT_FOLD = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FMIN: min,
    Opcode.FMAX: max,
}

_FLT_UN = {
    Opcode.SQRT: math.sqrt,
    Opcode.FABS: abs,
    Opcode.FLOOR: math.floor,
    Opcode.CEIL: math.ceil,
    Opcode.FNEG: lambda x: -x,
}


def _wrap64(x: int) -> int:
    x &= (1 << 64) - 1
    return x - (1 << 64) if x >= (1 << 63) else x


def constfold_pass(module: Module) -> None:
    """Fold block-local constants and algebraic identities in every function."""
    for fn in module.functions.values():
        _fold_function(fn)


def _fold_function(fn: Function) -> None:
    for block in fn.iter_blocks():
        consts: dict[int, int | float] = {}
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            instr = _try_fold(instr, consts)
            # register redefinition invalidates its old binding
            if instr.dest is not None:
                consts.pop(instr.dest.id, None)
            if instr.op is Opcode.MOVI:
                consts[instr.dest.id] = int(instr.imm)
            elif instr.op is Opcode.MOVF:
                consts[instr.dest.id] = float(instr.imm)
            elif instr.op is Opcode.MOV and isinstance(instr.args[0], Reg):
                src = instr.args[0].id
                if src in consts:
                    consts[instr.dest.id] = consts[src]
            new_instrs.append(instr)
        block.instrs = new_instrs


def _try_fold(instr: Instr, consts: dict[int, int | float]) -> Instr:
    def const_of(a) -> int | float | None:
        if isinstance(a, Reg):
            return consts.get(a.id)
        return None

    op = instr.op
    if op in _INT_FOLD and len(instr.args) == 2:
        a, b = (const_of(x) for x in instr.args)
        if a is not None and b is not None:
            return Instr(Opcode.MOVI, instr.dest, imm=_wrap64(int(_INT_FOLD[op](a, b))))
        # algebraic identities
        if op is Opcode.ADD and b == 0:
            return Instr(Opcode.MOV, instr.dest, (instr.args[0],))
        if op is Opcode.ADD and a == 0:
            return Instr(Opcode.MOV, instr.dest, (instr.args[1],))
        if op is Opcode.MUL and b == 1:
            return Instr(Opcode.MOV, instr.dest, (instr.args[0],))
        if op is Opcode.MUL and a == 1:
            return Instr(Opcode.MOV, instr.dest, (instr.args[1],))
        if op is Opcode.MUL and (a == 0 or b == 0):
            return Instr(Opcode.MOVI, instr.dest, imm=0)
        if op is Opcode.SUB and b == 0:
            return Instr(Opcode.MOV, instr.dest, (instr.args[0],))
    elif op in (Opcode.SDIV, Opcode.SREM) and len(instr.args) == 2:
        a, b = (const_of(x) for x in instr.args)
        if a is not None and b not in (None, 0):
            if op is Opcode.SDIV:
                val = int(math.trunc(a / b))  # C-style truncating division
            else:
                val = int(a - int(math.trunc(a / b)) * b)
            return Instr(Opcode.MOVI, instr.dest, imm=_wrap64(val))
        if op is Opcode.SDIV and b == 1:
            return Instr(Opcode.MOV, instr.dest, (instr.args[0],))
    elif op in _FLT_FOLD and len(instr.args) == 2:
        a, b = (const_of(x) for x in instr.args)
        if a is not None and b is not None:
            return Instr(Opcode.MOVF, instr.dest, imm=float(_FLT_FOLD[op](a, b)))
    elif op is Opcode.FDIV and len(instr.args) == 2:
        a, b = (const_of(x) for x in instr.args)
        if a is not None and b is not None and b != 0:
            return Instr(Opcode.MOVF, instr.dest, imm=float(a) / float(b))
    elif op in _FLT_UN and len(instr.args) == 1:
        a = const_of(instr.args[0])
        if a is not None:
            try:
                return Instr(Opcode.MOVF, instr.dest, imm=float(_FLT_UN[op](a)))
            except (ValueError, OverflowError):
                pass
    elif op is Opcode.SITOFP:
        a = const_of(instr.args[0])
        if a is not None:
            return Instr(Opcode.MOVF, instr.dest, imm=float(a))
    elif op is Opcode.FPTOSI:
        a = const_of(instr.args[0])
        if a is not None:
            return Instr(Opcode.MOVI, instr.dest, imm=int(a))
    elif op is Opcode.SELECT:
        c = const_of(instr.args[0])
        if c is not None:
            chosen = instr.args[1] if c else instr.args[2]
            return Instr(Opcode.MOV, instr.dest, (chosen,))
    return instr
