"""Redundant-barrier elimination, driven by points-to analysis.

A ``barrier`` exists to order *cross-thread shared-memory communication*:
one thread writes, the team synchronizes, another thread reads.  Ported
CPU OpenMP code is full of barriers that order nothing — after the
implicit sync of a worksharing loop, around thread-private scratch
work, in sequential (initial-thread) sections — and on a GPU every one
of them costs a full team round-trip per instance.  This pass removes a
barrier when the analysis *proves* no communication spans it:

* a barrier at parallel depth 0 synchronizes a single thread (the
  sequential initial-thread region between ``par_end`` and the next
  ``par_begin``) — always removable;
* otherwise, compute the memory accesses in the barrier's *windows*:
  everything reachable backward / forward from the barrier without
  crossing another synchronization point (``barrier``, ``par_begin``/
  ``par_end``, team reductions).  The barrier is redundant iff no
  thread-shared object (per :class:`~repro.analysis.pointsto.PointsTo`
  spaces — anything except per-thread stack) is written in one window
  and accessed in the other.

Unknown pointers degrade to ⊤ and block removal; cross-lane register
exchange (``shfl_*``) in either window blocks removal; ``rpc`` and
residual ``call`` instructions count as read+write of ⊤.  Removal is
behavior-preserving by construction — a barrier only *orders* accesses,
and we keep every barrier that could order anything.
"""

from __future__ import annotations

from repro.analysis.dataflow import par_depths
from repro.analysis.pointsto import (
    READ_ADDR_POS,
    UNKNOWN_OBJ,
    WRITE_ADDR_POS,
    MemSpace,
    PointsTo,
)
from repro.ir.instructions import SYNC_OPS, Instr, Opcode
from repro.ir.module import Function, Module

#: Instructions that cut an ordering window (every thread is known to
#: reconverge there, so communication cannot span past them *and* the
#: barrier under test at the same time).
_CUTS = frozenset(SYNC_OPS) | {Opcode.PAR_BEGIN}

#: Cross-lane register exchange: communication that never touches memory.
_SHFL = frozenset({Opcode.SHFL_DOWN, Opcode.SHFL_IDX})

_UNKNOWN = frozenset({UNKNOWN_OBJ})


def redundant_barrier_elim_pass(
    module: Module, pointsto: PointsTo | None = None, metrics=None
) -> None:
    """Drop every barrier proven to order no cross-thread communication."""
    pt = pointsto or PointsTo(module)
    removed = 0
    for fn in module.functions.values():
        removed += _process_function(fn, pt)
    if metrics is not None and removed:
        metrics.counter("passes.barrier_elim.removed").inc(removed)


def _process_function(fn: Function, pt: PointsTo) -> int:
    barriers = [
        (block.label, idx)
        for block in fn.iter_blocks()
        for idx, instr in enumerate(block.instrs)
        if instr.op is Opcode.BARRIER
    ]
    if not barriers:
        return 0
    depths = par_depths(fn)
    doomed: list[tuple[str, int]] = []
    for label, idx in barriers:
        if label not in depths.depth_in:
            continue  # unreachable; cfg-simplify will drop the block
        if depths.depth_before(label, idx, fn) == 0:
            doomed.append((label, idx))  # single-threaded region
            continue
        before = _window(fn, label, idx, forward=False)
        after = _window(fn, label, idx, forward=True)
        if not _communicates(pt, fn.name, before, after):
            doomed.append((label, idx))
    # Delete back-to-front so earlier indices stay valid.
    for label, idx in sorted(doomed, reverse=True):
        del fn.blocks[label].instrs[idx]
    return len(doomed)


def _window(fn: Function, label: str, idx: int, *, forward: bool) -> list[Instr]:
    """Instructions reachable from the barrier at ``(label, idx)`` without
    crossing a synchronization cut, in the given direction."""
    out: list[Instr] = []

    def scan(instrs) -> bool:
        """Collect until a cut; returns True if a cut stopped the scan."""
        for instr in instrs:
            if instr.op in _CUTS:
                return True
            out.append(instr)
        return False

    block = fn.blocks[label]
    tail = block.instrs[idx + 1 :] if forward else block.instrs[:idx][::-1]
    if scan(tail):
        return out
    edges = _succs(fn) if forward else _preds(fn)
    seen = {label}
    work = [n for n in edges[label]]
    while work:
        cur = work.pop()
        if cur in seen:
            continue
        seen.add(cur)
        instrs = fn.blocks[cur].instrs
        if not scan(instrs if forward else list(reversed(instrs))):
            work.extend(edges[cur])
    return out


def _succs(fn: Function) -> dict[str, list[str]]:
    return {b.label: list(b.successors()) for b in fn.iter_blocks()}


def _preds(fn: Function) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {lbl: [] for lbl in fn.block_order}
    for b in fn.iter_blocks():
        for s in b.successors():
            preds[s].append(b.label)
    return preds


def _shared(pt: PointsTo, objs) -> frozenset:
    """Restrict an object set to thread-shared objects (drop per-thread
    stack); ⊤ stays ⊤."""
    return frozenset(o for o in objs if pt.space(o) is not MemSpace.STACK)


def _effects(pt: PointsTo, fname: str, window: list[Instr]):
    """(writes, reads) as lists of thread-shared object sets, or None when
    the window contains communication we cannot reason about (shfl)."""
    writes: list[frozenset] = []
    reads: list[frozenset] = []
    for instr in window:
        if instr.op in _SHFL:
            return None
        if instr.op in (Opcode.RPC, Opcode.CALL):
            # Residual calls (non-kernel bodies) and host RPCs: the callee/
            # host may touch anything reachable — read+write ⊤.
            writes.append(_UNKNOWN)
            reads.append(_UNKNOWN)
            continue
        if instr.op in WRITE_ADDR_POS:
            objs = _shared(pt, pt.addr_objects(fname, instr, written=True))
            if objs:
                writes.append(objs)
        if instr.op in READ_ADDR_POS:
            objs = _shared(pt, pt.addr_objects(fname, instr, written=False))
            if objs:
                reads.append(objs)
    return writes, reads


def _communicates(
    pt: PointsTo, fname: str, before: list[Instr], after: list[Instr]
) -> bool:
    eb = _effects(pt, fname, before)
    ea = _effects(pt, fname, after)
    if eb is None or ea is None:
        return True  # shfl traffic: assume the barrier orders it
    for (writes, _), (other_writes, other_reads) in ((eb, ea), (ea, eb)):
        for w in writes:
            for acc in other_writes + other_reads:
                if pt.may_alias(w, acc):
                    return True
    return False


__all__ = ["redundant_barrier_elim_pass"]
