"""RPC lowering: rewrite calls to host-only symbols into ``rpc`` instructions.

This is the automated stub generation of the extended direct-compilation
work [27]: earlier users had to hand-write stub code delegating host-only
functions (printf, file I/O, ...) through the RPC framework; the custom LTO
pass generates those calls automatically.  Here: every ``call @f`` where
``f`` is declared ``extern_host`` becomes ``rpc $f`` with identical operands
and destination.  The host side (:mod:`repro.host.rpc_host`) dispatches on
the service name.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.instructions import Opcode
from repro.ir.module import Module


def rpc_lowering_pass(module: Module) -> None:
    """Lower host-extern calls to RPC; error on truly undefined symbols."""
    lowered = 0
    for fn in module.functions.values():
        for block in fn.iter_blocks():
            for instr in block.instrs:
                if instr.op is not Opcode.CALL:
                    continue
                callee = instr.callee
                if callee in module.functions:
                    continue
                if callee in module.extern_host:
                    instr.op = Opcode.RPC
                    instr.service = callee
                    instr.callee = None
                    lowered += 1
                else:
                    raise PassError(
                        f"call to {callee!r} in {fn.name!r}: not defined on the "
                        "device and not a declared host function"
                    )
    module.metadata["rpc_lowered"] = module.metadata.get("rpc_lowered", 0) + lowered
