"""Declare-target marking pass.

Mirrors the user wrapper header of the paper (Figure 3): every user function
is treated as if it were enclosed in

.. code-block:: c

    #pragma omp begin declare target device_type(nohost)

i.e. it becomes device code with no host fallback version.  Downstream
stages refuse to "run on the host" anything that is not marked, so this pass
is the formal entry gate of the direct-compilation scheme.
"""

from __future__ import annotations

from repro.ir.module import Module


def declare_target_pass(module: Module) -> None:
    """Mark every function declare-target + nohost."""
    for fn in module.functions.values():
        fn.declare_target = True
        fn.nohost = True
    module.metadata["declare_target"] = True
