"""Minimal pass manager: ordered module passes with optional verification
and analysis-cache bookkeeping.

When constructed with an :class:`~repro.analysis.manager.AnalysisManager`,
the manager fingerprints every function around each pass and

* drops exactly the cache entries the pass invalidated (mutated
  functions for function-scoped analyses, everything for module-scoped
  ones), and
* *verifies declarations*: a pass marked :func:`preserves_ir` that
  nevertheless mutated the IR, or a pass whose :func:`mutates_only`
  list did not cover a function it changed, raises
  :class:`~repro.errors.PassError` immediately — a stale-analysis bug
  becomes a loud compile-time failure instead of a miscompile.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PassError
from repro.ir.module import Module
from repro.ir.verifier import verify_module

ModulePass = Callable[[Module], Module | None]


def preserves_ir(p: ModulePass) -> ModulePass:
    """Declare that a pass never mutates the IR (analysis/reporting only)."""
    p.preserves_ir = True  # type: ignore[attr-defined]
    return p


def mutates_only(*names: str) -> Callable[[ModulePass], ModulePass]:
    """Declare the only functions a pass may mutate (by name)."""

    def mark(p: ModulePass) -> ModulePass:
        p.mutates_only = frozenset(names)  # type: ignore[attr-defined]
        return p

    return mark


class PassManager:
    """Runs module passes in order.

    A pass is a callable taking a :class:`~repro.ir.module.Module` and
    returning either ``None`` (in-place mutation) or a replacement module.
    With ``verify_each=True`` the IR verifier runs after every pass, which
    pinpoints the pass that broke an invariant.  With ``am=`` set, analysis
    caches are kept honest as described in the module docstring.
    """

    def __init__(self, *, verify_each: bool = False, am=None):
        self.passes: list[tuple[str, ModulePass]] = []
        self.verify_each = verify_each
        self.am = am

    def add(self, p: ModulePass, name: str | None = None) -> "PassManager":
        self.passes.append((name or getattr(p, "__name__", "pass"), p))
        return self

    def run(self, module: Module, *, tracer=None) -> Module:
        """Run every pass in order; with an enabled tracer each pass is
        recorded as a wall-clock span on the ``compiler`` track."""
        tracing = tracer is not None and tracer.enabled
        am = self.am
        if am is not None and am.module is not module:
            raise PassError(
                "PassManager's AnalysisManager was built for a different module"
            )
        for name, p in self.passes:
            snap = am.snapshot() if am is not None else None
            try:
                if tracing:
                    with tracer.span(name, track="compiler", cat="pass"):
                        result = p(module)
                else:
                    result = p(module)
            except PassError:
                raise
            except Exception as exc:  # wrap for attribution
                raise PassError(f"pass {name!r} failed: {exc}") from exc
            if result is not None:
                if am is not None and result is not module:
                    # A replacement module orphans every cached analysis.
                    am.invalidate_all()
                    am.module = result
                    snap = None
                module = result
            if am is not None:
                self._reconcile_caches(am, name, p, snap)
            if self.verify_each:
                verify_module(module)
        return module

    @staticmethod
    def _reconcile_caches(am, name: str, p: ModulePass, snap) -> None:
        if snap is None:
            return
        changed = am.changed_since(snap)
        if not changed:
            return
        what = ", ".join(sorted(n or "<module shape>" for n in changed))
        if getattr(p, "preserves_ir", False):
            raise PassError(
                f"pass {name!r} is declared preserves_ir but mutated: {what}"
            )
        declared = getattr(p, "mutates_only", None)
        if declared is not None and not changed <= declared:
            extra = ", ".join(sorted((changed - declared) - {""}))
            raise PassError(
                f"pass {name!r} mutated function(s) it did not declare: "
                f"{extra or '<module shape>'} (declared: {sorted(declared)})"
            )
        am.refresh(changed)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PassManager {[n for n, _ in self.passes]}>"
