"""Minimal pass manager: ordered module passes with optional verification."""

from __future__ import annotations

from typing import Callable

from repro.errors import PassError
from repro.ir.module import Module
from repro.ir.verifier import verify_module

ModulePass = Callable[[Module], Module | None]


class PassManager:
    """Runs module passes in order.

    A pass is a callable taking a :class:`~repro.ir.module.Module` and
    returning either ``None`` (in-place mutation) or a replacement module.
    With ``verify_each=True`` the IR verifier runs after every pass, which
    pinpoints the pass that broke an invariant.
    """

    def __init__(self, *, verify_each: bool = False):
        self.passes: list[tuple[str, ModulePass]] = []
        self.verify_each = verify_each

    def add(self, p: ModulePass, name: str | None = None) -> "PassManager":
        self.passes.append((name or getattr(p, "__name__", "pass"), p))
        return self

    def run(self, module: Module, *, tracer=None) -> Module:
        """Run every pass in order; with an enabled tracer each pass is
        recorded as a wall-clock span on the ``compiler`` track."""
        tracing = tracer is not None and tracer.enabled
        for name, p in self.passes:
            try:
                if tracing:
                    with tracer.span(name, track="compiler", cat="pass"):
                        result = p(module)
                else:
                    result = p(module)
            except PassError:
                raise
            except Exception as exc:  # wrap for attribution
                raise PassError(f"pass {name!r} failed: {exc}") from exc
            if result is not None:
                module = result
            if self.verify_each:
                verify_module(module)
        return module

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PassManager {[n for n, _ in self.passes]}>"
