"""Canonical pass pipelines.

``compile_for_device``
    Run on the module produced by ``Program.compile()``: declare-target
    marking, ``main`` -> ``__user_main`` renaming, RPC lowering, verify.
    This is the moral equivalent of "clang -include wrapper.h ... -flto"
    in the paper's Figure 2.

``finalize_executable``
    Run after a loader has linked its kernel into the module: mandatory full
    inlining, then the optimization sweep (constant folding, DCE, CFG
    simplification) iterated to a small fixpoint, then verification.  The
    result is a call-free module ready for the SIMT machine.

Both entry points accept ``analyze=True`` to additionally run the
:mod:`repro.analysis` safety checkers after verification; the findings are
stored in ``module.metadata["diagnostics"]`` and error-severity findings
abort compilation with a :class:`~repro.errors.PassError`.
"""

from __future__ import annotations

import hashlib

from repro.errors import PassError
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.passes.alias_opt import alias_dce_pass
from repro.passes.barrier_elim import redundant_barrier_elim_pass
from repro.passes.cfg_simplify import cfg_simplify_pass
from repro.passes.constfold import constfold_pass
from repro.passes.dce import dce_pass
from repro.passes.declare_target import declare_target_pass
from repro.passes.inliner import inline_all_pass
from repro.passes.licm import licm_pass
from repro.passes.pass_manager import PassManager
from repro.passes.rename_main import rename_main_pass
from repro.passes.rpc_lowering import rpc_lowering_pass

#: Bump on any semantic change to a pass that is not reflected in the
#: pass *names* below (a fixed bug, a sharpened analysis...).  The
#: compile cache folds this into every key, so stale executables from an
#: older pipeline can never be served after an upgrade.
PIPELINE_VERSION = 1

#: Pass names of :func:`compile_for_device`, in run order.
DEVICE_PASS_NAMES: tuple[str, ...] = (
    "declare-target",
    "rename-main",
    "rpc-lowering",
)


def finalize_pass_names(opt_level: int) -> tuple[str, ...]:
    """Pass names :func:`finalize_executable` runs at ``opt_level``, in
    order.  This is the single source of truth: ``finalize_executable``
    builds its :class:`PassManager` from this list, and
    :func:`pipeline_fingerprint` hashes it, so the cached-executable key
    can never drift from the pipeline that actually runs."""
    if opt_level not in (0, 1, 2):
        raise PassError(
            f"unsupported opt_level {opt_level!r} (expected 0, 1 or 2)"
        )
    names = ["rpc-lowering", "inline-all"]
    if opt_level >= 1:
        for round_ in range(2):
            names.append(f"constfold.{round_}")
            names.append(f"dce.{round_}")
            if round_ == 0:
                names.append("licm")
            names.append(f"cfg-simplify.{round_}")
    if opt_level >= 2:
        names += [
            "barrier-elim",
            "alias-dce",
            "licm.ro-loads",
            "dce.2",
            "cfg-simplify.2",
        ]
    return tuple(names)


def pipeline_fingerprint(opt_level: int) -> str:
    """Content fingerprint of the full pass pipeline at ``opt_level``.

    Part of every :class:`~repro.compilecache.CacheKey`: two processes
    agree on a cached executable only if they would have compiled it
    through the same pass sequence at the same :data:`PIPELINE_VERSION`
    — and, because executables carry their safety certificates, the
    same :data:`~repro.analysis.safety.ANALYZER_VERSION` (bumping the
    analyzer makes every stale certificate structurally unreachable).
    """
    from repro.analysis.safety import ANALYZER_VERSION

    text = "|".join(
        (
            f"v{PIPELINE_VERSION}",
            f"safety{ANALYZER_VERSION}",
            ",".join(DEVICE_PASS_NAMES),
            ",".join(finalize_pass_names(opt_level)),
        )
    )
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return f"pp{PIPELINE_VERSION}:{digest[:16]}"


def _run_analysis(module: Module, stage: str) -> None:
    """Opt-in ``analyze`` step: run the safety checkers, stash the findings
    in ``module.metadata["diagnostics"]``, and abort on errors."""
    from repro.analysis import Severity, analyze_module

    diags = analyze_module(module)
    module.metadata["diagnostics"] = diags
    errs = [d for d in diags if d.severity >= Severity.ERROR]
    if errs:
        listing = "\n".join(d.format() for d in errs)
        raise PassError(
            f"analysis found {len(errs)} error(s) after {stage}:\n{listing}"
        )


def _run_pipeline(pm: PassManager, module: Module, stage: str, tracer, metrics) -> Module:
    """Run a built pipeline with per-pass spans and pipeline counters."""
    if metrics is not None:
        metrics.counter("pipeline.runs", stage=stage).inc()
        metrics.counter("pipeline.passes", stage=stage).inc(len(pm.passes))
    if tracer is not None and tracer.enabled:
        with tracer.span(stage, track="compiler", cat="pipeline"):
            return pm.run(module, tracer=tracer)
    return pm.run(module)


def compile_for_device(
    module: Module,
    *,
    require_main: bool = True,
    verify: bool = True,
    analyze: bool = False,
    tracer=None,
    metrics=None,
) -> Module:
    """Apply the direct-GPU-compilation front half to a program module.

    ``tracer``/``metrics`` are optional :mod:`repro.obs` sinks: with an
    enabled tracer every pass becomes a span on the ``compiler`` track,
    and pipeline run/pass counts land in the registry.
    """
    pm = PassManager()
    pm.add(declare_target_pass, "declare-target")
    pm.add(lambda m: rename_main_pass(m, require_main=require_main), "rename-main")
    pm.add(rpc_lowering_pass, "rpc-lowering")
    module = _run_pipeline(pm, module, "compile_for_device", tracer, metrics)
    if verify:
        verify_module(module)
    if analyze:
        _run_analysis(module, "compile_for_device")
    return module


def finalize_executable(
    module: Module,
    *,
    optimize: bool = True,
    verify: bool = True,
    analyze: bool = False,
    tracer=None,
    metrics=None,
    opt_level: int | None = None,
) -> Module:
    """Inline + optimize a linked module into its executable form.

    ``opt_level`` selects the optimization stage:

    * ``0`` — inline only (same as ``optimize=False``);
    * ``1`` — the classic intraprocedural sweep (constfold/DCE/LICM/CFG
      simplification iterated twice) — the default with ``optimize=True``;
    * ``2`` — everything in ``1`` plus the interprocedural stage: an
      :class:`~repro.analysis.manager.AnalysisManager` (kept honest by the
      pass manager's fingerprint invalidation) feeds points-to facts into
      :mod:`~repro.passes.barrier_elim`, alias-sharpened dead-store
      elimination, and read-only-global load hoisting, followed by one
      more cleanup round.

    ``tracer``/``metrics`` behave as in :func:`compile_for_device`.
    """
    if opt_level is None:
        opt_level = 1 if optimize else 0
    if opt_level not in (0, 1, 2):
        raise PassError(f"unsupported opt_level {opt_level!r} (expected 0, 1 or 2)")
    am = None
    if opt_level >= 2:
        from repro.analysis.manager import AnalysisManager

        # The analysis manager caches one points-to solution across the
        # stage; the pass manager re-fingerprints after every pass and
        # recomputes it only when a pass actually mutated a function.
        am = AnalysisManager(module)

    def _resolve(name: str):
        if name == "rpc-lowering":  # idempotent; covers loader code
            return rpc_lowering_pass
        if name == "inline-all":
            return inline_all_pass
        if name == "licm.ro-loads":
            return lambda m: licm_pass(m, am.get("pointsto"))
        if name == "barrier-elim":
            return lambda m: redundant_barrier_elim_pass(
                m, am.get("pointsto"), metrics
            )
        if name == "alias-dce":
            return lambda m: alias_dce_pass(m, am.get("pointsto"), metrics)
        if name == "licm":
            return licm_pass
        base = name.split(".", 1)[0]
        if base == "constfold":
            return constfold_pass
        if base == "dce":
            return dce_pass
        if base == "cfg-simplify":
            return cfg_simplify_pass
        raise PassError(f"finalize_executable: unknown pass name {name!r}")

    # Built from the *name list* so pipeline_fingerprint() — and with it
    # every compile-cache key — is honest by construction.
    pm = PassManager(am=am)
    for name in finalize_pass_names(opt_level):
        pm.add(_resolve(name), name)
    module = _run_pipeline(pm, module, "finalize_executable", tracer, metrics)
    module.metadata["opt_level"] = opt_level
    if am is not None and metrics is not None:
        metrics.counter("analysis.cache.hits").inc(am.hits)
        metrics.counter("analysis.cache.misses").inc(am.misses)
    if verify:
        verify_module(module)
    if analyze:
        _run_analysis(module, "finalize_executable")
    return module
