"""Loop-invariant code motion.

Hoists pure, non-trapping instructions whose operands do not change inside
a loop into a freshly created preheader.  Because the IR is not SSA, the
pass restricts itself to **single-definition registers** (registers written
exactly once in the whole function — the frontend's expression temporaries
all qualify), which makes hoisting trivially sound: the hoisted instruction
computes the same value it would have computed on every iteration, and no
other definition can be clobbered.

This matters beyond compiler hygiene: address computations like
``gaddr @table`` + constant scaling are emitted inside loop bodies by the
frontend, and every hoisted instruction is one fewer dynamic instruction
per loop iteration for the SIMT interpreter *and* for the modeled issue
cycles — like the real toolchain, optimization affects measured kernel
time.

Pipeline position: after full inlining, before/interleaved with constant
folding and DCE (see :func:`repro.passes.pipeline.finalize_executable`).
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.instructions import Instr, Opcode
from repro.ir.module import Block, Function, Module
from repro.ir.types import Reg

#: Pure opcodes that can never trap and have no side effects.
_HOISTABLE = frozenset(
    {
        Opcode.MOVI,
        Opcode.MOVF,
        Opcode.MOV,
        Opcode.GADDR,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.ASHR,
        Opcode.IMIN,
        Opcode.IMAX,
        Opcode.INEG,
        Opcode.BNOT,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,  # IEEE: x/0 -> inf, no trap
        Opcode.FMIN,
        Opcode.FMAX,
        Opcode.FNEG,
        Opcode.FPOW,
        Opcode.SQRT,
        Opcode.EXP,
        Opcode.LOG,
        Opcode.SIN,
        Opcode.COS,
        Opcode.TAN,
        Opcode.FABS,
        Opcode.FLOOR,
        Opcode.CEIL,
        Opcode.SITOFP,
        Opcode.ICMP_EQ,
        Opcode.ICMP_NE,
        Opcode.ICMP_SLT,
        Opcode.ICMP_SLE,
        Opcode.ICMP_SGT,
        Opcode.ICMP_SGE,
        Opcode.FCMP_EQ,
        Opcode.FCMP_NE,
        Opcode.FCMP_LT,
        Opcode.FCMP_LE,
        Opcode.FCMP_GT,
        Opcode.FCMP_GE,
        Opcode.SELECT,
        Opcode.KPARAM,
        Opcode.TID,  # constant within a lane's execution
        Opcode.NTID,
        Opcode.CTAID,
        Opcode.NCTAID,
        Opcode.LANEID,
        Opcode.INSTANCE,
    }
)


def licm_pass(module: Module, pointsto=None) -> None:
    """Hoist loop-invariant single-definition values into loop preheaders.

    With a :class:`~repro.analysis.pointsto.PointsTo` solution (the
    ``-O2`` stage passes one), loads from provably read-only globals
    become hoistable too — see :func:`_readonly_load_candidates`.
    """
    for fn in module.functions.values():
        loads = (
            _readonly_load_candidates(module, fn, pointsto)
            if pointsto is not None
            else frozenset()
        )
        _licm_function(fn, loads)


def _readonly_load_candidates(module: Module, fn, pt) -> frozenset[int]:
    """``id()``s of LOAD instructions that are safe to speculate out of a
    loop: the address is a single-def ``gaddr`` of a global that is never
    written through *any* may-aliasing pointer anywhere in the module, is
    never handed to the host (RPC could write it), and the access is
    statically in bounds — so executing the load early (even when the
    loop would have run zero times) can neither trap nor observe a
    different value."""
    from repro.analysis.pointsto import WRITE_ADDR_POS, MemObject

    written: list = []
    for f in module.functions.values():
        for instr in f.iter_instrs():
            if instr.op in WRITE_ADDR_POS:
                written.append(pt.addr_objects(f.name, instr, written=True))

    def read_only(sym: str) -> bool:
        obj = MemObject("global", sym)
        if obj in pt.rpc_visible:
            return False
        return not any(pt.may_alias({obj}, objs) for objs in written)

    gaddr_defs: dict[int, list[Instr]] = {}
    for instr in fn.iter_instrs():
        if instr.dest is not None:
            gaddr_defs.setdefault(instr.dest.id, []).append(instr)

    out: set[int] = set()
    for instr in fn.iter_instrs():
        if instr.op is not Opcode.LOAD or not instr.args:
            continue
        addr = instr.args[0]
        if not isinstance(addr, Reg):
            continue
        defs = gaddr_defs.get(addr.id, [])
        if len(defs) != 1 or defs[0].op is not Opcode.GADDR:
            continue
        g = module.globals.get(defs[0].sym)
        if g is None or not (0 <= instr.offset and instr.offset + instr.mty.size <= g.nbytes):
            continue
        if read_only(defs[0].sym):
            out.add(id(instr))
    return frozenset(out)


# ---------------------------------------------------------------------------
# CFG analyses
# ---------------------------------------------------------------------------


def _predecessors(fn: Function) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {lbl: [] for lbl in fn.block_order}
    for block in fn.iter_blocks():
        for succ in block.successors():
            preds[succ].append(block.label)
    return preds


def _dominators(fn: Function, preds: dict[str, list[str]]) -> dict[str, set[str]]:
    """Iterative dataflow dominator computation (fine at our CFG sizes)."""
    labels = fn.block_order
    entry = labels[0]
    all_set = set(labels)
    dom = {lbl: set(all_set) for lbl in labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for lbl in labels:
            if lbl == entry:
                continue
            ps = [p for p in preds[lbl] if p in dom]
            if not ps:
                continue
            new = set.intersection(*(dom[p] for p in ps)) | {lbl}
            if new != dom[lbl]:
                dom[lbl] = new
                changed = True
    return dom


def _natural_loops(
    fn: Function, preds: dict[str, list[str]], dom: dict[str, set[str]]
) -> dict[str, set[str]]:
    """header -> set of body labels (merging loops sharing a header)."""
    loops: dict[str, set[str]] = defaultdict(set)
    for block in fn.iter_blocks():
        for succ in block.successors():
            if succ in dom[block.label]:  # back edge block -> succ(header)
                body = {succ, block.label}
                stack = [block.label]
                while stack:
                    cur = stack.pop()
                    if cur == succ:
                        continue
                    for p in preds[cur]:
                        if p not in body:
                            body.add(p)
                            stack.append(p)
                loops[succ] |= body
    return dict(loops)


# ---------------------------------------------------------------------------
# hoisting
# ---------------------------------------------------------------------------


def _licm_function(fn: Function, hoistable_loads: frozenset[int] = frozenset()) -> None:
    if len(fn.blocks) < 2:
        return
    preds = _predecessors(fn)
    dom = _dominators(fn, preds)
    loops = _natural_loops(fn, preds, dom)
    if not loops:
        return

    # definition counts over the whole function (single-def = SSA-like)
    def_count: dict[int, int] = defaultdict(int)
    for instr in fn.iter_instrs():
        if instr.dest is not None:
            def_count[instr.dest.id] += 1
    for reg in fn.param_regs:
        def_count[reg.id] += 1

    # process larger (outer) loops last so inner-hoisted code can keep
    # moving outward across runs of the pass
    for header in sorted(loops, key=lambda h: len(loops[h])):
        _hoist_loop(fn, header, loops[header], preds, def_count, hoistable_loads)
        preds = _predecessors(fn)  # preheader insertion changed the CFG


def _hoist_loop(
    fn: Function,
    header: str,
    body: set[str],
    preds: dict[str, list[str]],
    def_count: dict[int, int],
    hoistable_loads: frozenset[int] = frozenset(),
) -> None:
    # registers defined anywhere in the loop
    defined_in_loop: set[int] = set()
    loop_has_par = False
    for lbl in body:
        for instr in fn.blocks[lbl].instrs:
            if instr.dest is not None:
                defined_in_loop.add(instr.dest.id)
            if instr.op in (Opcode.PAR_BEGIN, Opcode.PAR_END):
                loop_has_par = True

    # A loop enclosing a parallel region: hoisting a lane-variant value
    # (tid/laneid) above the region's par_begin would let the region-entry
    # register broadcast clobber it with the initial thread's copy.
    banned = {Opcode.TID, Opcode.LANEID} if loop_has_par else set()

    hoisted: list[Instr] = []
    hoisted_ids: set[int] = set()

    changed = True
    while changed:
        changed = False
        for lbl in sorted(body):
            block = fn.blocks[lbl]
            kept: list[Instr] = []
            for instr in block.instrs:
                if instr.op not in banned and _can_hoist(
                    instr, defined_in_loop, hoisted_ids, def_count, hoistable_loads
                ):
                    hoisted.append(instr)
                    hoisted_ids.add(instr.dest.id)
                    changed = True
                else:
                    kept.append(instr)
            block.instrs = kept

    if not hoisted:
        return

    # Build the preheader and retarget the loop's outside entries.  A later
    # (alias-sharpened) run can hoist again out of a loop that already has a
    # preheader, so the label must be uniquified — assigning a duplicate
    # would silently overwrite the blocks entry while block_order gains a
    # second occurrence.
    label = f"licm.{header}"
    serial = 1
    while label in fn.blocks:
        serial += 1
        label = f"licm.{header}.{serial}"
    pre = Block(label)
    pre.instrs = hoisted + [Instr(Opcode.BR, targets=(header,))]
    fn.blocks[pre.label] = pre
    pos = fn.block_order.index(header)
    fn.block_order.insert(pos, pre.label)

    for plbl in preds[header]:
        if plbl in body:
            continue  # back edges keep pointing at the header
        term = fn.blocks[plbl].terminator
        term.targets = tuple(
            pre.label if t == header else t for t in term.targets
        )


def _can_hoist(
    instr: Instr,
    defined_in_loop: set[int],
    hoisted_ids: set[int],
    def_count: dict[int, int],
    hoistable_loads: frozenset[int] = frozenset(),
) -> bool:
    if instr.dest is None:
        return False
    if instr.op not in _HOISTABLE and id(instr) not in hoistable_loads:
        return False
    if def_count[instr.dest.id] != 1:
        return False
    for a in instr.args:
        if isinstance(a, Reg):
            if a.id in defined_in_loop and a.id not in hoisted_ids:
                return False
            if def_count[a.id] != 1:
                return False
    return True
