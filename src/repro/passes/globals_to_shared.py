"""Globals-to-team-local transformation (§3.3 mitigation).

Running multiple application instances inside one kernel launch breaks the
process-level isolation instances would normally enjoy: *mutable* module
globals become shared between instances and can race.  The paper proposes
relocating such globals to GPU shared memory, which is team-local.

This pass marks every mutable global (or an explicit subset) ``team_local``;
the machine then materializes one private copy per team, re-initialized at
launch, and resolves ``gaddr`` per-team.  Constant globals (lookup tables,
interned strings) stay truly global — they are read-only and sharing them is
both safe and what real shared memory capacity would force anyway.

The pass reports globals that exceed the per-block shared-memory budget, the
practical limit the paper's future-work discussion would hit on real
hardware.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.module import Module


def globals_to_shared_pass(
    module: Module,
    names: list[str] | None = None,
    *,
    shared_mem_budget: int | None = None,
) -> list[str]:
    """Mark mutable globals team-local; returns the list of relocated names.

    Parameters
    ----------
    names:
        Explicit globals to relocate; default: every non-constant global.
    shared_mem_budget:
        Optional per-team byte budget (e.g. ``DeviceConfig.shared_mem_per_block``);
        exceeding it is an error, mirroring real shared-memory capacity.
    """
    if names is None:
        # "__"-prefixed globals belong to the runtime (device heap cursor,
        # interned strings); relocating those per-team would break malloc.
        targets = [
            g.name
            for g in module.globals.values()
            if not g.constant and not g.name.startswith("__")
        ]
    else:
        targets = []
        for name in names:
            g = module.globals.get(name)
            if g is None:
                raise PassError(f"globals_to_shared: unknown global {name!r}")
            if g.constant:
                raise PassError(f"globals_to_shared: {name!r} is constant")
            targets.append(name)

    total = sum(module.globals[n].nbytes for n in targets)
    if shared_mem_budget is not None and total > shared_mem_budget:
        raise PassError(
            f"team-local globals need {total} bytes, exceeding the shared-memory "
            f"budget of {shared_mem_budget} bytes per team"
        )
    for name in targets:
        module.globals[name].team_local = True
    module.metadata["team_local_globals"] = sorted(targets)
    return targets
