"""repro — ensemble execution for direct GPU compilation, reproduced in
simulation.

Reproduction of *"Maximizing Parallelism and GPU Utilization For Direct GPU
Compilation Through Ensemble Execution"* (Tian, Chapman, Doerfert, ICPP-W
2023) as a pure-Python system: a SIMT GPU simulator with an
address-accurate memory/timing model, a restricted-Python -> device-IR
compiler with the paper's device pass pipeline, an OpenMP-style device
runtime with two execution engines (the reference interpreter and a
block-compiled backend), the base and ensemble loaders, and ports of the
four evaluated benchmarks.

Quickstart
----------
>>> from repro import EnsembleLoader, GPUDevice, LaunchSpec
>>> from repro.apps import xsbench
>>> loader = EnsembleLoader(xsbench.build_program(), GPUDevice())
>>> result = loader.run_ensemble(LaunchSpec("-l 64 -g 256\\n-l 64 -g 256\\n", thread_limit=32))
>>> result.all_succeeded
True

The execution engine is part of the spec — ``LaunchSpec(...,
backend="compiled")`` runs the same workload on the compiled backend with
bitwise-identical results (see :mod:`repro.runtime.backend` and
``docs/backends.md``).

Multi-device campaigns go through :mod:`repro.sched`::

    from repro.sched import DevicePool, Scheduler
    result = Scheduler(DevicePool(4)).run_campaign(program, spec)

See ``examples/quickstart.py`` and EXPERIMENTS.md for the Figure-6
reproduction harness.
"""

from repro.config import (
    DEFAULT_DEVICE,
    DEFAULT_SIM,
    CacheConfig,
    DeviceConfig,
    DramConfig,
    SimConfig,
)
from repro.errors import (
    DeviceError,
    DeviceOutOfMemory,
    DeviceTrap,
    FrontendError,
    LaunchError,
    LoaderError,
    ReproError,
)
from repro.frontend import Program, dgpu
from repro.gpu.device import GPUDevice

# must follow the gpu import: autoensemble pulls in repro.analysis, whose
# import chain reaches repro.runtime, which needs repro.gpu initialized
from repro.frontend.autoensemble import auto_launch, ensemble
from repro.compilecache import CompileRequest, ExecutableCache, compile_many
from repro.host.ensemble_loader import EnsembleLoader, EnsembleResult
from repro.host.launch import LaunchSpec
from repro.host.loader import Loader, RunResult
from repro.host.mapping import OneInstancePerTeam, PackedMapping
from repro.obs.reporting import report
from repro.runtime.backend import (
    DEFAULT_BACKEND,
    Backend,
    available_backends,
)

__version__ = "2.2.0"

#: The curated v2 public surface.  Everything here is covered by the
#: semantic-versioning promise; reach into submodules at your own risk.
__all__ = [
    # configuration
    "DEFAULT_DEVICE",
    "DEFAULT_SIM",
    "CacheConfig",
    "DeviceConfig",
    "DramConfig",
    "SimConfig",
    # errors
    "ReproError",
    "FrontendError",
    "DeviceError",
    "DeviceTrap",
    "DeviceOutOfMemory",
    "LaunchError",
    "LoaderError",
    # authoring
    "Program",
    "dgpu",
    "ensemble",
    # launching
    "GPUDevice",
    "Loader",
    "RunResult",
    "LaunchSpec",
    "EnsembleLoader",
    "EnsembleResult",
    "OneInstancePerTeam",
    "PackedMapping",
    "auto_launch",
    # compile-once executable cache
    "CompileRequest",
    "ExecutableCache",
    "compile_many",
    # execution backends
    "Backend",
    "DEFAULT_BACKEND",
    "available_backends",
    # reporting
    "report",
    "__version__",
]
