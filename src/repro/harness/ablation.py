"""Mechanism ablations.

DESIGN.md attributes the sub-linear ensemble scaling to three modeled
mechanisms; each can be switched off independently via
:class:`~repro.config.SimConfig` to show which one produces which part of
the Figure-6 gap:

* ``coalescing``  — warp accesses collapse to unique 32B sectors (off:
  every lane pays a private transaction);
* ``row_locality`` — interleaved per-instance heap streams reduce DRAM
  row-buffer hits (off: DRAM always runs at peak efficiency);
* ``l2``           — instances' working sets compete for the shared L2
  (off: all traffic goes to DRAM).

There is also a mapping ablation: the paper's one-instance-per-team scheme
versus the §3.1 packed ``(N/M, M, 1)`` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.apps.registry import APPS
from repro.config import DEFAULT_DEVICE, DEFAULT_SIM, DeviceConfig, SimConfig
from repro.gpu.device import GPUDevice
from repro.harness.experiment import build_instance_lines
from repro.host.ensemble_loader import EnsembleLoader
from repro.host.launch import LaunchSpec
from repro.host.mapping import OneInstancePerTeam, PackedMapping

#: name -> SimConfig overrides
ABLATIONS: dict[str, dict] = {
    "full-model": {},
    "no-coalescing": {"model_coalescing": False},
    "no-row-locality": {"model_row_locality": False},
    "no-l2": {"model_l2": False},
}


@dataclass
class AblationRow:
    variant: str
    t1_cycles: float
    tn_cycles: float
    speedup: float


def run_mechanism_ablation(
    app_name: str,
    workload_args: list[str],
    *,
    instances: int = 32,
    thread_limit: int = 32,
    device_config: DeviceConfig = DEFAULT_DEVICE,
    heap_bytes: int | None = None,
) -> list[AblationRow]:
    """S(N) under each SimConfig variant for one benchmark/workload."""
    app = APPS[app_name]
    rows: list[AblationRow] = []
    for variant, overrides in ABLATIONS.items():
        sim = replace(DEFAULT_SIM, **overrides)
        device = GPUDevice(device_config, sim)
        loader = EnsembleLoader(
            app.build_program(), device, heap_bytes=heap_bytes or app.heap_hint_bytes
        )
        r1 = loader.run_ensemble(
            LaunchSpec(build_instance_lines(workload_args, 1), thread_limit=thread_limit)
        )
        rn = loader.run_ensemble(
            LaunchSpec(
                build_instance_lines(workload_args, instances),
                thread_limit=thread_limit,
            )
        )
        rows.append(
            AblationRow(
                variant=variant,
                t1_cycles=r1.cycles,
                tn_cycles=rn.cycles,
                speedup=r1.cycles * instances / rn.cycles,
            )
        )
    return rows


def run_mapping_ablation(
    app_name: str,
    workload_args: list[str],
    *,
    instances: int = 16,
    thread_limit: int = 128,
    pack_factors: tuple[int, ...] = (1, 2, 4),
    device_config: DeviceConfig = DEFAULT_DEVICE,
    heap_bytes: int | None = None,
) -> list[AblationRow]:
    """Compare one-instance-per-team against packed (N/M, M, 1) mappings.

    The packed mapping trades per-instance thread count for fewer teams:
    useful exactly when the application cannot use a full team's threads —
    §3.1's motivation."""
    app = APPS[app_name]
    rows: list[AblationRow] = []
    for m in pack_factors:
        mapping = OneInstancePerTeam() if m == 1 else PackedMapping(m)
        device = GPUDevice(device_config, DEFAULT_SIM)
        loader = EnsembleLoader(
            app.build_program(),
            device,
            mapping=mapping,
            heap_bytes=heap_bytes or app.heap_hint_bytes,
        )
        r1 = loader.run_ensemble(
            LaunchSpec(build_instance_lines(workload_args, 1), thread_limit=thread_limit)
        )
        rn = loader.run_ensemble(
            LaunchSpec(
                build_instance_lines(workload_args, instances),
                thread_limit=thread_limit,
            )
        )
        rows.append(
            AblationRow(
                variant=mapping.describe(),
                t1_cycles=r1.cycles,
                tn_cycles=rn.cycles,
                speedup=r1.cycles * instances / rn.cycles,
            )
        )
    return rows
