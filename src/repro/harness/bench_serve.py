"""Tracked server-path benchmark: repro.serve vs the direct scheduler.

The served path adds a socket hop, NDJSON framing, fair-share admission,
and the asyncio pump on top of the scheduler; this harness measures what
that costs.  One workload — ``campaigns`` pagerank ensembles of
``instances`` SMALL instances each, spread round-robin over three
tenants on a two-device pool — runs twice per repeat:

* **direct** — ``Scheduler.submit`` + ``JobFuture.result`` in-process,
* **served** — the same submissions through a :class:`~repro.serve.
  harness.ServerThread` and the blessed :class:`~repro.serve.client.
  Client`, streamed back over the socket.

Recorded per path: wall time (min over interleaved repeats, so load
drifts hit both paths equally), submissions/sec, instances/sec, and the
scheduler's per-device occupancy (``stats.utilization()``) — the
fraction of the step-clock makespan each device spent busy.

The regression gate (``check_regression``) uses **machine-independent
quantities only**:

* served-path *occupancy* is deterministic for a fixed workload (the
  pump admits in fair-share order and the simulation is single-threaded)
  and must not drop more than ``tolerance`` below the baseline: a drop
  means the admission loop started starving devices;
* the *overhead ratio* (served wall / direct wall) must not grow more
  than ``2 * tolerance`` relatively above the baseline: absolute wall
  times swing between hosts, but the interleaved ratio is stable, and a
  jump means the serve layer itself got slower.  The doubled tolerance
  absorbs socket-latency jitter on loaded CI boxes.

Both runs also cross-check bitwise: every served result must fingerprint
identically to its direct twin, or the bench aborts — a throughput
number for a wrong answer is worse than useless.

Run as a module::

    python -m repro.harness.bench_serve --out BENCH_serve.json
    python -m repro.harness.bench_serve --check BENCH_serve.json --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict, dataclass, field

from repro.config import DEFAULT_DEVICE
from repro.sched import DevicePool, Scheduler

#: Schema version of the JSON report (bump on incompatible change).
SCHEMA = 1

#: The workload: the standard cheap pagerank ensemble from the test
#: tree, small enough that the serve layer's fixed costs are visible.
APP = "pagerank"
SMALL = ["-n", "256", "-d", "8", "-i", "1"]
HEAP = 1536 * 1024
THREAD_LIMIT = 32
TENANTS = ("alice", "bob", "carol")
DEVICES = 2

#: Full-size and --quick campaign counts.
CAMPAIGNS = 6
QUICK_CAMPAIGNS = 3
INSTANCES = 2

PATHS = ("direct", "served")


@dataclass
class ServeBenchRecord:
    """One (path) measurement over the whole campaign set."""

    path: str  #: "direct" or "served"
    campaigns: int
    instances_total: int
    devices: int
    wall_s: float  #: best wall time (min over interleaved repeats)
    submissions_per_sec: float
    instances_per_sec: float
    occupancy: dict  #: device label -> utilization fraction
    mean_occupancy: float


@dataclass
class ServeBenchReport:
    """Full report: per-path records plus the derived overhead ratio."""

    schema: int
    config: dict
    records: list[ServeBenchRecord] = field(default_factory=list)
    #: Compile wall of the bench workload, cold (fresh executable cache)
    #: vs warm (same cache again) — see ``bench.measure_compile_walls``.
    compile_wall_s: dict = field(default_factory=dict)

    def record(self, path: str) -> ServeBenchRecord:
        for r in self.records:
            if r.path == path:
                return r
        raise KeyError(path)

    def overhead(self) -> float:
        """Served wall over direct wall for the same workload; 1.0 would
        mean the serve layer is free."""
        direct = self.record("direct").wall_s
        if direct == 0:
            return 0.0
        return self.record("served").wall_s / direct

    def summary(self) -> dict:
        summary = {
            "wall_s": {
                p: round(self.record(p).wall_s, 4) for p in PATHS
            },
            "submissions_per_sec": round(
                self.record("served").submissions_per_sec, 2
            ),
            "overhead": round(self.overhead(), 3),
            "served_mean_occupancy": round(
                self.record("served").mean_occupancy, 3
            ),
        }
        if self.compile_wall_s:
            summary["compile_wall_s"] = self.compile_wall_s
        return summary

    def to_json(self) -> str:
        data = {
            "schema": self.schema,
            "config": self.config,
            "records": [asdict(r) for r in self.records],
            "compile_wall_s": self.compile_wall_s,
            "summary": self.summary(),
        }
        return json.dumps(data, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ServeBenchReport":
        data = json.loads(text)
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"bench_serve schema mismatch: baseline has "
                f"{data.get('schema')!r}, this harness writes {SCHEMA}"
            )
        return cls(
            schema=data["schema"],
            config=data["config"],
            records=[ServeBenchRecord(**r) for r in data["records"]],
            compile_wall_s=data.get("compile_wall_s", {}),
        )


# ---------------------------------------------------------------------------
# workload runners
# ---------------------------------------------------------------------------
def _specs(campaigns: int):
    from repro.host.launch import LaunchSpec

    return [
        LaunchSpec(
            [list(SMALL) for _ in range(INSTANCES)],
            thread_limit=THREAD_LIMIT,
            collect_timing=False,
        )
        for _ in range(campaigns)
    ]


def _fingerprint(result):
    return [
        (o.index, o.args, o.exit_code, o.stdout) for o in result.instances
    ]


def _run_direct(campaigns: int):
    """The in-process baseline: same scheduler configuration the server
    builds (job-scoped faults, default retries), no serve layer."""
    from repro.apps import pagerank

    pool = DevicePool(DEVICES, config=DEFAULT_DEVICE)
    sched = Scheduler(pool, job_scoped_faults=True)
    program = pagerank.build_program()
    try:
        t0 = time.perf_counter()
        futures = [
            sched.submit(
                program,
                spec,
                loader_opts={"heap_bytes": HEAP},
                tenant=TENANTS[i % len(TENANTS)],
            )
            for i, spec in enumerate(_specs(campaigns))
        ]
        results = [f.result() for f in futures]
        wall = time.perf_counter() - t0
        occupancy = dict(sched.stats.utilization())
    finally:
        pool.close()
    return wall, occupancy, [_fingerprint(r) for r in results]


def _run_served(campaigns: int):
    """The same submissions through a real socket and the blessed client."""
    from repro.serve.client import Client
    from repro.serve.harness import ServerThread

    with ServerThread(devices=DEVICES) as server:
        with Client(server.address) as client:
            t0 = time.perf_counter()
            jobs = [
                client.submit(
                    APP,
                    spec,
                    tenant=TENANTS[i % len(TENANTS)],
                    loader_opts={"heap_bytes": HEAP},
                )
                for i, spec in enumerate(_specs(campaigns))
            ]
            results = [j.result() for j in jobs]
            wall = time.perf_counter() - t0
        occupancy = dict(server.server.scheduler.stats.utilization())
    return wall, occupancy, [_fingerprint(r) for r in results]


_RUNNERS = {"direct": _run_direct, "served": _run_served}


def run_bench(campaigns: int = CAMPAIGNS, repeats: int = 2) -> ServeBenchReport:
    """Interleave direct/served runs so background load drifts cancel in
    the overhead ratio; keep the best wall per path and the occupancy of
    the final run (occupancy is deterministic, so any run's will do)."""
    best: dict[str, float] = {p: float("inf") for p in PATHS}
    occupancy: dict[str, dict] = {}
    prints: dict[str, list] = {}
    for _ in range(max(1, repeats)):
        for path in PATHS:
            wall, occ, fps = _RUNNERS[path](campaigns)
            best[path] = min(best[path], wall)
            occupancy[path] = occ
            prints[path] = fps
    if prints["direct"] != prints["served"]:
        raise AssertionError(
            "served results diverged from the direct scheduler path; "
            "refusing to record throughput for wrong answers"
        )
    report = ServeBenchReport(
        schema=SCHEMA,
        config={
            "app": APP,
            "args": SMALL,
            "campaigns": campaigns,
            "instances": INSTANCES,
            "devices": DEVICES,
            "tenants": list(TENANTS),
            "thread_limit": THREAD_LIMIT,
            "repeats": repeats,
        },
    )
    total = campaigns * INSTANCES
    for path in PATHS:
        wall = best[path]
        occ = occupancy[path]
        report.records.append(
            ServeBenchRecord(
                path=path,
                campaigns=campaigns,
                instances_total=total,
                devices=DEVICES,
                wall_s=wall,
                submissions_per_sec=campaigns / wall if wall else 0.0,
                instances_per_sec=total / wall if wall else 0.0,
                occupancy=occ,
                mean_occupancy=(
                    sum(occ.values()) / len(occ) if occ else 0.0
                ),
            )
        )
    from repro.harness.bench import measure_compile_walls

    report.compile_wall_s = measure_compile_walls((APP,), (1,))
    return report


# ---------------------------------------------------------------------------
# regression gate — machine-independent quantities only
# ---------------------------------------------------------------------------
def check_regression(
    current: ServeBenchReport,
    baseline: ServeBenchReport,
    tolerance: float = 0.10,
) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    failures: list[str] = []

    cur_occ = current.record("served").mean_occupancy
    base_occ = baseline.record("served").mean_occupancy
    if cur_occ < base_occ - tolerance:
        failures.append(
            f"served-path occupancy regressed: {cur_occ:.3f} vs baseline "
            f"{base_occ:.3f} (tolerance {tolerance:.2f}) — the admission "
            f"loop is starving devices"
        )

    cur_ov, base_ov = current.overhead(), baseline.overhead()
    limit = base_ov * (1.0 + 2.0 * tolerance)
    if base_ov > 0 and cur_ov > limit:
        failures.append(
            f"serve overhead regressed: served/direct wall ratio "
            f"{cur_ov:.3f} vs baseline {base_ov:.3f} "
            f"(limit {limit:.3f})"
        )

    cw = current.compile_wall_s
    if cw.get("cold"):
        ratio = cw["warm"] / cw["cold"]
        if ratio >= 0.20:
            failures.append(
                f"warm compile wall is {ratio:.0%} of cold (gate: < 20%) "
                "— the executable cache is not earning its keep"
            )
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    """CLI: run the bench, optionally write/compare the JSON report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.bench_serve",
        description="Benchmark the repro.serve path against the direct "
        "scheduler and gate on machine-independent ratios.",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the JSON report to FILE"
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline report; exit 1 on "
        "regression",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: {QUICK_CAMPAIGNS} campaigns, 1 repeat",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="occupancy slack (absolute) and half the relative overhead "
        "slack (default 0.10)",
    )
    args = parser.parse_args(argv)

    campaigns = QUICK_CAMPAIGNS if args.quick else CAMPAIGNS
    repeats = 1 if args.quick else args.repeats
    report = run_bench(campaigns=campaigns, repeats=repeats)
    print(json.dumps(report.summary(), indent=2, sort_keys=True))

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.out}")

    if args.check:
        with open(args.check) as fh:
            baseline = ServeBenchReport.from_json(fh.read())
        failures = check_regression(
            report, baseline, tolerance=args.tolerance
        )
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
