"""GP-style many-variant campaign: the compile cache's acceptance load.

Mirrors the GP-on-GPU precedent from PAPERS.md: a population of small
program variants (:mod:`repro.apps.gp` expression trees) is compiled
through :func:`~repro.compilecache.compile_many`, evaluated on the
simulated device, selected by fitness against a target polynomial, and
mutated — for several generations.  Selection clones most survivors, so
generation 2 onward is dominated by already-seen genomes: exactly the
recompile-heavy profile a compile-once cache exists for.

What the campaign measures (and the acceptance suite asserts):

* **cache hit rate after generation 1** — fraction of compile requests
  in generations ≥ 2 that did *not* trigger a build;
* **parallel compile speedup** — the measured mean serial cold-compile
  time (sampled on real generation-1 genomes) times the total request
  count, over the wall time ``compile_many`` actually spent;
* **bitwise twins** — every unique cached executable is also compiled
  cold (no cache) and both run on fresh devices; exit code, stdout and
  interpreter step count must match exactly.

``devices > 1`` evaluates through a :class:`~repro.sched.Scheduler`
pool instead of direct loaders, optionally under a fault plan — the
chaos suite runs the smoke campaign with ``worker_death`` across the
seed matrix and requires the report to be identical to the fault-free
run.

Run as a module::

    python -m repro.harness.gp --pop 200 --gens 3
    python -m repro.harness.gp --smoke --json report.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import asdict, dataclass, field

from repro.apps import gp
from repro.compilecache import (
    CompileRequest,
    ExecutableCache,
    build_executable,
    compile_many,
)
from repro.config import DeviceConfig

#: The evolutionary target: ``x*x + 2*x + 1`` — reachable by the genome
#: grammar, so fitness actually improves across generations.
TARGET_GENOME = ("add", ("mul", "x", "x"), ("add", ("mul", 2, "x"), 1))

#: Small device for the many tiny evaluation programs.
GP_DEVICE = DeviceConfig(global_mem_bytes=64 * 1024 * 1024)


@dataclass
class GPConfig:
    """One campaign's knobs; defaults meet the acceptance floor
    (population × generations ≥ 500 variants, ≥ 3 generations)."""

    population: int = 200
    generations: int = 3
    seed: int = 0
    points: int = gp.DEFAULT_POINTS
    depth: int = 2
    mutation_prob: float = 0.25
    tournament: int = 3
    opt_level: int | None = 1
    backend: str = "interp"
    thread_limit: int = 16
    heap_bytes: int = 1 << 20
    max_workers: int | None = None
    cache_dir: str | None = None
    verify_bitwise: bool = True
    #: Genomes timed serially cold to estimate the no-cache baseline.
    cold_sample: int = 16
    #: >1 evaluates through a scheduler pool (the chaos-suite path).
    devices: int = 1
    fault_plan: str | None = None
    retries: int = 4


@dataclass
class GenerationStats:
    """Compile-side accounting of one generation."""

    index: int
    requests: int
    unique: int
    misses: int
    hits: int
    dedup: int
    compile_wall_s: float
    evaluated: int
    best_fitness: int
    best_expr: str


@dataclass
class GPReport:
    """Everything the acceptance criteria are asserted against."""

    config: dict
    generations: list[GenerationStats] = field(default_factory=list)
    total_requests: int = 0
    hit_rate_after_gen1: float = 0.0
    cold_compile_mean_s: float = 0.0
    serial_cold_wall_est_s: float = 0.0
    parallel_compile_wall_s: float = 0.0
    compile_speedup: float = 0.0
    verified_twins: int = 0
    twin_mismatches: list = field(default_factory=list)
    best_fitness: int = 0
    best_expr: str = ""
    cache_stats: dict = field(default_factory=dict)
    #: (exit_code, stdout) per evaluated unique genome key, sorted by
    #: key — the chaos suite's cross-campaign fingerprint.
    observables: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "variants": self.total_requests,
            "generations": len(self.generations),
            "hit_rate_after_gen1": round(self.hit_rate_after_gen1, 4),
            "compile_speedup": round(self.compile_speedup, 2),
            "verified_twins": self.verified_twins,
            "twin_mismatches": len(self.twin_mismatches),
            "best_fitness": self.best_fitness,
            "best_expr": self.best_expr,
        }

    def to_json(self) -> str:
        data = asdict(self)
        data["summary"] = self.summary()
        return json.dumps(data, indent=2, sort_keys=True) + "\n"


def _parse_total(stdout: str) -> int:
    for line in stdout.splitlines():
        if line.startswith("gp total "):
            return int(line.rsplit(" ", 1)[-1])
    raise ValueError(f"no 'gp total' line in stdout: {stdout!r}")


class _Evaluator:
    """Runs finalized executables; direct loaders or a scheduler pool."""

    def __init__(self, config: GPConfig):
        self.config = config
        self.sched = None
        self.pool = None
        if config.devices > 1:
            from repro.sched import DevicePool, Scheduler

            self.pool = DevicePool(config.devices, config=GP_DEVICE)
            self.sched = Scheduler(
                self.pool,
                faults=config.fault_plan,
                default_retries=config.retries,
                job_scoped_faults=False,
            )

    def run(self, module):
        """One observable triple ``(exit_code, stdout, steps)``."""
        cfg = self.config
        if self.sched is not None:
            from repro.host.launch import LaunchSpec

            result = self.sched.run_campaign(
                module,
                LaunchSpec(
                    [[]],
                    thread_limit=cfg.thread_limit,
                    collect_timing=False,
                ),
                loader_opts={"heap_bytes": cfg.heap_bytes},
            )
            out = result.instances[0]
            return (out.exit_code, out.stdout, None)
        return _run_direct(module, cfg)

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()


def _run_direct(module, cfg: GPConfig):
    """Fresh-device single run — the bitwise-comparison baseline."""
    from repro.gpu.device import GPUDevice
    from repro.host.loader import Loader

    loader = Loader(module, GPUDevice(GP_DEVICE), heap_bytes=cfg.heap_bytes)
    try:
        res = loader.run(
            [],
            thread_limit=cfg.thread_limit,
            collect_timing=False,
            backend=cfg.backend,
        )
    finally:
        loader.close()
    return (res.exit_code, res.stdout, res.launch.interpreter_steps)


def _source_hash(genome, points: int) -> str:
    return f"{gp.genome_key(genome)}:p{points}"


def run_campaign(config: GPConfig | None = None) -> GPReport:
    """Run the full compile/evaluate/select/mutate loop."""
    cfg = config or GPConfig()
    rng = random.Random(cfg.seed)
    cache = ExecutableCache(cfg.cache_dir)
    target_total = gp.reference_total(TARGET_GENOME, cfg.points)
    report = GPReport(config=asdict(cfg))
    evaluator = _Evaluator(cfg)

    population = [
        gp.random_genome(rng, cfg.depth) for _ in range(cfg.population)
    ]
    fitness: dict[str, int] = {}
    observables: dict[str, tuple] = {}
    verified: set[str] = set()
    late_misses = late_requests = 0

    try:
        for gen_index in range(1, cfg.generations + 1):
            requests = [
                CompileRequest(
                    program=(
                        lambda g=genome: gp.build_genome_program(
                            g, cfg.points
                        )
                    ),
                    source_hash=_source_hash(genome, cfg.points),
                    opt_level=cfg.opt_level,
                    backend=cfg.backend,
                )
                for genome in population
            ]
            before = cache.stats()
            t0 = time.perf_counter()
            entries = compile_many(
                requests, cache=cache, max_workers=cfg.max_workers
            )
            wall = time.perf_counter() - t0
            after = cache.stats()
            report.parallel_compile_wall_s += wall
            misses = after["misses"] - before["misses"]
            hits = (
                after["hits_memory"]
                + after["hits_disk"]
                - before["hits_memory"]
                - before["hits_disk"]
            )
            dedup = after["dedup"] - before["dedup"]
            if gen_index > 1:
                late_misses += misses
                late_requests += len(requests)

            if gen_index == 1 and cfg.cold_sample > 0:
                report.cold_compile_mean_s = _measure_cold_mean(
                    population, cfg
                )

            evaluated = 0
            for genome, entry in zip(population, entries):
                key = _source_hash(genome, cfg.points)
                if key in fitness:
                    continue
                obs = evaluator.run(entry.module)
                total = _parse_total(obs[1])
                fitness[key] = abs(total - target_total)
                observables[key] = (obs[0], obs[1])
                evaluated += 1
                if cfg.verify_bitwise and key not in verified:
                    # In direct mode the evaluation run *is* the cached
                    # execution; reuse it instead of running twice.
                    cached_obs = obs if evaluator.sched is None else None
                    _verify_twin(report, genome, entry, key, cfg, cached_obs)
                    verified.add(key)

            ranked = sorted(
                {_source_hash(g, cfg.points): g for g in population}.items(),
                key=lambda kv: (fitness[kv[0]], kv[0]),
            )
            best_key, best_genome = ranked[0]
            report.generations.append(
                GenerationStats(
                    index=gen_index,
                    requests=len(requests),
                    unique=len({r.source_hash for r in requests}),
                    misses=misses,
                    hits=hits,
                    dedup=dedup,
                    compile_wall_s=wall,
                    evaluated=evaluated,
                    best_fitness=fitness[best_key],
                    best_expr=gp.render_expr(best_genome),
                )
            )
            report.total_requests += len(requests)

            if gen_index < cfg.generations:
                population = _next_generation(population, fitness, rng, cfg)
    finally:
        evaluator.close()

    report.hit_rate_after_gen1 = (
        1.0 - (late_misses / late_requests) if late_requests else 0.0
    )
    report.serial_cold_wall_est_s = (
        report.cold_compile_mean_s * report.total_requests
    )
    report.compile_speedup = (
        report.serial_cold_wall_est_s / report.parallel_compile_wall_s
        if report.parallel_compile_wall_s
        else 0.0
    )
    report.verified_twins = len(verified)
    last = report.generations[-1]
    report.best_fitness = last.best_fitness
    report.best_expr = last.best_expr
    report.cache_stats = cache.stats()
    report.observables = {k: list(v) for k, v in sorted(observables.items())}
    return report


def _measure_cold_mean(population, cfg: GPConfig) -> float:
    """Serial no-cache compile time per variant, sampled on real
    generation-1 genomes (deduplicated, so each sample is a true cold
    build of a distinct program)."""
    seen: set[str] = set()
    sample = []
    for genome in population:
        key = _source_hash(genome, cfg.points)
        if key not in seen:
            seen.add(key)
            sample.append(genome)
        if len(sample) >= cfg.cold_sample:
            break
    t0 = time.perf_counter()
    for genome in sample:
        build_executable(
            gp.build_genome_program(genome, cfg.points).compile(),
            opt_level=cfg.opt_level,
        )
    return (time.perf_counter() - t0) / max(1, len(sample))


def _verify_twin(
    report: GPReport, genome, entry, key: str, cfg: GPConfig, cached_obs=None
):
    """Cold-compile the genome with no cache and require bitwise-equal
    observables from fresh devices."""
    cold_module = build_executable(
        gp.build_genome_program(genome, cfg.points).compile(),
        opt_level=cfg.opt_level,
    )
    if cached_obs is None:
        cached_obs = _run_direct(entry.module, cfg)
    cold_obs = _run_direct(cold_module, cfg)
    if cached_obs != cold_obs:
        report.twin_mismatches.append(
            {"key": key, "cached": list(cached_obs), "cold": list(cold_obs)}
        )


def _next_generation(population, fitness, rng, cfg: GPConfig):
    """Tournament selection; most winners are cloned verbatim (cache
    hits), a ``mutation_prob`` fraction is mutated (fresh compiles)."""

    def fit(genome):
        return fitness[_source_hash(genome, cfg.points)]

    fresh = []
    for _ in range(len(population)):
        contenders = [
            population[rng.randrange(len(population))]
            for _ in range(cfg.tournament)
        ]
        winner = min(contenders, key=fit)
        if rng.random() < cfg.mutation_prob:
            winner = gp.mutate(winner, rng, cfg.depth)
        fresh.append(winner)
    return fresh


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    """CLI entry point: run a campaign, print the summary, exit 1 if any
    cached execution diverged from its cold-compiled twin."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.gp",
        description="Run the GP-style many-variant compile campaign.",
    )
    parser.add_argument("--pop", type=int, default=200)
    parser.add_argument("--gens", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--points", type=int, default=gp.DEFAULT_POINTS)
    parser.add_argument("--opt-level", type=int, choices=(0, 1, 2), default=1)
    parser.add_argument("--backend", default="interp")
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument("--inject", metavar="PLAN", default=None)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small population, 2 generations",
    )
    parser.add_argument("--json", metavar="FILE", default=None)
    args = parser.parse_args(argv)

    cfg = GPConfig(
        population=32 if args.smoke else args.pop,
        generations=2 if args.smoke else args.gens,
        seed=args.seed,
        points=args.points,
        opt_level=args.opt_level,
        backend=args.backend,
        devices=args.devices,
        fault_plan=args.inject,
        cache_dir=args.cache_dir,
        verify_bitwise=not args.no_verify,
        cold_sample=4 if args.smoke else 16,
    )
    report = run_campaign(cfg)
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.json}", file=sys.stderr)
    if report.twin_mismatches:
        print(
            f"FAIL: {len(report.twin_mismatches)} cached executions "
            "diverged from their cold-compiled twins",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
