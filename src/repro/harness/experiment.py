"""The scaling experiment: ensemble speedup versus instance count.

Methodology copied from §4.2/§4.3 of the paper:

* the number of teams equals the number of instances (each team executes
  exactly one instance);
* every instance gets its own command line (here: same workload, distinct
  seed — "each invocation of an application on a different input");
* speedup is ``S(N) = T1 * N / TN`` where ``T1`` is the single-instance
  time at the *same* thread limit;
* a configuration that exhausts device memory is recorded as OOM and the
  sweep continues (the paper simply omits those points).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.registry import AppEntry
from repro.config import DEFAULT_SIM, DeviceConfig, SimConfig
from repro.errors import DeviceOutOfMemory
from repro.gpu.device import GPUDevice
from repro.host.ensemble_loader import EnsembleLoader
from repro.host.launch import LaunchSpec
from repro.host.mapping import MappingStrategy, OneInstancePerTeam
from repro.runtime.backend import DEFAULT_BACKEND


@dataclass
class ScalingRow:
    """One (N, thread_limit) measurement."""

    instances: int
    cycles: float | None
    speedup: float | None
    efficiency: float | None
    oom: bool = False
    l2_hit_rate: float | None = None
    dram_efficiency: float | None = None
    makespan: float | None = None
    dram_cycles: float | None = None

    @property
    def label(self) -> str:
        if self.oom:
            return "OOM"
        return f"{self.speedup:.1f}x"


@dataclass
class ScalingResult:
    """A full sweep for one benchmark at one thread limit."""

    app: str
    thread_limit: int
    workload_args: list[str]
    rows: list[ScalingRow] = field(default_factory=list)

    @property
    def t1_cycles(self) -> float | None:
        for row in self.rows:
            if row.instances == 1 and not row.oom:
                return row.cycles
        return None

    def speedup_at(self, n: int) -> float | None:
        for row in self.rows:
            if row.instances == n:
                return row.speedup
        return None

    def max_speedup(self) -> float:
        return max((r.speedup for r in self.rows if r.speedup), default=0.0)

    def series(self) -> dict[int, float]:
        return {r.instances: r.speedup for r in self.rows if r.speedup is not None}

    def oom_at(self) -> int | None:
        for row in self.rows:
            if row.oom:
                return row.instances
        return None


def build_instance_lines(
    workload_args: list[str], n: int, *, seed_flag: str = "-s", seed_base: int = 1
) -> list[list[str]]:
    """N command lines: the workload with per-instance seeds (distinct
    inputs per instance, as in the paper's usage model)."""
    lines = []
    for i in range(n):
        lines.append(list(workload_args) + [seed_flag, str(seed_base + i)])
    return lines


def run_scaling(
    app: AppEntry,
    workload_args: list[str],
    *,
    thread_limit: int,
    instance_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    device_config: DeviceConfig | None = None,
    sim: SimConfig = DEFAULT_SIM,
    heap_bytes: int | None = None,
    mapping: MappingStrategy = OneInstancePerTeam(),
    loader: EnsembleLoader | None = None,
    backend: str = DEFAULT_BACKEND,
) -> ScalingResult:
    """Sweep instance counts for one benchmark at one thread limit."""
    if loader is None:
        from repro.config import DEFAULT_DEVICE

        device = GPUDevice(device_config or DEFAULT_DEVICE, sim)
        loader = EnsembleLoader(
            app.build_program(),
            device,
            mapping=mapping,
            heap_bytes=heap_bytes or app.heap_hint_bytes,
        )

    result = ScalingResult(app.name, thread_limit, list(workload_args))
    t1: float | None = None
    for n in instance_counts:
        lines = build_instance_lines(workload_args, n)
        try:
            run = loader.run_ensemble(
                LaunchSpec(lines, thread_limit=thread_limit, backend=backend)
            )
        except DeviceOutOfMemory:
            result.rows.append(
                ScalingRow(n, None, None, None, oom=True)
            )
            continue
        if any(code != 0 for code in run.return_codes):
            raise RuntimeError(
                f"{app.name}: instance failed (exit codes {run.return_codes})"
            )
        cycles = run.cycles
        if n == 1:
            t1 = cycles
        speedup = (t1 * n / cycles) if (t1 and cycles) else None
        timing = run.timing
        result.rows.append(
            ScalingRow(
                instances=n,
                cycles=cycles,
                speedup=speedup,
                efficiency=(speedup / n) if speedup else None,
                l2_hit_rate=timing.l2_hit_rate if timing else None,
                dram_efficiency=timing.dram_efficiency if timing else None,
                makespan=timing.makespan if timing else None,
                dram_cycles=timing.dram_cycles if timing else None,
            )
        )
    return result
